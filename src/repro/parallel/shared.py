"""Shared-memory multiprocessing transpose-matvec.

:class:`SharedCsrMatvec` splits a CSR matrix into row bands, publishes the
CSR arrays and the input/output vectors in
:mod:`multiprocessing.shared_memory` segments, and has each worker compute
its band's scatter contribution into a private accumulator that the parent
reduces.  Per-iteration traffic is therefore exactly one input-vector write
and ``n_workers`` accumulator reads — no matrix bytes ever cross the
process boundary after setup (the Gleich et al. linear-system PageRank
paper [18] the paper cites uses the same row-striping decomposition).

:class:`SharedBlockedMatvec` is the out-of-core variant: the matrix never
exists in the parent at all.  Only the iterate ``x`` is published to shared
memory; each worker opens its own handle on the
:class:`~repro.webgraph.store.ShardedGraphStore` and decodes the row-block
shards assigned to it (a bounded per-worker LRU keeps hot blocks decoded),
returning a per-group accumulator.  Per-iteration traffic is one
input-vector write and ``n_groups`` accumulator reads — shard bytes are
read from disk by the worker that needs them, never shipped between
processes.

Worker death does not fail the solve for either evaluator: the pool
rebuilds itself up to its retry budget (see
:class:`~repro.parallel.executor.WorkerPool.run`), and when that budget is
exhausted the evaluator *degrades* — the CSR evaluator rebuilds the
transposed matrix in-process from the shared arrays, the blocked evaluator
streams shards serially in the parent — recording
``repro_fallbacks_total{kind="serial_degrade"}``.  The solve sees the
same numbers either way, just slower.

Both evaluators publish ``repro_parallel_*`` metrics and correlated
events (``parallel_setup`` / ``parallel_rmatvec`` / ``parallel_degraded``)
through the telemetry layer, so band counts, degraded state, and per-band
timings show up in ``/trace``, ``/events``, and metric scrapes.
"""

from __future__ import annotations

import atexit
import time
from collections import OrderedDict
from concurrent.futures import BrokenExecutor, TimeoutError as FuturesTimeoutError
from multiprocessing import shared_memory
from pathlib import Path
from typing import Sequence

import numpy as np
import scipy.sparse as sp

from ..errors import GraphError
from ..logging_utils import get_logger
from .executor import WorkerPool, effective_workers

_logger = get_logger(__name__)

__all__ = ["SharedCsrMatvec", "SharedBlockedMatvec"]

# Module-level worker state, populated by the pool initializer after fork.
_WORKER_STATE: dict[str, object] = {}


# ----------------------------------------------------------------------
# Telemetry: repro_parallel_* metrics + correlated events for both
# evaluators, so block-parallel solves are visible in /trace and /events.
# ----------------------------------------------------------------------

def _emit_event(kind: str, **fields: object) -> None:
    from ..observability.events import emit

    emit(kind, **fields)


def _record_setup(evaluator: str, *, bands: int, workers: int) -> None:
    from ..observability.metrics import get_registry

    get_registry().gauge(
        "repro_parallel_bands",
        "Row bands / block groups the parallel matvec fans out over.",
        labelnames=("evaluator",),
    ).labels(evaluator=evaluator).set(bands)
    _emit_event(
        "parallel_setup", evaluator=evaluator, bands=bands, workers=workers
    )


def _record_rmatvec(
    evaluator: str,
    *,
    mode: str,
    seconds: float,
    band_seconds: Sequence[float],
) -> None:
    from ..observability.metrics import get_registry

    registry = get_registry()
    registry.counter(
        "repro_parallel_rmatvecs_total",
        "Parallel transpose-matvec calls by evaluator and serving mode.",
        labelnames=("evaluator", "mode"),
    ).labels(evaluator=evaluator, mode=mode).inc()
    if band_seconds:
        hist = registry.histogram(
            "repro_parallel_band_seconds",
            "Per-band worker time of one parallel transpose matvec.",
            labelnames=("evaluator",),
        )
        for value in band_seconds:
            hist.labels(evaluator=evaluator).observe(float(value))
    _emit_event(
        "parallel_rmatvec",
        evaluator=evaluator,
        mode=mode,
        seconds=round(float(seconds), 6),
        bands=len(band_seconds),
        band_seconds=[round(float(v), 6) for v in band_seconds],
        degraded=mode == "serial",
    )


def _record_degrade(evaluator: str, reason: str) -> None:
    from ..observability.metrics import get_registry

    get_registry().counter(
        "repro_fallbacks_total",
        "Recovery actions by kind (solver/pool_rebuild/serial_degrade)",
        labelnames=("kind",),
    ).labels(kind="serial_degrade").inc()
    _emit_event("parallel_degraded", evaluator=evaluator, reason=reason)
    _logger.error(
        "parallel matvec (%s) degraded to serial kernel after %s "
        "(results unchanged, throughput reduced)",
        evaluator,
        reason,
    )


def _attach_shared(name: str, shape: tuple[int, ...], dtype: str) -> np.ndarray:
    shm = shared_memory.SharedMemory(name=name)
    # Keep a reference so the segment is not GC-closed while the view lives.
    arr = np.ndarray(shape, dtype=np.dtype(dtype), buffer=shm.buf)
    _WORKER_STATE.setdefault("_segments", []).append(shm)  # type: ignore[union-attr]
    return arr


def _worker_init(meta: dict[str, object]) -> None:
    """Pool initializer: map the shared CSR arrays + vectors into the worker."""
    _WORKER_STATE["indptr"] = _attach_shared(*meta["indptr"])  # type: ignore[misc]
    _WORKER_STATE["indices"] = _attach_shared(*meta["indices"])  # type: ignore[misc]
    _WORKER_STATE["data"] = _attach_shared(*meta["data"])  # type: ignore[misc]
    _WORKER_STATE["x"] = _attach_shared(*meta["x"])  # type: ignore[misc]
    _WORKER_STATE["n_cols"] = meta["n_cols"]


def _worker_band(band: tuple[int, int]) -> tuple[float, bytes]:
    """One row band's contribution to ``A^T x``: ``(seconds, raw bytes)``."""
    started = time.perf_counter()
    start, stop = band
    indptr: np.ndarray = _WORKER_STATE["indptr"]  # type: ignore[assignment]
    indices: np.ndarray = _WORKER_STATE["indices"]  # type: ignore[assignment]
    data: np.ndarray = _WORKER_STATE["data"]  # type: ignore[assignment]
    x: np.ndarray = _WORKER_STATE["x"]  # type: ignore[assignment]
    n_cols: int = _WORKER_STATE["n_cols"]  # type: ignore[assignment]
    acc = np.zeros(n_cols, dtype=np.float64)
    lo, hi = int(indptr[start]), int(indptr[stop])
    if lo != hi:
        rows = np.repeat(
            np.arange(start, stop, dtype=np.int64),
            np.diff(indptr[start : stop + 1]),
        )
        np.add.at(acc, indices[lo:hi], data[lo:hi] * x[rows])
    return time.perf_counter() - started, acc.tobytes()


class SharedCsrMatvec:
    """Persistent parallel ``y = A^T x`` evaluator over a fixed CSR matrix.

    Usage::

        with SharedCsrMatvec(matrix, n_workers=4) as mv:
            for _ in range(iters):
                y = mv.rmatvec(x)

    The object owns shared-memory segments; always close it (context
    manager or :meth:`close`).
    """

    def __init__(
        self,
        matrix: sp.csr_matrix,
        n_workers: int | None = None,
        *,
        max_rebuilds: int = 2,
        task_timeout: float | None = None,
    ) -> None:
        if not sp.issparse(matrix) or matrix.format != "csr":
            raise GraphError("SharedCsrMatvec requires a scipy CSR matrix")
        self.shape = matrix.shape
        self.n_workers = effective_workers(n_workers)
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        self._serial_at: sp.csr_matrix | None = None

        indptr = matrix.indptr.astype(np.int64)
        indices = matrix.indices.astype(np.int64)
        data = matrix.data.astype(np.float64)

        self._indptr = self._publish("indptr", indptr)
        self._indices = self._publish("indices", indices)
        self._data = self._publish("data", data)
        self._x = self._publish("x", np.zeros(self.shape[0], dtype=np.float64))

        meta = {
            "indptr": self._meta_of(0, indptr),
            "indices": self._meta_of(1, indices),
            "data": self._meta_of(2, data),
            "x": self._meta_of(3, np.zeros(self.shape[0])),
            "n_cols": int(self.shape[1]),
        }
        self._bands = self._make_bands(indptr, self.n_workers)
        self._pool = WorkerPool(
            self.n_workers,
            initializer=_worker_init,
            initargs=(meta,),
            max_rebuilds=max_rebuilds,
            task_timeout=task_timeout,
        )
        _record_setup("csr", bands=len(self._bands), workers=self.n_workers)
        atexit.register(self.close)

    # ------------------------------------------------------------------
    def _publish(self, label: str, array: np.ndarray) -> np.ndarray:
        shm = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[:] = array
        self._segments.append(shm)
        return view

    def _meta_of(self, idx: int, array: np.ndarray) -> tuple[str, tuple[int, ...], str]:
        return (self._segments[idx].name, array.shape, str(array.dtype))

    @staticmethod
    def _make_bands(indptr: np.ndarray, n_workers: int) -> list[tuple[int, int]]:
        """Split rows into bands with roughly equal nonzero counts."""
        m = indptr.size - 1
        nnz = int(indptr[-1])
        if m == 0:
            return []
        targets = np.linspace(0, nnz, n_workers + 1)
        cuts = np.searchsorted(indptr, targets[1:-1], side="left")
        bounds = np.unique(np.concatenate([[0], cuts, [m]])).astype(int)
        return [
            (int(bounds[i]), int(bounds[i + 1]))
            for i in range(bounds.size - 1)
            if bounds[i] < bounds[i + 1]
        ]

    # ------------------------------------------------------------------
    @property
    def degraded(self) -> bool:
        """Whether the evaluator has fallen back to the serial kernel."""
        return self._serial_at is not None

    def _degrade(self, reason: str) -> None:
        """Switch permanently to a serial in-process transpose matvec."""
        # Copy out of shared memory so close() can still unlink segments.
        self._serial_at = sp.csr_matrix(
            (
                np.array(self._data, copy=True),
                np.array(self._indices, copy=True),
                np.array(self._indptr, copy=True),
            ),
            shape=self.shape,
        ).T.tocsr()
        _record_degrade("csr", reason)

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A^T @ x`` across the worker pool (serial once degraded)."""
        if self._closed:
            raise GraphError("SharedCsrMatvec is closed")
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.shape[0]:
            raise GraphError(
                f"rmatvec needs len(x) == {self.shape[0]}, got {x.size}"
            )
        started = time.perf_counter()
        if self._serial_at is not None:
            out = self._serial_at @ x
            _record_rmatvec(
                "csr", mode="serial",
                seconds=time.perf_counter() - started, band_seconds=(),
            )
            return out
        self._x[:] = x
        try:
            results = self._pool.run(_worker_band, self._bands)
        except (BrokenExecutor, FuturesTimeoutError) as exc:
            self._degrade(f"repeated pool failures ({type(exc).__name__})")
            out = self._serial_at @ x
            _record_rmatvec(
                "csr", mode="serial",
                seconds=time.perf_counter() - started, band_seconds=(),
            )
            return out
        out = np.zeros(self.shape[1], dtype=np.float64)
        band_seconds = []
        for seconds, chunk in results:
            band_seconds.append(seconds)
            out += np.frombuffer(chunk, dtype=np.float64)
        _record_rmatvec(
            "csr", mode="pool",
            seconds=time.perf_counter() - started, band_seconds=band_seconds,
        )
        return out

    def close(self) -> None:
        """Shut down the pool and release all shared-memory segments."""
        if self._closed:
            return
        self._closed = True
        self._pool.shutdown()
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()

    def __enter__(self) -> "SharedCsrMatvec":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# ----------------------------------------------------------------------
# Block-parallel evaluator over a sharded on-disk store.
# ----------------------------------------------------------------------

def _blocked_worker_init(meta: dict[str, object]) -> None:
    """Pool initializer: attach the iterate; store handles open lazily."""
    _WORKER_STATE["blk_x"] = _attach_shared(*meta["x"])  # type: ignore[misc]
    _WORKER_STATE["blk_store_dir"] = meta["store_dir"]
    _WORKER_STATE["blk_n"] = meta["n"]
    _WORKER_STATE["blk_cache_blocks"] = meta["cache_blocks"]
    _WORKER_STATE["blk_store"] = None
    _WORKER_STATE["blk_cache"] = OrderedDict()


def _worker_block_group(block_ids: tuple[int, ...]) -> tuple[float, bytes]:
    """Accumulate ``A_b^T x[rows_b]`` over one group of shards.

    The worker owns its store handle and a bounded LRU of decoded blocks;
    only the accumulator (``(seconds, bytes)``) crosses the process
    boundary — never shard bytes or matrix arrays.
    """
    started = time.perf_counter()
    from ..webgraph.store import ShardedGraphStore

    store = _WORKER_STATE.get("blk_store")
    if store is None:
        store = ShardedGraphStore.open(_WORKER_STATE["blk_store_dir"])  # type: ignore[arg-type]
        _WORKER_STATE["blk_store"] = store
    x: np.ndarray = _WORKER_STATE["blk_x"]  # type: ignore[assignment]
    n: int = _WORKER_STATE["blk_n"]  # type: ignore[assignment]
    cache: OrderedDict = _WORKER_STATE["blk_cache"]  # type: ignore[assignment]
    limit: int = _WORKER_STATE["blk_cache_blocks"]  # type: ignore[assignment]
    acc = np.zeros(n, dtype=np.float64)
    for block_id in block_ids:
        entry = cache.get(block_id)
        if entry is None:
            info = store.shards[block_id]
            block = store.load_block(block_id)
            rows = info.row_start + np.repeat(
                np.arange(info.n_rows, dtype=np.int64), np.diff(block.indptr)
            )
            entry = (rows, block.indices.astype(np.int64), block.data)
            cache[block_id] = entry
            while len(cache) > limit:
                cache.popitem(last=False)
        else:
            cache.move_to_end(block_id)
        rows, cols, vals = entry
        acc += np.bincount(cols, weights=vals * x[rows], minlength=n)
    return time.perf_counter() - started, acc.tobytes()


class SharedBlockedMatvec:
    """Persistent block-parallel ``y = A^T x`` over a sharded graph store.

    The dual of :class:`SharedCsrMatvec` for out-of-core graphs: the parent
    never holds the matrix.  Only the iterate is published to shared
    memory; shards are grouped by edge count into ``n_workers`` balanced
    groups, and each task decodes (or reuses from its bounded worker-local
    LRU) the blocks of one group.

    Inherits the pool-rebuild resilience of :class:`WorkerPool`; once the
    rebuild budget is exhausted the evaluator degrades to streaming the
    shards serially in the parent — still never materializing the matrix.
    """

    def __init__(
        self,
        store: object,
        n_workers: int | None = None,
        *,
        cache_blocks: int = 2,
        max_rebuilds: int = 2,
        task_timeout: float | None = None,
    ) -> None:
        from ..webgraph.store import ShardedGraphStore

        if isinstance(store, (str, Path)):
            store = ShardedGraphStore.open(store)
        if not isinstance(store, ShardedGraphStore):
            raise GraphError(
                "SharedBlockedMatvec requires a ShardedGraphStore or a "
                f"store path, got {type(store).__name__}"
            )
        self._store = store
        self.n = store.n_sources
        self.n_workers = effective_workers(n_workers)
        self._cache_blocks = max(1, int(cache_blocks))
        self._segments: list[shared_memory.SharedMemory] = []
        self._closed = False
        self._degraded = False
        self._serial_cache: OrderedDict = OrderedDict()

        self._x = self._publish(np.zeros(self.n, dtype=np.float64))
        meta = {
            "x": (self._segments[0].name, (self.n,), "float64"),
            "store_dir": str(store.directory),
            "n": self.n,
            "cache_blocks": self._cache_blocks,
        }
        self._groups = self._make_groups(store.shards, self.n_workers)
        self._pool: WorkerPool | None = WorkerPool(
            self.n_workers,
            initializer=_blocked_worker_init,
            initargs=(meta,),
            max_rebuilds=max_rebuilds,
            task_timeout=task_timeout,
        )
        _record_setup(
            "blocked", bands=len(self._groups), workers=self.n_workers
        )
        atexit.register(self.close)

    def _publish(self, array: np.ndarray) -> np.ndarray:
        shm = shared_memory.SharedMemory(create=True, size=max(array.nbytes, 1))
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=shm.buf)
        view[:] = array
        self._segments.append(shm)
        return view

    @staticmethod
    def _make_groups(shards: Sequence, n_groups: int) -> list[tuple[int, ...]]:
        """Greedy longest-first balance of shards into edge-weighted groups."""
        order = sorted(shards, key=lambda info: info.n_edges, reverse=True)
        groups: list[list[int]] = [[] for _ in range(max(1, n_groups))]
        loads = [0] * len(groups)
        for info in order:
            target = loads.index(min(loads))
            groups[target].append(info.block_id)
            loads[target] += max(info.n_edges, 1)
        return [tuple(sorted(group)) for group in groups if group]

    @property
    def degraded(self) -> bool:
        """Whether the evaluator has fallen back to serial shard streaming."""
        return self._degraded

    @property
    def groups(self) -> list[tuple[int, ...]]:
        """The block-id groups the matvec fans out over."""
        return list(self._groups)

    def _degrade(self, reason: str) -> None:
        """Serve every further call by streaming shards in the parent."""
        self._degraded = True
        if self._pool is not None:
            try:
                self._pool.shutdown()
            except Exception:  # noqa: BLE001 - broken pools can refuse
                pass
            self._pool = None
        _record_degrade("blocked", reason)

    def _serial_rmatvec(self, x: np.ndarray) -> np.ndarray:
        acc = np.zeros(self.n, dtype=np.float64)
        for info in self._store.shards:
            entry = self._serial_cache.get(info.block_id)
            if entry is None:
                block = self._store.load_block(info.block_id)
                rows = info.row_start + np.repeat(
                    np.arange(info.n_rows, dtype=np.int64),
                    np.diff(block.indptr),
                )
                entry = (rows, block.indices.astype(np.int64), block.data)
                self._serial_cache[info.block_id] = entry
                while len(self._serial_cache) > self._cache_blocks:
                    self._serial_cache.popitem(last=False)
            else:
                self._serial_cache.move_to_end(info.block_id)
            rows, cols, vals = entry
            acc += np.bincount(cols, weights=vals * x[rows], minlength=self.n)
        return acc

    def rmatvec(self, x: np.ndarray) -> np.ndarray:
        """Compute ``A^T @ x`` across the worker pool (serial once degraded)."""
        if self._closed:
            raise GraphError("SharedBlockedMatvec is closed")
        x = np.asarray(x, dtype=np.float64).ravel()
        if x.size != self.n:
            raise GraphError(f"rmatvec needs len(x) == {self.n}, got {x.size}")
        started = time.perf_counter()
        if self._degraded:
            out = self._serial_rmatvec(x)
            _record_rmatvec(
                "blocked", mode="serial",
                seconds=time.perf_counter() - started, band_seconds=(),
            )
            return out
        self._x[:] = x
        try:
            results = self._pool.run(_worker_block_group, self._groups)  # type: ignore[union-attr]
        except (BrokenExecutor, FuturesTimeoutError) as exc:
            self._degrade(f"repeated pool failures ({type(exc).__name__})")
            out = self._serial_rmatvec(x)
            _record_rmatvec(
                "blocked", mode="serial",
                seconds=time.perf_counter() - started, band_seconds=(),
            )
            return out
        out = np.zeros(self.n, dtype=np.float64)
        band_seconds = []
        for seconds, chunk in results:
            band_seconds.append(seconds)
            out += np.frombuffer(chunk, dtype=np.float64)
        _record_rmatvec(
            "blocked", mode="pool",
            seconds=time.perf_counter() - started, band_seconds=band_seconds,
        )
        return out

    def close(self) -> None:
        """Shut down the pool and release the shared iterate segment."""
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown()
            self._pool = None
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already unlinked
                pass
        self._segments.clear()
        self._serial_cache.clear()

    def __enter__(self) -> "SharedBlockedMatvec":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

"""Worker-pool lifecycle helpers for the shared-memory kernels.

:class:`WorkerPool` wraps :class:`~concurrent.futures.ProcessPoolExecutor`
with the recovery behaviour a long-lived solve needs: when a worker dies
(OOM-killed, segfaulted, ``os._exit``) the executor is permanently broken
— every queued and future task raises ``BrokenProcessPool``.  The pool
therefore supports *rebuilding*: :meth:`WorkerPool.run` retries a broken
batch on a freshly built pool up to ``max_rebuilds`` times (re-running the
initializer, so shared-memory attachments are restored) and optionally
bounds each batch with a wall-clock ``task_timeout``.  Rebuilds are
counted in the global metrics registry as
``repro_fallbacks_total{kind="pool_rebuild"}``; callers that exhaust the
retry budget (see :class:`~repro.parallel.shared.SharedCsrMatvec`) are
expected to degrade to a serial kernel rather than fail the solve.
"""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import BrokenExecutor, TimeoutError as FuturesTimeoutError
from concurrent.futures import ProcessPoolExecutor
from typing import Callable

from ..errors import ConfigError
from ..logging_utils import get_logger

__all__ = ["effective_workers", "WorkerPool"]

_logger = get_logger(__name__)


def effective_workers(requested: int | None = None) -> int:
    """Resolve a worker count: ``None`` → ``min(cpu_count, 8)``, floor 1.

    The cap avoids oversubscription on many-core boxes where the matvec is
    memory-bandwidth bound long before it is core bound.
    """
    available = os.cpu_count() or 1
    if requested is None:
        return max(1, min(available, 8))
    requested = int(requested)
    if requested < 1:
        raise ConfigError(f"worker count must be >= 1, got {requested}")
    return requested


def _record_pool_recovery(kind: str) -> None:
    # Imported here: observability is substrate-level but this keeps the
    # import out of worker processes that only need effective_workers.
    from ..observability.metrics import get_registry

    get_registry().counter(
        "repro_fallbacks_total",
        "Recovery actions by kind (solver/pool_rebuild/serial_degrade)",
        labelnames=("kind",),
    ).labels(kind=kind).inc()


class WorkerPool:
    """Context-managed, self-healing wrapper around ``ProcessPoolExecutor``.

    Uses the ``fork`` start method where available so shared, read-only
    NumPy arrays in the parent are inherited copy-on-write by workers —
    matrix data is never pickled per task (the mpi4py guide's "communicate
    buffers, not pickles" principle translated to multiprocessing).

    Parameters
    ----------
    n_workers:
        Worker count (:func:`effective_workers` default).
    initializer, initargs:
        Per-worker initializer, re-run on every rebuild so workers can
        re-attach shared-memory segments.
    max_rebuilds:
        How many times :meth:`run` may rebuild a broken pool over the
        pool's lifetime before letting ``BrokenProcessPool`` propagate.
    task_timeout:
        Optional wall-clock bound (seconds) on one :meth:`run` batch; a
        hung batch counts as a broken pool and triggers a rebuild.
    """

    def __init__(
        self,
        n_workers: int | None = None,
        initializer: Callable[..., None] | None = None,
        initargs: tuple = (),
        *,
        max_rebuilds: int = 2,
        task_timeout: float | None = None,
    ) -> None:
        self.n_workers = effective_workers(n_workers)
        self.max_rebuilds = int(max_rebuilds)
        self.task_timeout = task_timeout
        self.rebuilds = 0
        self._initializer = initializer
        self._initargs = initargs
        self._ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        self._executor = self._build()
        _logger.debug(
            "worker pool started: %d workers (%s start method)",
            self.n_workers,
            self._ctx.get_start_method(),
        )

    def _build(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=self._ctx,
            initializer=self._initializer,
            initargs=self._initargs,
        )

    def rebuild(self) -> None:
        """Replace a broken executor with a fresh one (initializer re-run)."""
        try:
            self._executor.shutdown(wait=False, cancel_futures=True)
        except Exception:  # noqa: BLE001 - broken pools can refuse shutdown
            pass
        self._executor = self._build()
        self.rebuilds += 1
        _record_pool_recovery("pool_rebuild")
        _logger.warning(
            "worker pool rebuilt after failure (%d/%d rebuilds used)",
            self.rebuilds,
            self.max_rebuilds,
        )

    def map(self, fn: Callable, iterable, chunksize: int = 1):
        """Parallel map preserving input order (no retry; see :meth:`run`)."""
        return self._executor.map(fn, iterable, chunksize=chunksize)

    def submit(self, fn: Callable, *args, **kwargs):
        """Submit a single task; returns a future."""
        return self._executor.submit(fn, *args, **kwargs)

    def run(self, fn: Callable, iterable, chunksize: int = 1) -> list:
        """Ordered parallel map with bounded broken-pool recovery.

        Materializes the whole batch so worker failures surface *here*,
        not at a distant iteration point.  On ``BrokenProcessPool`` (or a
        ``task_timeout`` expiry) the pool is rebuilt and the full batch
        retried, up to ``max_rebuilds`` times across the pool's lifetime;
        after that the underlying exception propagates for the caller to
        degrade gracefully.
        """
        items = list(iterable)
        while True:
            try:
                if self.task_timeout is not None:
                    return list(
                        self._executor.map(
                            fn, items, chunksize=chunksize,
                            timeout=self.task_timeout,
                        )
                    )
                return list(self._executor.map(fn, items, chunksize=chunksize))
            except (BrokenExecutor, FuturesTimeoutError) as exc:
                if self.rebuilds >= self.max_rebuilds:
                    _logger.error(
                        "worker pool broken and rebuild budget exhausted: %s",
                        exc,
                    )
                    raise
                self.rebuild()

    def shutdown(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        self._executor.shutdown(wait=True)
        _logger.debug("worker pool shut down (%d workers)", self.n_workers)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

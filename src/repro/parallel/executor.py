"""Worker-pool lifecycle helpers for the shared-memory kernels."""

from __future__ import annotations

import multiprocessing as mp
import os
from concurrent.futures import ProcessPoolExecutor
from typing import Callable

from ..errors import ConfigError
from ..logging_utils import get_logger

__all__ = ["effective_workers", "WorkerPool"]

_logger = get_logger(__name__)


def effective_workers(requested: int | None = None) -> int:
    """Resolve a worker count: ``None`` → ``min(cpu_count, 8)``, floor 1.

    The cap avoids oversubscription on many-core boxes where the matvec is
    memory-bandwidth bound long before it is core bound.
    """
    available = os.cpu_count() or 1
    if requested is None:
        return max(1, min(available, 8))
    requested = int(requested)
    if requested < 1:
        raise ConfigError(f"worker count must be >= 1, got {requested}")
    return requested


class WorkerPool:
    """Thin context-managed wrapper around :class:`ProcessPoolExecutor`.

    Uses the ``fork`` start method where available so shared, read-only
    NumPy arrays in the parent are inherited copy-on-write by workers —
    matrix data is never pickled per task (the mpi4py guide's "communicate
    buffers, not pickles" principle translated to multiprocessing).
    """

    def __init__(self, n_workers: int | None = None, initializer: Callable[..., None] | None = None, initargs: tuple = ()) -> None:
        self.n_workers = effective_workers(n_workers)
        ctx = mp.get_context("fork") if "fork" in mp.get_all_start_methods() else mp.get_context()
        self._executor = ProcessPoolExecutor(
            max_workers=self.n_workers,
            mp_context=ctx,
            initializer=initializer,
            initargs=initargs,
        )
        _logger.debug(
            "worker pool started: %d workers (%s start method)",
            self.n_workers,
            ctx.get_start_method(),
        )

    def map(self, fn: Callable, iterable, chunksize: int = 1):
        """Parallel map preserving input order."""
        return self._executor.map(fn, iterable, chunksize=chunksize)

    def submit(self, fn: Callable, *args, **kwargs):
        """Submit a single task; returns a future."""
        return self._executor.submit(fn, *args, **kwargs)

    def shutdown(self) -> None:
        """Shut the pool down, waiting for in-flight tasks."""
        self._executor.shutdown(wait=True)
        _logger.debug("worker pool shut down (%d workers)", self.n_workers)

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.shutdown()

#!/usr/bin/env python
"""Scripted-chaos harness for the fleet's SLO guardrails.

Where ``bench_fleet.py`` proves the fleet survives a *dead* replica,
this harness attacks it with the gray failures that actually hurt in
production — slow-but-alive replicas, lossy links, a publisher disk
that fills up — while an open-loop read load runs, and gates on the SLO
machinery at the front door doing its job:

* **slow replica** (at 20% of the schedule): replica 0 answers with
  80–120ms of injected latency.  Hedged reads must win against it and
  the latency-outlier detector must quarantine it (SLOW, not evicted);
  after the fault lifts (32%) the probe loop must reinstate it — but
  not before the backoff floor.
* **lossy link** (at 45%): replica 1 resets connections and tears
  response frames mid-line.  The door must evict/retry around it with
  zero client-visible failures, and take it back once the link heals
  (57%).
* **publisher disk-full + overload** (at 70%): snapshot publishes fail
  with ENOSPC while a burst of extra client threads saturates the door.
  Admission control must shed with typed retry-after responses (and
  stop shedding once the burst ends at 82%), the publisher must ride
  out the failed publishes, and a post-chaos update must publish,
  propagate, and serve a σ identical to the publisher's (1e-9).

Every fault comes from a seeded, deterministic
:class:`~repro.resilience.faults.FaultPlan`; the schedule flips named
rules at fixed request-index fractions, so a run is replayable.

Writes ``benchmarks/results/BENCH_chaos.json``; exits non-zero when any
gate fails: a client-visible failed read, a hedge that never won, a
slow replica never quarantined or never reinstated, shedding that never
engaged (or never released), a deadline-burn p99 at or past budget, or
σ drift after recovery.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_chaos.json"

SIGMA_ATOL = 1e-9

#: Request-index fractions at which the scripted chaos levers flip.
SLOW_ON, SLOW_OFF = 0.20, 0.32
LOSSY_ON, LOSSY_OFF = 0.45, 0.57
DISKFULL_ON, DISKFULL_OFF = 0.70, 0.82

#: Max shed-retry attempts before a scheduled read counts as failed.
SHED_RETRIES = 30


def quantile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.quantile(np.asarray(samples), q))


def build_fleet(store_dir: Path, seed: int, replicas: int):
    """Publisher (with a fault-wrapped store) + replicas + SLO'd door."""
    from repro.config import FleetParams, ServingParams, SLOParams
    from repro.resilience.faults import FaultPlan, FaultRule, FaultyStore
    from repro.serving import RankingService, ServingFleet, SnapshotStore

    serving = ServingParams(
        max_pending=6,
        backoff_base_seconds=0.02,
        backoff_max_seconds=0.2,
        poll_interval_seconds=0.005,
        seed=seed,
    )
    pub_plan = FaultPlan(seed=seed)
    pub_plan.add("enospc", FaultRule(kind="disk_full"))
    store = FaultyStore(
        SnapshotStore(store_dir, keep=serving.snapshot_keep), pub_plan
    )
    service = RankingService(store, serving=serving)
    params = FleetParams(
        replicas=replicas,
        replica_poll_seconds=0.02,
        probe_interval_seconds=0.1,
        batch_linger_seconds=0.002,
    )
    slo = SLOParams(
        deadline_seconds=5.0,
        hedge_threshold_seconds=0.03,
        hedge_min_samples=20,
        retry_budget_per_second=200.0,
        retry_budget_burst=400.0,
        max_inflight=8,
        shed_retry_after_seconds=0.02,
        eject_latency_seconds=0.06,
        eject_min_samples=4,
        eject_window=16,
        reinstate_backoff_seconds=0.5,
        reinstate_backoff_max_seconds=2.0,
    )
    return service, ServingFleet(service, params, slo=slo), pub_plan


def guarded_read(client, op: str, ids: list[int]) -> tuple[dict, int]:
    """One read, honoring shed retry-after hints; returns (response, sheds)."""
    sheds = 0
    for _ in range(SHED_RETRIES):
        response = client.percentile(ids) if op == "percentile" else (
            client.score(ids)
        )
        if response.get("error") != "AdmissionError":
            return response, sheds
        sheds += 1
        time.sleep(float(response.get("retry_after", 0.02)))
    return response, sheds


# ----------------------------------------------------------------------
# Open-loop load through the scripted chaos schedule
# ----------------------------------------------------------------------
def run_chaos_load(
    fleet,
    service,
    pub_plan,
    evolver,
    assignment,
    kappa,
    *,
    n_sources: int,
    requests: int,
    batch_ids: int,
    burst_threads: int,
    seed: int,
) -> dict:
    from repro.errors import AdmissionError
    from repro.serving import FleetClient

    gen = np.random.default_rng(seed)
    client = fleet.client()
    door = fleet.frontdoor

    warmup: list[float] = []
    for _ in range(20):
        ids = gen.integers(0, n_sources, size=batch_ids).tolist()
        t = time.perf_counter()
        response = client.score(ids)
        warmup.append(time.perf_counter() - t)
        assert response["ok"], response
    interval = max(float(np.median(warmup)) / 0.75, 1e-4)

    marks = {
        "slow_on": int(requests * SLOW_ON),
        "slow_off": int(requests * SLOW_OFF),
        "lossy_on": int(requests * LOSSY_ON),
        "lossy_off": int(requests * LOSSY_OFF),
        "diskfull_on": int(requests * DISKFULL_ON),
        "diskfull_off": int(requests * DISKFULL_OFF),
    }
    snapshots: dict[str, dict] = {}
    replica_chaos: dict[str, dict] = {}
    latencies: list[float] = []
    failures: list[str] = []
    sheds_seen = 0
    updates = {"attempted": 0, "accepted": 0, "refused": 0}
    burst_stop = threading.Event()
    burst_stats = {"ok": 0, "shed": 0, "other": 0}
    burst_lock = threading.Lock()
    burst_pool: list[threading.Thread] = []

    def door_slo_snapshot() -> dict:
        stats = door.stats()
        return {
            "reads": stats["reads"],
            "hedges": stats["slo"]["hedges"],
            "replicas": {
                rid: {
                    k: entry[k]
                    for k in (
                        "state",
                        "evictions",
                        "quarantines",
                        "reinstatements",
                        "flaps",
                    )
                }
                for rid, entry in stats["replicas"].items()
            },
        }

    def submit_update() -> None:
        updates["attempted"] += 1
        try:
            service.submit_update(evolver.step(), assignment, kappa)
            updates["accepted"] += 1
        except AdmissionError:
            updates["refused"] += 1  # backpressure: the load rolls on

    def burst_reader(worker: int) -> None:
        burst_gen = np.random.default_rng(seed + 1000 + worker)
        with FleetClient(door.address, timeout=30.0) as burst_client:
            while not burst_stop.is_set():
                ids = burst_gen.integers(0, n_sources, size=16).tolist()
                response = burst_client.score(ids)
                with burst_lock:
                    if response.get("ok"):
                        burst_stats["ok"] += 1
                    elif response.get("error") == "AdmissionError":
                        burst_stats["shed"] += 1
                    else:
                        burst_stats["other"] += 1
                if response.get("error") == "AdmissionError":
                    time.sleep(float(response.get("retry_after", 0.02)))

    t0 = time.perf_counter()
    for i in range(requests):
        if i == marks["slow_on"]:
            snapshots["slow_on"] = door_slo_snapshot()
            fleet.set_replica_chaos(
                0,
                rules={
                    "syrup": {
                        "kind": "latency",
                        "latency_seconds": 0.08,
                        "jitter_seconds": 0.04,
                    }
                },
                activate=["syrup"],
            )
            submit_update()
        elif i == marks["slow_off"]:
            replica_chaos["0"] = fleet.set_replica_chaos(
                0, deactivate=["syrup"]
            )
            snapshots["slow_off"] = door_slo_snapshot()
        elif i == marks["lossy_on"]:
            snapshots["lossy_on"] = door_slo_snapshot()
            fleet.set_replica_chaos(
                1,
                rules={
                    "reset": {"kind": "reset", "probability": 0.25},
                    "torn": {"kind": "torn", "probability": 0.25},
                },
                activate=["reset", "torn"],
            )
            submit_update()
        elif i == marks["lossy_off"]:
            replica_chaos["1"] = fleet.set_replica_chaos(
                1, deactivate=["reset", "torn"]
            )
            snapshots["lossy_off"] = door_slo_snapshot()
        elif i == marks["diskfull_on"]:
            snapshots["diskfull_on"] = door_slo_snapshot()
            pub_plan.activate("enospc")
            submit_update()  # this publish must hit the full disk
            burst_pool = [
                threading.Thread(
                    target=burst_reader, args=(w,), name=f"burst-{w}"
                )
                for w in range(burst_threads)
            ]
            for thread in burst_pool:
                thread.start()
        elif i == marks["diskfull_off"]:
            burst_stop.set()
            for thread in burst_pool:
                thread.join(timeout=60)
            pub_plan.deactivate("enospc")
            snapshots["diskfull_off"] = door_slo_snapshot()

        arrival = t0 + i * interval
        now = time.perf_counter()
        if now < arrival:
            time.sleep(arrival - now)
        ids = gen.integers(0, n_sources, size=batch_ids).tolist()
        op = "percentile" if i % 7 == 6 else "score"
        response, sheds = guarded_read(client, op, ids)
        done = time.perf_counter()
        latencies.append(done - arrival)
        sheds_seen += sheds
        if not response.get("ok") and len(failures) < 10:
            failures.append(str(response))
    elapsed = time.perf_counter() - t0

    # Belt and braces: the burst must be gone even if the schedule's
    # off-mark was never reached (tiny --requests values).
    burst_stop.set()
    for thread in burst_pool:
        thread.join(timeout=60)

    # Quiesce: every replica back in rotation once all faults are lifted.
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        states = {
            rid: entry["state"]
            for rid, entry in door.stats()["replicas"].items()
        }
        if all(state == "active" for state in states.values()):
            break
        time.sleep(0.1)

    # Shedding must have *released*: with the burst gone, a clean read
    # goes straight through.
    shed_before = door.stats()["reads"]["shed"]
    post_chaos, post_sheds = guarded_read(
        client, "score", gen.integers(0, n_sources, size=batch_ids).tolist()
    )
    shed_released = bool(
        post_chaos.get("ok")
        and post_sheds == 0
        and door.stats()["reads"]["shed"] == shed_before
    )
    client.close()

    return {
        "requests": requests + len(warmup) + 1,
        "scheduled_requests": requests,
        "batch_ids": batch_ids,
        "interval_seconds": interval,
        "target_rate_reads_per_second": batch_ids / interval,
        "elapsed_seconds": elapsed,
        "marks": marks,
        "latency_overall": {
            "count": len(latencies),
            "p50_seconds": quantile(latencies, 0.50),
            "p99_seconds": quantile(latencies, 0.99),
            "max_seconds": max(latencies),
        },
        "snapshots": snapshots,
        "replica_chaos": replica_chaos,
        "sheds_during_main_stream": sheds_seen,
        "burst": dict(burst_stats),
        "shed_released": shed_released,
        "updates": updates,
        "request_failures": failures,
    }


# ----------------------------------------------------------------------
# Post-chaos recovery: publish again, converge, σ identity
# ----------------------------------------------------------------------
def run_recovery(fleet, service, evolver, assignment, kappa) -> dict:
    from repro.errors import AdmissionError
    from repro.serving import replica_request

    version_before = service.health()["snapshot_version"]
    accepted = False
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        try:
            service.submit_update(evolver.step(), assignment, kappa)
            accepted = True
            break
        except AdmissionError:
            time.sleep(0.1)  # breaker backoff from the ENOSPC phase

    while (
        service.health()["staleness_updates"] > 0
        and time.monotonic() < deadline
    ):
        time.sleep(0.02)
    published = service.health()["snapshot_version"]
    versions: dict[str, int | None] = {}
    while time.monotonic() < deadline:
        versions = {
            rid: entry.get("snapshot_version")
            for rid, entry in fleet.frontdoor.health().items()
        }
        if versions and all(v == published for v in versions.values()):
            break
        time.sleep(0.05)

    reference = service.store.latest(kind="sr").result().scores
    per_replica: dict[str, float] = {}
    for rid, handle in sorted(fleet.replicas.items()):
        served = replica_request(handle.address, {"op": "sigma"})["sigma"]
        per_replica[str(rid)] = float(
            np.abs(np.asarray(served) - reference).max()
        )
    return {
        "update_accepted": accepted,
        "version_before": version_before,
        "published_version": published,
        "published_after_diskfull": published > version_before,
        "replica_versions": versions,
        "converged": bool(
            versions and all(v == published for v in versions.values())
        ),
        "sigma_max_diff": max(per_replica.values()),
        "sigma_per_replica": per_replica,
    }


def deadline_burn_p99() -> dict:
    """Worst per-op p99 of elapsed/budget, from the door's histogram."""
    from repro.observability import get_registry

    family = get_registry().histogram(
        "repro_fleet_deadline_burn_ratio", labelnames=("op",)
    )
    per_op: dict[str, float] = {}
    for op in ("score", "percentile", "top_k"):
        child = family.labels(op=op)
        if child.count:
            p99 = child.quantile(0.99)
            if p99 is not None:
                per_op[op] = float(p99)
    return {
        "per_op": per_op,
        "worst": max(per_op.values()) if per_op else 0.0,
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run(
    quick: bool, seed: int, replicas: int, requests: int, batch_ids: int,
    burst_threads: int, store_dir: Path,
) -> dict:
    from bench_fleet import GraphEvolver

    from repro.datasets import load_dataset
    from repro.observability.metrics import reset_registry
    from repro.throttle.vector import ThrottleVector

    reset_registry()
    ds = load_dataset("tiny")
    n = ds.assignment.n_sources
    kappa = np.zeros(n)
    kappa[np.asarray(ds.spam_sources, dtype=np.int64)] = 1.0
    kappa = ThrottleVector(kappa)

    service, fleet, pub_plan = build_fleet(store_dir, seed, replicas)
    service.bootstrap(ds.graph, ds.assignment, kappa)
    evolver = GraphEvolver(ds.graph, seed)

    with fleet:
        load = run_chaos_load(
            fleet,
            service,
            pub_plan,
            evolver,
            ds.assignment,
            kappa,
            n_sources=n,
            requests=requests,
            batch_ids=batch_ids,
            burst_threads=burst_threads,
            seed=seed,
        )
        recovery = run_recovery(fleet, service, evolver, ds.assignment, kappa)
        door = fleet.frontdoor.stats()
        health = fleet.health()
    burn = deadline_burn_p99()

    reads = door["reads"]
    slo = door["slo"]
    per_replica = {
        rid: {
            key: entry[key]
            for key in (
                "state",
                "reads",
                "errors",
                "evictions",
                "quarantines",
                "reinstatements",
                "flaps",
                "latency",
            )
        }
        for rid, entry in door["replicas"].items()
    }
    slow_snap = load["snapshots"].get("slow_off", {})
    shed_on = load["snapshots"].get("diskfull_on", {}).get("reads", {})
    shed_off = load["snapshots"].get("diskfull_off", {}).get("reads", {})
    replica1_fired = load["replica_chaos"].get("1", {}).get("fired", {})
    gates = {
        "zero_failed_reads": bool(
            reads["failed"] == 0
            and reads["rejected"] == 0
            and reads["deadline_missed"] == 0
            and not load["request_failures"]
            and load["burst"]["other"] == 0
        ),
        "min_reads": reads["ok"] >= requests * batch_ids,
        "hedged_reads_won": slo["hedges"]["wins"] >= 1,
        "slow_replica_quarantined": bool(
            per_replica["0"]["quarantines"] >= 1
            and slow_snap.get("replicas", {}).get("0", {}).get(
                "quarantines", 0
            )
            >= 1
        ),
        "slow_replica_reinstated": bool(
            per_replica["0"]["reinstatements"] >= 1
            and per_replica["0"]["state"] == "active"
        ),
        "lossy_link_injected": bool(
            replica1_fired.get("reset", 0) + replica1_fired.get("torn", 0)
            >= 1
        ),
        "lossy_link_survived": bool(
            per_replica["1"]["evictions"] >= 1
            and per_replica["1"]["reinstatements"] >= 1
            and per_replica["1"]["state"] == "active"
        ),
        "diskfull_injected": pub_plan.fired.get("enospc", 0) >= 1,
        "shedding_engaged": bool(
            load["burst"]["shed"] + load["sheds_during_main_stream"] >= 1
            and shed_off.get("shed", 0) > shed_on.get("shed", 0)
        ),
        "shedding_released": load["shed_released"],
        "deadline_burn_bounded": burn["worst"] < 1.0,
        "published_after_diskfull": recovery["published_after_diskfull"],
        "replicas_converged": recovery["converged"],
        "sigma_identity": recovery["sigma_max_diff"] <= SIGMA_ATOL,
        "publisher_healthy": health["publisher"]["state"] == "healthy",
        "every_replica_served": all(
            entry["reads"] > 0 for entry in per_replica.values()
        ),
    }
    return {
        "quick": quick,
        "seed": seed,
        "replicas": replicas,
        "n_sources": int(n),
        "sigma_atol": SIGMA_ATOL,
        "schedule": {
            "slow": [SLOW_ON, SLOW_OFF],
            "lossy": [LOSSY_ON, LOSSY_OFF],
            "diskfull": [DISKFULL_ON, DISKFULL_OFF],
        },
        "load": {
            **{
                k: v
                for k, v in load.items()
                if k not in ("snapshots", "replica_chaos")
            },
            "reads": {
                "total": reads["ok"]
                + reads["failed"]
                + reads["rejected"]
                + reads["shed"]
                + reads["deadline_missed"],
                **reads,
            },
        },
        "phases": load["snapshots"],
        "replica_chaos": load["replica_chaos"],
        "publisher_faults": dict(pub_plan.fired),
        "slo": {
            **slo,
            "deadline_burn_p99": burn,
        },
        "recovery": recovery,
        "per_replica": per_replica,
        "gates": gates,
        "all_passed": all(gates.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small read count (CI mode; every gate still applies)",
    )
    parser.add_argument("--seed", type=int, default=2010)
    parser.add_argument(
        "--replicas", type=int, default=3, help="fleet size (default 3)"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="scheduled batched requests (default 1000, or 150 with --quick)",
    )
    parser.add_argument(
        "--batch-ids",
        type=int,
        default=None,
        help="ids per batched request (default 700, or 500 with --quick)",
    )
    parser.add_argument(
        "--burst-threads",
        type=int,
        default=None,
        help="extra client threads during the disk-full phase "
        "(default 16, or 12 with --quick)",
    )
    parser.add_argument(
        "--out", type=Path, default=RESULTS_PATH, help="output JSON path"
    )
    args = parser.parse_args(argv)
    requests = args.requests or (150 if args.quick else 1000)
    batch_ids = args.batch_ids or (500 if args.quick else 700)
    burst_threads = args.burst_threads or (12 if args.quick else 16)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        report = run(
            args.quick, args.seed, args.replicas, requests, batch_ids,
            burst_threads, Path(tmp) / "snapshots",
        )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    load, slo = report["load"], report["slo"]
    print(
        f"chaos load ({report['replicas']} replicas, "
        f"{load['reads']['ok']:,} reads ok in "
        f"{load['elapsed_seconds']:.1f}s open-loop):"
    )
    print(
        f"  latency p50 {load['latency_overall']['p50_seconds'] * 1e3:.2f}ms "
        f"p99 {load['latency_overall']['p99_seconds'] * 1e3:.2f}ms; "
        f"hedges {slo['hedges']['fired']} fired / {slo['hedges']['wins']} won; "
        f"shed {load['reads']['shed']:,}; "
        f"deadline-burn p99 {slo['deadline_burn_p99']['worst']:.3f}"
    )
    print(
        f"  recovery: publisher v{report['recovery']['published_version']}, "
        f"replicas {report['recovery']['replica_versions']}, "
        f"sigma max diff {report['recovery']['sigma_max_diff']:.2e}"
    )
    for gate, passed in report["gates"].items():
        print(f"  {gate}: {'ok' if passed else 'FAILED'}")
    print(f"  wrote {args.out}")
    if not report["all_passed"]:
        failed = [g for g, ok in report["gates"].items() if not ok]
        print(f"FAIL: gates failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

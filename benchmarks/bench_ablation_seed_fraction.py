"""Ablation — spam-proximity quality vs seed-set size.

The paper seeds the proximity walk with <10 % of known spam and claims
the throttled ranking still demotes the full spam set.  This bench sweeps
the seed fraction from 5 % to 100 % and reports (a) the fraction of
*unseeded* ground-truth spam caught by the top-k throttle and (b) the
mean spam demotion, quantifying how little supervision the defence needs.
"""

from __future__ import annotations

import numpy as np

from repro.config import ExperimentParams, ThrottleParams
from repro.datasets import load_dataset, sample_seed_set
from repro.eval import format_table
from repro.ranking import sourcerank, spam_resilient_sourcerank
from repro.sources import SourceGraph
from repro.throttle import assign_kappa, spam_proximity

_FRACTIONS = (0.05, 0.1, 0.25, 0.5, 1.0)


def _run_seed_fraction_ablation(dataset: str = "wb2001_like"):
    params = ExperimentParams()
    ds = load_dataset(dataset)
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
    baseline = sourcerank(sg, params.ranking)
    base_pct = baseline.percentiles()[ds.spam_sources].mean()

    rows = []
    for fraction in _FRACTIONS:
        rng = np.random.default_rng(params.seed)
        seeds = sample_seed_set(ds.spam_sources, fraction, rng)
        proximity = spam_proximity(sg, seeds, params.proximity)
        kappa = assign_kappa(proximity.scores, params.throttle)
        unseeded = np.setdiff1d(ds.spam_sources, seeds)
        caught = (
            float(kappa.throttled_mask()[unseeded].mean()) if unseeded.size else 1.0
        )
        ranked = spam_resilient_sourcerank(
            sg, kappa, params.ranking, full_throttle="dangling"
        )
        spam_pct = ranked.percentiles()[ds.spam_sources].mean()
        rows.append(
            {
                "seed_fraction": fraction,
                "seeds": int(seeds.size),
                "unseeded_caught": caught,
                "spam_demotion_pts": base_pct - spam_pct,
            }
        )
    return rows


def test_seed_fraction_ablation(benchmark, record, once):
    rows = once(benchmark, _run_seed_fraction_ablation)
    record(
        "ablation_seed_fraction",
        format_table(
            rows,
            ["seed_fraction", "seeds", "unseeded_caught", "spam_demotion_pts"],
            title="Ablation: throttle quality vs spam seed fraction (wb2001_like)",
        ),
    )
    # Even the smallest seed set must catch most unseeded spam (the
    # paper's <10 % claim) and demote the spam set clearly.
    assert rows[0]["unseeded_caught"] >= 0.5
    assert rows[0]["spam_demotion_pts"] > 5

#!/usr/bin/env python
"""Chaos/soak harness for the serving layer: concurrent readers must
never see a failed or wrong read while the updater is being tortured.

Phases:

* **bootstrap** — tiny dataset, spam sources fully throttled, baseline +
  SR snapshots published to a fresh store.
* **chaos** — one update per fault class, each with its expected
  outcome asserted:

  - *nan*: a seeded NaN corrupts a matvec; the ``power → jacobi``
    fallback chain recovers *inside* the update — the service never
    leaves healthy.
  - *crash*: the solve dies mid-iteration; the update is dropped and the
    service degrades to serve-stale.
  - *broken_pool*: a parallel-kernel worker is killed with ``os._exit``;
    the shared-memory pool rebuilds and the update still succeeds.

* **soak** — a background updater streams clean evolving-graph updates
  while reader threads hammer score/top-k/percentile; every response's
  staleness is recorded.
* **torn_snapshot** — the newest snapshot file is truncated behind the
  store's back; a *new* service on the same store must recover to the
  previous healthy snapshot and keep answering.
* **recovery identity** — the final served σ must match a cold
  high-precision solve of the final applied graph to 1e-9.

Writes ``benchmarks/results/BENCH_serving.json``.  Exits non-zero when
any gate fails: a single failed read, staleness beyond the configured
bound, σ drift past 1e-9, or an expected metric stuck at zero.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serving.json"

RECOVERY_ATOL = 1e-9


def counter_value(name: str, **labels: str) -> float:
    from repro.observability.metrics import get_registry

    for family in get_registry().families():
        if family.name == name:
            for child in family.children():
                if child.label_values == labels:
                    return child.value
    return 0.0


class GraphEvolver:
    """Deterministic stream of growing page webs."""

    def __init__(self, graph, seed: int) -> None:
        from repro.graph import add_edges

        self._add_edges = add_edges
        self.graph = graph
        self._gen = np.random.default_rng(seed)

    def step(self):
        src = self._gen.integers(0, self.graph.n_nodes, size=4)
        dst = self._gen.integers(0, self.graph.n_nodes, size=4)
        self.graph = self._add_edges(self.graph, src.tolist(), dst.tolist())
        return self.graph


def build_service(store_dir: Path, seed: int):
    from repro.config import RankingParams, ResilienceParams, ServingParams
    from repro.serving import RankingService

    serving = ServingParams(
        max_pending=6,
        staleness_bound_updates=8,
        backoff_base_seconds=0.02,
        backoff_max_seconds=0.2,
        poll_interval_seconds=0.005,
        seed=seed,
    )
    params = RankingParams(
        tolerance=1e-12,
        max_iter=2000,
        resilience=ResilienceParams(fallback_solvers=("jacobi",)),
    )
    return RankingService(store_dir, params, serving), serving, params


def cold_sigma(graph, assignment, kappa, params):
    from repro.config import RankingParams
    from repro.ranking.srsourcerank import spam_resilient_sourcerank
    from repro.sources import SourceGraph

    cold_params = RankingParams(
        tolerance=params.tolerance, max_iter=params.max_iter
    )
    return spam_resilient_sourcerank(
        SourceGraph.from_page_graph(graph, assignment), kappa, cold_params
    ).scores


# ----------------------------------------------------------------------
# Chaos phase
# ----------------------------------------------------------------------
def run_chaos(service, evolver, assignment, kappa, seed: int) -> dict:
    from repro.resilience.faults import (
        FaultyOperator,
        break_worker_pool,
        crash_at_iteration,
    )

    applied = []
    report: dict = {}

    # Clean update first: a known-good reference point.
    graph = evolver.step()
    service.submit_update(graph, assignment, kappa)
    ok = service.run_pending() == 1
    applied.append(graph)
    report["clean"] = {"applied": ok, "state": service.health()["state"]}

    # NaN corruption: the fallback chain absorbs it inside the update.
    fallbacks_before = counter_value("repro_fallbacks_total", kind="solver")
    graph = evolver.step()
    service.submit_update(
        graph,
        assignment,
        kappa,
        operator_wrap=lambda op: FaultyOperator(op, corrupt_at_call=3, seed=seed),
    )
    ok = service.run_pending() == 1
    if ok:
        applied.append(graph)
    report["nan"] = {
        "applied": ok,
        "state": service.health()["state"],
        "stayed_healthy": service.health()["state"] == "healthy",
        "fallbacks_fired": counter_value("repro_fallbacks_total", kind="solver")
        - fallbacks_before,
    }

    # Mid-solve crash: the update is dropped, the service serves stale.
    graph = evolver.step()
    service.submit_update(
        graph, assignment, kappa, callback=crash_at_iteration(1)
    )
    dropped = service.run_pending() == 0
    stale_response = service.score(0)
    report["crash"] = {
        "dropped": dropped,
        "state": service.health()["state"],
        "went_stale": stale_response.state == "stale",
        "staleness_stamped": stale_response.staleness,
        "reads_during_degradation_ok": True,
    }

    # Killed pool worker: the shared-memory pool rebuilds mid-update.
    def break_pool_then_pass(op):
        shared = getattr(op, "_shared", None)
        if shared is not None:
            break_worker_pool(shared._pool)
        return op

    rebuilds_before = counter_value("repro_fallbacks_total", kind="pool_rebuild")
    graph = evolver.step()
    service.submit_update(
        graph,
        assignment,
        kappa,
        kernel="parallel",
        operator_wrap=break_pool_then_pass,
    )
    ok = service.run_pending() == 1
    if ok:
        applied.append(graph)
    report["broken_pool"] = {
        "applied": ok,
        "state": service.health()["state"],
        "pool_rebuilds_fired": counter_value(
            "repro_fallbacks_total", kind="pool_rebuild"
        )
        - rebuilds_before,
    }

    # Clean recovery: back to healthy with zero staleness.
    graph = evolver.step()
    service.submit_update(graph, assignment, kappa)
    ok = service.run_pending() == 1
    applied.append(graph)
    report["recovery"] = {
        "applied": ok,
        "state": service.health()["state"],
        "staleness": service.score(0).staleness,
    }
    report["ok"] = bool(
        report["clean"]["applied"]
        and report["nan"]["applied"]
        and report["nan"]["stayed_healthy"]
        and report["nan"]["fallbacks_fired"] > 0
        and report["crash"]["dropped"]
        and report["crash"]["went_stale"]
        and report["broken_pool"]["applied"]
        and report["recovery"]["applied"]
        and report["recovery"]["state"] == "healthy"
    )
    return report


# ----------------------------------------------------------------------
# Soak phase
# ----------------------------------------------------------------------
def run_soak(
    service, evolver, assignment, kappa, duration: float, n_readers: int
) -> tuple[dict, list]:
    from repro.errors import AdmissionError

    n = assignment.n_sources
    stop = threading.Event()
    stats_lock = threading.Lock()
    stats = {
        "reads_ok": 0,
        "reads_failed": 0,
        "max_staleness": 0,
        "max_snapshot_age": 0.0,
        "failures": [],
    }

    def reader(reader_seed: int) -> None:
        gen = np.random.default_rng(reader_seed)
        ops = ("score", "top_k", "percentile")
        local_ok = 0
        local_max_staleness = 0
        local_max_age = 0.0
        while not stop.is_set():
            op = ops[int(gen.integers(0, 3))]
            try:
                if op == "score":
                    response = service.score(int(gen.integers(0, n)))
                elif op == "top_k":
                    response = service.top_k(int(gen.integers(1, 10)))
                else:
                    response = service.percentile(int(gen.integers(0, n)))
                local_ok += 1
                local_max_staleness = max(local_max_staleness, response.staleness)
                local_max_age = max(local_max_age, response.snapshot_age)
            except Exception as exc:  # noqa: BLE001 - every failure gates
                with stats_lock:
                    stats["reads_failed"] += 1
                    if len(stats["failures"]) < 10:
                        stats["failures"].append(
                            f"{type(exc).__name__}: {exc}"
                        )
        with stats_lock:
            stats["reads_ok"] += local_ok
            stats["max_staleness"] = max(
                stats["max_staleness"], local_max_staleness
            )
            stats["max_snapshot_age"] = max(
                stats["max_snapshot_age"], local_max_age
            )

    readers = [
        threading.Thread(target=reader, args=(1000 + i,), name=f"reader-{i}")
        for i in range(n_readers)
    ]
    accepted = []
    submitted = 0
    rejected = 0
    t0 = time.perf_counter()
    for thread in readers:
        thread.start()
    try:
        with service:  # background updater drains the queue
            while time.perf_counter() - t0 < duration:
                graph = evolver.step()
                try:
                    service.submit_update(graph, assignment, kappa)
                    accepted.append(graph)
                    submitted += 1
                except AdmissionError:
                    rejected += 1  # backpressure is expected, not a failure
                    evolver.graph = accepted[-1]  # retry from the applied web
                time.sleep(0.01)
            # Drain before stopping so "final graph" == last accepted.
            deadline = time.perf_counter() + 60
            while (
                service.health()["staleness_updates"] > 0
                and time.perf_counter() < deadline
            ):
                time.sleep(0.01)
    finally:
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
    elapsed = time.perf_counter() - t0
    health = service.health()
    report = {
        "seconds": elapsed,
        "updates_submitted": submitted,
        "updates_rejected_backpressure": rejected,
        "reads_ok": stats["reads_ok"],
        "reads_failed": stats["reads_failed"],
        "read_failures": stats["failures"],
        "max_staleness_observed": stats["max_staleness"],
        "max_snapshot_age_seconds": stats["max_snapshot_age"],
        "final_state": health["state"],
        "final_staleness": health["staleness_updates"],
        "drained": health["staleness_updates"] == 0,
    }
    return report, accepted


# ----------------------------------------------------------------------
# Torn-snapshot restart phase
# ----------------------------------------------------------------------
def run_torn_snapshot(store_dir: Path, seed: int) -> dict:
    from repro.serving import SnapshotStore

    store = SnapshotStore(store_dir)
    newest = store.latest(kind="sr")
    previous_healthy = None
    for version in reversed(store.versions()):
        snapshot = store.load(version)
        if (
            snapshot is not None
            and snapshot.kind == "sr"
            and snapshot.version < newest.version
        ):
            previous_healthy = snapshot
            break
    path = store.path_for(newest.version)
    path.write_bytes(path.read_bytes()[:64])  # tear it

    rejects_before = counter_value(
        "repro_snapshot_rejects_total", reason="unreadable"
    )
    service, _, _ = build_service(store_dir, seed)
    response = service.score(0)
    return {
        "torn_version": newest.version,
        "served_version": response.snapshot_version,
        "served_kind": response.snapshot_kind,
        "skipped_torn": response.snapshot_version < newest.version,
        "matches_previous_healthy": (
            previous_healthy is not None
            and response.snapshot_version == previous_healthy.version
        ),
        "rejects_fired": counter_value(
            "repro_snapshot_rejects_total", reason="unreadable"
        )
        - rejects_before,
        "ok": bool(
            response.snapshot_version < newest.version
            and previous_healthy is not None
            and response.snapshot_version == previous_healthy.version
        ),
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run(quick: bool, seed: int, duration: float, store_dir: Path) -> dict:
    from repro.datasets import load_dataset
    from repro.observability.metrics import reset_registry
    from repro.throttle.vector import ThrottleVector

    reset_registry()
    ds = load_dataset("tiny")
    kappa = np.zeros(ds.assignment.n_sources)
    kappa[np.asarray(ds.spam_sources, dtype=np.int64)] = 1.0
    kappa = ThrottleVector(kappa)

    service, serving, params = build_service(store_dir, seed)
    t0 = time.perf_counter()
    service.bootstrap(ds.graph, ds.assignment, kappa)
    bootstrap_seconds = time.perf_counter() - t0

    evolver = GraphEvolver(ds.graph, seed)
    chaos = run_chaos(service, evolver, ds.assignment, kappa, seed)
    n_readers = 2 if quick else 4
    soak, accepted = run_soak(
        service, evolver, ds.assignment, kappa, duration, n_readers
    )

    # Recovery identity: the served σ is byte-for-byte the published
    # snapshot; it must match a cold high-precision solve of the final
    # applied graph to RECOVERY_ATOL.
    final_graph = accepted[-1]
    served = service.store.latest(kind="sr").sigma
    cold = cold_sigma(final_graph, ds.assignment, kappa, params)
    sigma_diff = float(np.abs(served - cold).max())

    service.stop()
    torn = run_torn_snapshot(store_dir, seed)

    transitions_down = counter_value(
        "repro_serving_transitions_total",
        from_state="healthy",
        to_state="stale",
    )
    transitions_up = counter_value(
        "repro_serving_transitions_total",
        from_state="stale",
        to_state="healthy",
    )
    updates_failed = counter_value(
        "repro_serving_updates_total", status="failed"
    )

    gates = {
        "chaos_ok": chaos["ok"],
        "zero_failed_reads": soak["reads_failed"] == 0,
        "staleness_bounded": (
            soak["max_staleness_observed"] <= serving.staleness_bound_updates
        ),
        "soak_drained_healthy": bool(
            soak["drained"] and soak["final_state"] == "healthy"
        ),
        "sigma_identity": sigma_diff <= RECOVERY_ATOL,
        "torn_snapshot_recovered": torn["ok"],
        "metrics_nonzero": bool(
            transitions_down > 0
            and transitions_up > 0
            and updates_failed > 0
            and chaos["nan"]["fallbacks_fired"] > 0
            and torn["rejects_fired"] > 0
        ),
    }
    return {
        "quick": quick,
        "seed": seed,
        "duration_seconds": duration,
        "recovery_atol": RECOVERY_ATOL,
        "staleness_bound_updates": serving.staleness_bound_updates,
        "n_sources": int(ds.assignment.n_sources),
        "bootstrap_seconds": bootstrap_seconds,
        "phases": {
            "chaos": chaos,
            "soak": soak,
            "torn_snapshot": torn,
        },
        "sigma_max_diff": sigma_diff,
        "transitions": {
            "healthy_to_stale": transitions_down,
            "stale_to_healthy": transitions_up,
            "updates_failed": updates_failed,
        },
        "gates": gates,
        "all_passed": all(gates.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short soak (CI mode; every gate still applies)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="soak length in seconds (default 20, or 3 with --quick)",
    )
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--out", type=Path, default=RESULTS_PATH, help="output JSON path"
    )
    args = parser.parse_args(argv)
    duration = args.duration
    if duration is None:
        duration = 3.0 if args.quick else 20.0

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        report = run(args.quick, args.seed, duration, Path(tmp) / "snapshots")
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    soak = report["phases"]["soak"]
    print(
        f"serving soak ({soak['seconds']:.1f}s, "
        f"{soak['reads_ok']:,} reads, "
        f"{soak['updates_submitted']} updates):"
    )
    for gate, passed in report["gates"].items():
        print(f"  {gate}: {'ok' if passed else 'FAILED'}")
    print(
        f"  max staleness {soak['max_staleness_observed']} "
        f"(bound {report['staleness_bound_updates']}), "
        f"sigma max diff {report['sigma_max_diff']:.2e}"
    )
    print(f"  wrote {args.out}")
    if not report["all_passed"]:
        failed = [g for g, ok in report["gates"].items() if not ok]
        print(f"FAIL: gates failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

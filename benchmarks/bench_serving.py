#!/usr/bin/env python
"""Chaos/soak harness for the serving layer: concurrent readers must
never see a failed or wrong read while the updater is being tortured.

Phases:

* **bootstrap** — tiny dataset, spam sources fully throttled, baseline +
  SR snapshots published to a fresh store.
* **chaos** — one update per fault class, each with its expected
  outcome asserted:

  - *nan*: a seeded NaN corrupts a matvec; the ``power → jacobi``
    fallback chain recovers *inside* the update — the service never
    leaves healthy.
  - *crash*: the solve dies mid-iteration; the update is dropped and the
    service degrades to serve-stale.
  - *broken_pool*: a parallel-kernel worker is killed with ``os._exit``;
    the shared-memory pool rebuilds and the update still succeeds.

* **ladder** — crash updates walk the service down the full degradation
  ladder (healthy → stale → baseline → read_only) and one clean queued
  update snaps it back; at every rung the live telemetry endpoint is
  scraped and a read is answered.
* **soak** — a background updater streams clean evolving-graph updates
  while reader threads hammer score/top-k/percentile; every response's
  staleness is recorded.
* **torn_snapshot** — the newest snapshot file is truncated behind the
  store's back; a *new* service on the same store must recover to the
  previous healthy snapshot and keep answering.
* **recovery identity** — the final served σ must match a cold
  high-precision solve of the final applied graph to 1e-9.

The service runs with telemetry v2 on (correlated event log + live
scrape endpoint): scraper threads hammer ``/metrics`` and ``/health``
throughout chaos, ladder, and soak — ≥500 scrapes, across every
degradation state, with zero scrape failures — and at the end every
buffered event must carry the service's ``run_id``.

Writes ``benchmarks/results/BENCH_serving.json``.  Exits non-zero when
any gate fails: a single failed read or scrape, a degradation state the
endpoint never answered from, an uncorrelated event, staleness beyond
the configured bound, σ drift past 1e-9, or an expected metric stuck at
zero.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_serving.json"

RECOVERY_ATOL = 1e-9

MIN_SCRAPES = 500


def counter_value(name: str, **labels: str) -> float:
    from repro.observability.metrics import get_registry

    for family in get_registry().families():
        if family.name == name:
            for child in family.children():
                if child.label_values == labels:
                    return child.value
    return 0.0


class GraphEvolver:
    """Deterministic stream of growing page webs."""

    def __init__(self, graph, seed: int) -> None:
        from repro.graph import add_edges

        self._add_edges = add_edges
        self.graph = graph
        self._gen = np.random.default_rng(seed)

    def step(self):
        src = self._gen.integers(0, self.graph.n_nodes, size=4)
        dst = self._gen.integers(0, self.graph.n_nodes, size=4)
        self.graph = self._add_edges(self.graph, src.tolist(), dst.tolist())
        return self.graph


def build_service(store_dir: Path, seed: int, observe: bool = False):
    from repro.config import (
        ObservabilityParams,
        RankingParams,
        ResilienceParams,
        ServingParams,
    )
    from repro.serving import RankingService

    serving = ServingParams(
        max_pending=6,
        staleness_bound_updates=8,
        backoff_base_seconds=0.02,
        backoff_max_seconds=0.2,
        poll_interval_seconds=0.005,
        seed=seed,
    )
    params = RankingParams(
        tolerance=1e-12,
        max_iter=2000,
        resilience=ResilienceParams(fallback_solvers=("jacobi",)),
    )
    observability = (
        ObservabilityParams(events=True, endpoint=True) if observe else None
    )
    service = RankingService(
        store_dir, params, serving, observability=observability
    )
    return service, serving, params


def cold_sigma(graph, assignment, kappa, params):
    from repro.config import RankingParams
    from repro.ranking.srsourcerank import spam_resilient_sourcerank
    from repro.sources import SourceGraph

    cold_params = RankingParams(
        tolerance=params.tolerance, max_iter=params.max_iter
    )
    return spam_resilient_sourcerank(
        SourceGraph.from_page_graph(graph, assignment), kappa, cold_params
    ).scores


# ----------------------------------------------------------------------
# Telemetry scrapers
# ----------------------------------------------------------------------
class ScrapeHarness:
    """Threads hammering the live ``/metrics`` + ``/health`` endpoint.

    Every scrape is a real HTTP round-trip against the service's
    :class:`~repro.observability.TelemetryServer`; failures (non-200,
    empty body, unparsable health JSON) gate the bench.  ``/health``
    bodies feed ``states_seen`` so the bench can prove the endpoint
    answered from every degradation state.
    """

    def __init__(self, service, n_threads: int = 2) -> None:
        self.service = service
        self._n_threads = n_threads
        self._stop = threading.Event()
        self._lock = threading.Lock()
        self._threads: list[threading.Thread] = []
        self.total = 0
        self.failures = 0
        self.by_endpoint = {"/metrics": 0, "/health": 0}
        self.states_seen: set[str] = set()
        self.failure_messages: list[str] = []

    def scrape_once(self, path: str) -> None:
        from urllib.request import urlopen

        try:
            with urlopen(self.service.telemetry.url(path), timeout=5.0) as resp:
                body = resp.read()
                if resp.status != 200 or not body:
                    raise RuntimeError(f"{path}: status={resp.status}")
                if path == "/health":
                    state = json.loads(body)["state"]
                else:
                    state = self.service.health()["state"]
                    if b"repro_serving" not in body:
                        raise RuntimeError("/metrics: no serving families")
            with self._lock:
                self.total += 1
                self.by_endpoint[path] += 1
                self.states_seen.add(state)
        except Exception as exc:  # noqa: BLE001 - every failure gates
            with self._lock:
                self.total += 1
                self.failures += 1
                if len(self.failure_messages) < 10:
                    self.failure_messages.append(f"{type(exc).__name__}: {exc}")

    def _loop(self, offset: int) -> None:
        paths = ("/metrics", "/health")
        i = offset
        while not self._stop.is_set():
            self.scrape_once(paths[i % 2])
            i += 1
            time.sleep(0.002)

    def start(self) -> "ScrapeHarness":
        self._threads = [
            threading.Thread(target=self._loop, args=(i,), name=f"scraper-{i}")
            for i in range(self._n_threads)
        ]
        for thread in self._threads:
            thread.start()
        return self

    def stop(self) -> None:
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=30)

    def top_up(self, minimum: int) -> None:
        """Keep scraping (single-threaded) until ``minimum`` is reached."""
        while self.total < minimum:
            self.scrape_once("/metrics")
            self.scrape_once("/health")

    def report(self) -> dict:
        with self._lock:
            return {
                "total": self.total,
                "failed": self.failures,
                "by_endpoint": dict(self.by_endpoint),
                "states_seen": sorted(self.states_seen),
                "failure_messages": list(self.failure_messages),
            }


# ----------------------------------------------------------------------
# Degradation-ladder phase
# ----------------------------------------------------------------------
def run_ladder(service, evolver, assignment, kappa, scrape: ScrapeHarness) -> dict:
    """Walk healthy → stale → baseline → read_only → healthy.

    Crash updates are submitted one at a time (queued *before* the
    service turns read-only) so every rung of the ladder is held long
    enough to scrape the endpoint and answer a read from it.
    """
    from repro.errors import AdmissionError
    from repro.resilience.faults import crash_at_iteration
    from repro.serving.service import SERVING_STATES

    rungs = []

    def observe_rung(expected_state: str) -> None:
        state = service.health()["state"]
        scrape.scrape_once("/metrics")
        scrape.scrape_once("/health")
        read_ok = True
        try:
            response = service.score(0)
            read_state = response.state
        except Exception as exc:  # noqa: BLE001 - reads must never fail
            read_ok = False
            read_state = f"read failed: {type(exc).__name__}: {exc}"
        rungs.append(
            {
                "expected": expected_state,
                "state": state,
                "read_ok": read_ok,
                "read_state": read_state,
                "ok": state == expected_state and read_ok,
            }
        )

    observe_rung("healthy")

    # Four consecutive crash updates: stale after 1, baseline after 2,
    # read_only after 4 (ServingParams defaults: baseline_after=2,
    # read_only_after=4).  The recovery update is queued together with
    # the final crash — read_only refuses *new* submissions but still
    # runs what is already queued, and one success snaps back.
    def pump_one() -> None:
        """Run exactly one queued update, waiting out the breaker.

        ``run_pending`` returns without popping while the breaker's
        backoff holds, so "the queue shrank by one" is the signal that
        an attempt actually ran (applied or dropped).
        """
        target = service.pending() - 1
        deadline = time.perf_counter() + 30
        while service.pending() > target and time.perf_counter() < deadline:
            service.run_pending(max_updates=1)
            if service.pending() > target:
                time.sleep(0.01)

    expected_after_failure = ["stale", "baseline", "baseline", "read_only"]
    for i, expected in enumerate(expected_after_failure):
        graph = evolver.step()
        service.submit_update(
            graph, assignment, kappa, callback=crash_at_iteration(1)
        )
        if i == len(expected_after_failure) - 1:
            recovery_graph = evolver.step()
            service.submit_update(recovery_graph, assignment, kappa)
        pump_one()
        observe_rung(expected)

    # Writes are refused in read_only; reads and scrapes continue.
    try:
        service.submit_update(evolver.step(), assignment, kappa)
        refused = False
    except AdmissionError as exc:
        refused = exc.reason == "read_only"
    evolver.graph = recovery_graph  # the refused graph was never applied

    # The breaker is open after four straight failures; wait out its
    # backoff, then the queued clean update runs and snaps back.
    applied = 0
    deadline = time.perf_counter() + 30
    while applied == 0 and time.perf_counter() < deadline:
        applied = service.run_pending()
        if applied == 0:
            time.sleep(0.02)
    applied = applied == 1
    observe_rung("healthy")

    return {
        "rungs": rungs,
        "states_visited": sorted({r["state"] for r in rungs}),
        "read_only_refused_write": refused,
        "recovered": applied,
        "ok": bool(
            all(r["ok"] for r in rungs)
            and refused
            and applied
            and {r["state"] for r in rungs} == set(SERVING_STATES)
        ),
    }


# ----------------------------------------------------------------------
# Chaos phase
# ----------------------------------------------------------------------
def run_chaos(service, evolver, assignment, kappa, seed: int) -> dict:
    from repro.resilience.faults import (
        FaultyOperator,
        break_worker_pool,
        crash_at_iteration,
    )

    applied = []
    report: dict = {}

    # Clean update first: a known-good reference point.
    graph = evolver.step()
    service.submit_update(graph, assignment, kappa)
    ok = service.run_pending() == 1
    applied.append(graph)
    report["clean"] = {"applied": ok, "state": service.health()["state"]}

    # NaN corruption: the fallback chain absorbs it inside the update.
    fallbacks_before = counter_value("repro_fallbacks_total", kind="solver")
    graph = evolver.step()
    service.submit_update(
        graph,
        assignment,
        kappa,
        operator_wrap=lambda op: FaultyOperator(op, corrupt_at_call=3, seed=seed),
    )
    ok = service.run_pending() == 1
    if ok:
        applied.append(graph)
    report["nan"] = {
        "applied": ok,
        "state": service.health()["state"],
        "stayed_healthy": service.health()["state"] == "healthy",
        "fallbacks_fired": counter_value("repro_fallbacks_total", kind="solver")
        - fallbacks_before,
    }

    # Mid-solve crash: the update is dropped, the service serves stale.
    graph = evolver.step()
    service.submit_update(
        graph, assignment, kappa, callback=crash_at_iteration(1)
    )
    dropped = service.run_pending() == 0
    stale_response = service.score(0)
    report["crash"] = {
        "dropped": dropped,
        "state": service.health()["state"],
        "went_stale": stale_response.state == "stale",
        "staleness_stamped": stale_response.staleness,
        "reads_during_degradation_ok": True,
    }

    # Killed pool worker: the shared-memory pool rebuilds mid-update.
    def break_pool_then_pass(op):
        shared = getattr(op, "_shared", None)
        if shared is not None:
            break_worker_pool(shared._pool)
        return op

    rebuilds_before = counter_value("repro_fallbacks_total", kind="pool_rebuild")
    graph = evolver.step()
    service.submit_update(
        graph,
        assignment,
        kappa,
        kernel="parallel",
        operator_wrap=break_pool_then_pass,
    )
    ok = service.run_pending() == 1
    if ok:
        applied.append(graph)
    report["broken_pool"] = {
        "applied": ok,
        "state": service.health()["state"],
        "pool_rebuilds_fired": counter_value(
            "repro_fallbacks_total", kind="pool_rebuild"
        )
        - rebuilds_before,
    }

    # Clean recovery: back to healthy with zero staleness.
    graph = evolver.step()
    service.submit_update(graph, assignment, kappa)
    ok = service.run_pending() == 1
    applied.append(graph)
    report["recovery"] = {
        "applied": ok,
        "state": service.health()["state"],
        "staleness": service.score(0).staleness,
    }
    report["ok"] = bool(
        report["clean"]["applied"]
        and report["nan"]["applied"]
        and report["nan"]["stayed_healthy"]
        and report["nan"]["fallbacks_fired"] > 0
        and report["crash"]["dropped"]
        and report["crash"]["went_stale"]
        and report["broken_pool"]["applied"]
        and report["recovery"]["applied"]
        and report["recovery"]["state"] == "healthy"
    )
    return report


# ----------------------------------------------------------------------
# Soak phase
# ----------------------------------------------------------------------
def run_soak(
    service,
    evolver,
    assignment,
    kappa,
    duration: float,
    n_readers: int,
    before_stop=None,
) -> tuple[dict, list]:
    from repro.errors import AdmissionError

    n = assignment.n_sources
    stop = threading.Event()
    stats_lock = threading.Lock()
    stats = {
        "reads_ok": 0,
        "reads_failed": 0,
        "max_staleness": 0,
        "max_snapshot_age": 0.0,
        "failures": [],
    }

    def reader(reader_seed: int) -> None:
        gen = np.random.default_rng(reader_seed)
        ops = ("score", "top_k", "percentile")
        local_ok = 0
        local_max_staleness = 0
        local_max_age = 0.0
        while not stop.is_set():
            op = ops[int(gen.integers(0, 3))]
            try:
                if op == "score":
                    response = service.score(int(gen.integers(0, n)))
                elif op == "top_k":
                    response = service.top_k(int(gen.integers(1, 10)))
                else:
                    response = service.percentile(int(gen.integers(0, n)))
                local_ok += 1
                local_max_staleness = max(local_max_staleness, response.staleness)
                local_max_age = max(local_max_age, response.snapshot_age)
            except Exception as exc:  # noqa: BLE001 - every failure gates
                with stats_lock:
                    stats["reads_failed"] += 1
                    if len(stats["failures"]) < 10:
                        stats["failures"].append(
                            f"{type(exc).__name__}: {exc}"
                        )
        with stats_lock:
            stats["reads_ok"] += local_ok
            stats["max_staleness"] = max(
                stats["max_staleness"], local_max_staleness
            )
            stats["max_snapshot_age"] = max(
                stats["max_snapshot_age"], local_max_age
            )

    readers = [
        threading.Thread(target=reader, args=(1000 + i,), name=f"reader-{i}")
        for i in range(n_readers)
    ]
    accepted = []
    submitted = 0
    rejected = 0
    t0 = time.perf_counter()
    for thread in readers:
        thread.start()
    try:
        with service:  # background updater drains the queue
            while time.perf_counter() - t0 < duration:
                graph = evolver.step()
                try:
                    service.submit_update(graph, assignment, kappa)
                    accepted.append(graph)
                    submitted += 1
                except AdmissionError:
                    rejected += 1  # backpressure is expected, not a failure
                    evolver.graph = accepted[-1]  # retry from the applied web
                time.sleep(0.01)
            # Drain before stopping so "final graph" == last accepted.
            deadline = time.perf_counter() + 60
            while (
                service.health()["staleness_updates"] > 0
                and time.perf_counter() < deadline
            ):
                time.sleep(0.01)
            if before_stop is not None:
                # Leaving the ``with`` block stops the service and its
                # telemetry endpoint; run last-chance scrapes first.
                before_stop()
    finally:
        stop.set()
        for thread in readers:
            thread.join(timeout=30)
    elapsed = time.perf_counter() - t0
    health = service.health()
    report = {
        "seconds": elapsed,
        "updates_submitted": submitted,
        "updates_rejected_backpressure": rejected,
        "reads_ok": stats["reads_ok"],
        "reads_failed": stats["reads_failed"],
        "read_failures": stats["failures"],
        "max_staleness_observed": stats["max_staleness"],
        "max_snapshot_age_seconds": stats["max_snapshot_age"],
        "final_state": health["state"],
        "final_staleness": health["staleness_updates"],
        "drained": health["staleness_updates"] == 0,
    }
    return report, accepted


# ----------------------------------------------------------------------
# Torn-snapshot restart phase
# ----------------------------------------------------------------------
def run_torn_snapshot(store_dir: Path, seed: int) -> dict:
    from repro.serving import SnapshotStore

    store = SnapshotStore(store_dir)
    newest = store.latest(kind="sr")
    previous_healthy = None
    for version in reversed(store.versions()):
        snapshot = store.load(version)
        if (
            snapshot is not None
            and snapshot.kind == "sr"
            and snapshot.version < newest.version
        ):
            previous_healthy = snapshot
            break
    path = store.path_for(newest.version)
    path.write_bytes(path.read_bytes()[:64])  # tear it

    rejects_before = counter_value(
        "repro_snapshot_rejects_total", reason="unreadable"
    )
    service, _, _ = build_service(store_dir, seed)
    response = service.score(0)
    return {
        "torn_version": newest.version,
        "served_version": response.snapshot_version,
        "served_kind": response.snapshot_kind,
        "skipped_torn": response.snapshot_version < newest.version,
        "matches_previous_healthy": (
            previous_healthy is not None
            and response.snapshot_version == previous_healthy.version
        ),
        "rejects_fired": counter_value(
            "repro_snapshot_rejects_total", reason="unreadable"
        )
        - rejects_before,
        "ok": bool(
            response.snapshot_version < newest.version
            and previous_healthy is not None
            and response.snapshot_version == previous_healthy.version
        ),
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run(quick: bool, seed: int, duration: float, store_dir: Path) -> dict:
    from repro.datasets import load_dataset
    from repro.observability.metrics import reset_registry
    from repro.throttle.vector import ThrottleVector

    reset_registry()
    ds = load_dataset("tiny")
    kappa = np.zeros(ds.assignment.n_sources)
    kappa[np.asarray(ds.spam_sources, dtype=np.int64)] = 1.0
    kappa = ThrottleVector(kappa)

    service, serving, params = build_service(store_dir, seed, observe=True)
    t0 = time.perf_counter()
    service.bootstrap(ds.graph, ds.assignment, kappa)
    bootstrap_seconds = time.perf_counter() - t0

    evolver = GraphEvolver(ds.graph, seed)
    scrape = ScrapeHarness(service).start()
    try:
        chaos = run_chaos(service, evolver, ds.assignment, kappa, seed)
        ladder = run_ladder(service, evolver, ds.assignment, kappa, scrape)
        n_readers = 2 if quick else 4

        def finish_scraping() -> None:
            scrape.stop()
            scrape.top_up(MIN_SCRAPES)

        soak, accepted = run_soak(
            service,
            evolver,
            ds.assignment,
            kappa,
            duration,
            n_readers,
            before_stop=finish_scraping,
        )
    finally:
        scrape.stop()

    # Recovery identity: the served σ is byte-for-byte the published
    # snapshot; it must match a cold high-precision solve of the final
    # applied graph to RECOVERY_ATOL.
    final_graph = accepted[-1]
    served = service.store.latest(kind="sr").sigma
    cold = cold_sigma(final_graph, ds.assignment, kappa, params)
    sigma_diff = float(np.abs(served - cold).max())

    # Every buffered event must carry the service's run id — one id
    # stitches bootstrap → chaos → ladder → soak → snapshot publishes.
    buffered = service.events.events()
    run_id = service.run_id
    events_correlated = bool(buffered) and all(
        event["run_id"] == run_id for event in buffered
    )
    event_kinds = sorted({event["kind"] for event in buffered})
    telemetry = {
        "run_id": run_id,
        "events_emitted": len(service.events),
        "events_buffered": len(buffered),
        "events_correlated": events_correlated,
        "event_kinds": event_kinds,
        "scrapes": scrape.report(),
        "min_scrapes": MIN_SCRAPES,
    }

    service.stop()
    torn = run_torn_snapshot(store_dir, seed)

    transitions_down = counter_value(
        "repro_serving_transitions_total",
        from_state="healthy",
        to_state="stale",
    )
    transitions_up = counter_value(
        "repro_serving_transitions_total",
        from_state="stale",
        to_state="healthy",
    )
    updates_failed = counter_value(
        "repro_serving_updates_total", status="failed"
    )

    scrapes = telemetry["scrapes"]
    gates = {
        "chaos_ok": chaos["ok"],
        "ladder_ok": ladder["ok"],
        "zero_failed_reads": soak["reads_failed"] == 0,
        "scrapes_ok": bool(
            scrapes["total"] >= MIN_SCRAPES and scrapes["failed"] == 0
        ),
        "scraped_all_states": set(scrapes["states_seen"])
        >= {"healthy", "stale", "baseline", "read_only"},
        "events_correlated": events_correlated,
        "staleness_bounded": (
            soak["max_staleness_observed"] <= serving.staleness_bound_updates
        ),
        "soak_drained_healthy": bool(
            soak["drained"] and soak["final_state"] == "healthy"
        ),
        "sigma_identity": sigma_diff <= RECOVERY_ATOL,
        "torn_snapshot_recovered": torn["ok"],
        "metrics_nonzero": bool(
            transitions_down > 0
            and transitions_up > 0
            and updates_failed > 0
            and chaos["nan"]["fallbacks_fired"] > 0
            and torn["rejects_fired"] > 0
        ),
    }
    return {
        "quick": quick,
        "seed": seed,
        "duration_seconds": duration,
        "recovery_atol": RECOVERY_ATOL,
        "staleness_bound_updates": serving.staleness_bound_updates,
        "n_sources": int(ds.assignment.n_sources),
        "bootstrap_seconds": bootstrap_seconds,
        "phases": {
            "chaos": chaos,
            "ladder": ladder,
            "soak": soak,
            "torn_snapshot": torn,
        },
        "telemetry": telemetry,
        "sigma_max_diff": sigma_diff,
        "transitions": {
            "healthy_to_stale": transitions_down,
            "stale_to_healthy": transitions_up,
            "updates_failed": updates_failed,
        },
        "gates": gates,
        "all_passed": all(gates.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="short soak (CI mode; every gate still applies)",
    )
    parser.add_argument(
        "--duration",
        type=float,
        default=None,
        help="soak length in seconds (default 20, or 3 with --quick)",
    )
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--out", type=Path, default=RESULTS_PATH, help="output JSON path"
    )
    args = parser.parse_args(argv)
    duration = args.duration
    if duration is None:
        duration = 3.0 if args.quick else 20.0

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        report = run(args.quick, args.seed, duration, Path(tmp) / "snapshots")
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    soak = report["phases"]["soak"]
    telemetry = report["telemetry"]
    print(
        f"serving soak ({soak['seconds']:.1f}s, "
        f"{soak['reads_ok']:,} reads, "
        f"{soak['updates_submitted']} updates):"
    )
    print(
        f"  telemetry: {telemetry['scrapes']['total']} scrapes "
        f"({telemetry['scrapes']['failed']} failed) across states "
        f"{telemetry['scrapes']['states_seen']}; "
        f"{telemetry['events_emitted']} events on {telemetry['run_id']}"
    )
    for gate, passed in report["gates"].items():
        print(f"  {gate}: {'ok' if passed else 'FAILED'}")
    print(
        f"  max staleness {soak['max_staleness_observed']} "
        f"(bound {report['staleness_bound_updates']}), "
        f"sigma max diff {report['sigma_max_diff']:.2e}"
    )
    print(f"  wrote {args.out}")
    if not report["all_passed"]:
        failed = [g for g, ok in report["gates"].items() if not ok]
        print(f"FAIL: gates failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Table 1 — Source Summary.

Paper: UK2002 98,221 sources / 1,625,097 edges; IT2004 141,103 / 2,862,460;
WB2001 738,626 / 12,554,332.  We regenerate the scaled synthetic analogues
and report the same columns plus the paper's values; the shape target is
the edges-per-source density (UK 16.5 / IT 20.3 / WB 17.0).
"""

from __future__ import annotations

from repro.eval.experiments import run_table1


def test_table1_source_summary(benchmark, record, once):
    result = once(benchmark, run_table1)
    record("table1_source_summary", result.format())
    for row in result.rows:
        ours = row["edges_per_source"]
        paper = row["paper_edges_per_source"]
        assert abs(ours - paper) / paper < 0.25, row["dataset"]

"""Fig. 2 — Change in SR-SourceRank score by tuning kappa from a baseline
value to 1.

Paper calibration (alpha = 0.85): 6.67x at kappa=0, 2x at kappa=0.8,
1.57x at kappa=0.9, 1x at kappa=1.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import run_fig2


def test_fig2_self_tuning_boost(benchmark, record, once):
    result = once(benchmark, run_fig2, (0.80, 0.85, 0.90))
    record("fig2_self_tuning", result.format())
    curve = result.curves[0.85]
    kappas = result.kappas
    assert curve[np.searchsorted(kappas, 0.0)] == pytest.approx(6.667, rel=1e-3)
    assert curve[np.searchsorted(kappas, 0.80)] == pytest.approx(2.133, rel=1e-3)
    assert curve[np.searchsorted(kappas, 0.90)] == pytest.approx(1.567, rel=1e-3)
    assert curve[-1] == pytest.approx(1.0)

"""Ablation — uniform (Section 3.1) vs source-consensus (Section 3.2)
edge weighting under hijack attacks.

Question: does consensus weighting actually raise the cost of hijacking?
Protocol: hijack an increasing number of pages of one legitimate source
to point at a spam target; measure the target source's score
amplification under both weightings.  Expectation: with few captured
pages, consensus amplification stays well below uniform amplification
(a single captured page immediately moves a uniform edge weight to
1/out-degree; consensus scales it by 1/|pages|).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.datasets import load_dataset
from repro.ranking import sourcerank
from repro.sources import SourceGraph
from repro.spam import HijackAttack, evaluate_attack


def _run_weighting_ablation():
    ds = load_dataset("tiny", with_spam=False)
    params = RankingParams()
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
    base = sourcerank(sg, params)
    target_source = int(base.order()[-1])
    target_page = int(ds.assignment.pages_of(target_source)[0])
    victim_source = int(np.argmax(ds.assignment.source_sizes))
    victims_all = ds.assignment.pages_of(victim_source)
    victims_all = victims_all[victims_all != target_page]

    rows = []
    for n_captured in (1, 2, len(victims_all) // 2, len(victims_all)):
        row = {"captured_pages": n_captured}
        for weighting in ("uniform", "consensus"):
            ev = evaluate_attack(
                ds.graph,
                ds.assignment,
                HijackAttack(target_page, victims_all[:n_captured]),
                params=params,
                weighting=weighting,
            )
            row[weighting] = ev.srsr_record.amplification
        rows.append(row)
    return rows


def test_weighting_ablation_hijack(benchmark, record, once):
    rows = once(benchmark, _run_weighting_ablation)
    from repro.eval import format_table

    record(
        "ablation_weighting",
        format_table(
            rows,
            ["captured_pages", "uniform", "consensus"],
            title="Ablation: hijack amplification, uniform vs consensus weighting",
        ),
    )
    # With a single captured page, consensus must beat uniform clearly.
    assert rows[0]["consensus"] < rows[0]["uniform"]
    # Consensus amplification must grow with captured pages (the paper's
    # "burden on the hijacker to capture many pages").
    consensus = [r["consensus"] for r in rows]
    assert consensus[0] < consensus[-1]

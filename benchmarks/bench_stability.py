"""Stability study — random vs adversarial perturbation.

Backs the paper's Section 6.2 remark: "Although PageRank has typically
been thought to provide fairly stable rankings (e.g., [27]), we can see
how link-based manipulation has a profound impact."  Both regimes spend
the *same* edge budget; stability in the random regime and fragility in
the adversarial one are two sides of the same ranking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import adversarial_impact, random_perturbation_stability
from repro.config import RankingParams
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.ranking import pagerank

_BUDGETS = (10, 100, 1000)


def _run_stability(dataset: str = "uk2002_like"):
    ds = load_dataset(dataset, with_spam=False)
    params = RankingParams()
    before = pagerank(ds.graph, params)
    target = int(before.order()[-int(0.25 * before.n)])
    rows = []
    for budget in _BUDGETS:
        random_report = random_perturbation_stability(
            ds.graph, budget, np.random.default_rng(budget), params, before=before
        )
        adv_report, gain = adversarial_impact(
            ds.graph, target, budget, params, before=before
        )
        rows.append(
            {
                "edge_budget": budget,
                "random_spearman": random_report.spearman,
                "random_mean_shift": random_report.mean_percentile_shift,
                "adversarial_spearman": adv_report.spearman,
                "target_pct_gain": gain,
            }
        )
    return rows


def test_stability_random_vs_adversarial(benchmark, record, once):
    rows = once(benchmark, _run_stability)
    record(
        "stability",
        format_table(
            rows,
            [
                "edge_budget",
                "random_spearman",
                "random_mean_shift",
                "adversarial_spearman",
                "target_pct_gain",
            ],
            title=(
                "Stability: same edge budget, random vs concentrated on "
                "one target (PageRank, uk2002_like)"
            ),
        ),
    )
    for row in rows:
        # Random perturbation leaves the global ranking nearly intact...
        assert row["random_spearman"] > 0.95
        # ...while the adversary moves their target massively with the
        # larger budgets.
    assert rows[-1]["target_pct_gain"] > 40

"""Fig. 3 — Additional sources needed under throttling factor kappa' to
equal the impact when kappa = 0.

Paper calibration (alpha = 0.85): 23 % at kappa'=0.6, 60 % at 0.8,
135 % at 0.9, 1485 % at 0.99.  The empirical series simulates the same
question on explicit source graphs and must track the closed form.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import run_fig3


def test_fig3_analytic_curve(benchmark, record, once):
    result = once(
        benchmark,
        run_fig3,
        0.85,
        np.asarray([0.0, 0.2, 0.4, 0.6, 0.8, 0.9, 0.95, 0.99]),
    )
    record("fig3_extra_sources", result.format())
    pct = dict(zip(np.round(result.kappa_primes, 2), result.analytic_pct))
    assert pct[0.60] == pytest.approx(22.5, rel=1e-3)
    assert pct[0.80] == pytest.approx(60.0, rel=1e-3)
    assert pct[0.90] == pytest.approx(135.0, rel=1e-3)
    assert pct[0.99] == pytest.approx(1485.0, rel=1e-3)


def test_fig3_empirical_validation(benchmark, record, once):
    result = once(
        benchmark,
        run_fig3,
        0.85,
        np.asarray([0.4, 0.6, 0.8]),
        empirical=True,
    )
    record("fig3_extra_sources_empirical", result.format())
    np.testing.assert_allclose(result.empirical_pct, result.analytic_pct, rtol=0.08)

#!/usr/bin/env python
"""Sharded-substrate benchmark: out-of-core solving vs the in-memory path.

Measures the three claims the sharded graph substrate makes:

* **scaling** — SR-SourceRank solve time over a
  :class:`~repro.linalg.BlockedOperator` stays near-flat as the same
  graph is re-sharded into more (smaller) row blocks: the per-iteration
  work is one decode + scatter pass over the same edges regardless of
  how they are partitioned, so the max/min solve-time ratio across block
  counts is the gate (``scaling.max_over_min_ratio``, absolute bound 2).
* **memory** — the sharded solve's peak RSS stays below the materialized
  baseline's.  Each measurement runs in a fresh *spawned* subprocess so
  ``ru_maxrss`` reflects exactly one code path; a null child (imports +
  store open, no solve) is measured too and subtracted from both, so the
  gated ratio (``memory.sharded_over_baseline``) compares the solve
  footprints, not the interpreter's.
* **equivalence** — blocked and materialized solves agree to 1e-9
  elementwise (both run at an inner tolerance of 1e-12; the differential
  oracle proves the same bound across every solver, this bench proves it
  at scale).

Plus shard decode throughput (edges/s with digest verification — the
honest per-sweep cost of an out-of-core iteration) and one block-parallel
solve (recorded, not gated: worker counts vary across CI boxes).

Writes ``benchmarks/results/BENCH_sharding.json``; the ledger tracks the
metrics above.  ``--quick`` runs a small graph for CI (timings recorded,
equivalence still the hard gate; the memory ratio is only meaningful at
full scale where the matrix dwarfs the interpreter).
"""

from __future__ import annotations

import argparse
import json
import math
import multiprocessing as mp
import resource
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_sharding.json"

EQUIVALENCE_ATOL = 1e-9
SOLVE_TOLERANCE = 1e-9
EQUIVALENCE_SOLVE_TOLERANCE = 1e-12


def _make_kappa(n: int, seed: int) -> np.ndarray:
    """Deterministic throttle vector: ~1% fully throttled, ~2% partial."""
    rng = np.random.default_rng([seed, 7])
    kappa = np.zeros(n, dtype=np.float64)
    full = rng.choice(n, size=max(1, n // 100), replace=False)
    partial = rng.choice(n, size=max(1, n // 50), replace=False)
    kappa[partial] = 0.5
    kappa[full] = 1.0
    return kappa


def _blocked_solve(
    store_dir: str,
    kappa: np.ndarray,
    *,
    tolerance: float,
    workers: int = 0,
    cache_blocks: int = 2,
):
    from repro.config import RankingParams
    from repro.linalg import BlockedOperator, ThrottledOperator
    from repro.linalg.registry import solver_registry

    params = RankingParams(tolerance=tolerance, max_iter=5000)
    with BlockedOperator(
        store_dir, cache_blocks=cache_blocks, workers=workers
    ) as base:
        operand = ThrottledOperator(base, kappa, full_throttle="dangling")
        try:
            return solver_registry.solve(
                operand, params, solver="power", label="bench-sharding"
            )
        finally:
            operand.close()


def _reshard(store, out_dir: Path, factor: int):
    """Rewrite a store with ``factor``x coarser blocks (same rows/edges)."""
    import scipy.sparse as sp

    from repro.webgraph.store import ShardedStoreWriter

    writer = ShardedStoreWriter(
        out_dir, store.n_sources, block_size=store.block_size * factor
    )
    pending = []
    for _info, block in store.iter_blocks(verify=False):
        pending.append(block)
        if len(pending) == factor:
            writer.append_matrix(sp.vstack(pending, format="csr"))
            pending = []
    if pending:
        writer.append_matrix(sp.vstack(pending, format="csr"))
    return writer.finalize(meta=dict(store.meta or {}, resharded_by=factor))


# ----------------------------------------------------------------------
# Peak-RSS measurement (one code path per spawned child)
# ----------------------------------------------------------------------
def _peak_rss_mb() -> float:
    """This process's own peak resident set, in MB.

    ``ru_maxrss`` is inherited across fork+exec on Linux, so a spawned
    child whose parent already peaked high would report the *parent's*
    peak.  ``VmHWM`` lives on the mm and is reset by exec, so it reflects
    only this process; fall back to ``ru_maxrss`` where /proc is absent.
    """
    try:
        with open("/proc/self/status", encoding="ascii") as fh:
            for line in fh:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) / 1024.0  # kB
    except (OSError, ValueError, IndexError):
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _measure_child(mode: str, store_dir: str, seed: int, queue) -> None:
    """Run one code path and report its peak RSS + solve time.

    Spawned (not forked) so the child's ``ru_maxrss`` covers exactly its
    own imports + this one path, with no memory inherited from the bench.
    """
    t0 = time.perf_counter()
    out = {"mode": mode, "solve_seconds": None, "iterations": None}
    from repro.webgraph.store import ShardedGraphStore

    store = ShardedGraphStore.open(store_dir)
    n = store.n_sources
    if mode != "null":
        kappa = _make_kappa(n, seed)
        if mode == "baseline":
            from repro.config import RankingParams
            from repro.linalg import CsrOperator, ThrottledOperator
            from repro.linalg.registry import solver_registry

            matrix = store.materialize()
            operand = ThrottledOperator(
                CsrOperator(matrix), kappa, full_throttle="dangling"
            )
            t1 = time.perf_counter()
            result = solver_registry.solve(
                operand,
                RankingParams(tolerance=SOLVE_TOLERANCE, max_iter=5000),
                solver="power",
                label="bench-sharding-baseline",
            )
            operand.close()
        else:
            t1 = time.perf_counter()
            result = _blocked_solve(
                store_dir, kappa, tolerance=SOLVE_TOLERANCE
            )
        out["solve_seconds"] = time.perf_counter() - t1
        out["iterations"] = int(result.convergence.iterations)
    out["total_seconds"] = time.perf_counter() - t0
    out["peak_rss_mb"] = _peak_rss_mb()
    queue.put(out)


def _measure_rss(mode: str, store_dir: str, seed: int) -> dict:
    ctx = mp.get_context("spawn")
    queue = ctx.Queue()
    proc = ctx.Process(
        target=_measure_child, args=(mode, store_dir, seed, queue)
    )
    proc.start()
    out = queue.get()
    proc.join()
    return out


# ----------------------------------------------------------------------
def run(quick: bool, seed: int, workdir: Path) -> dict:
    from repro.datasets import SyntheticSourceConfig, generate_source_store
    from repro.throttle.transform import throttle_transform
    from repro.linalg.registry import solver_registry
    from repro.config import RankingParams

    n_sources = 60_000 if quick else 1_000_000
    block_counts = [4, 2] if quick else [32, 16, 8, 4]
    finest = max(block_counts)
    block_size = math.ceil(n_sources / finest)

    report: dict = {
        "n_sources": n_sources,
        "quick": quick,
        "seed": seed,
        "equivalence_atol": EQUIVALENCE_ATOL,
        "solve_tolerance": SOLVE_TOLERANCE,
    }

    # --- generation: shard-at-a-time, never holding the edge list ---------
    config = SyntheticSourceConfig(n_sources=n_sources, seed=seed)
    t0 = time.perf_counter()
    stores = {
        finest: generate_source_store(
            config, workdir / f"blocks-{finest}", block_size=block_size
        )
    }
    gen_seconds = time.perf_counter() - t0
    base_store = stores[finest]
    report["generate"] = {
        "seconds": gen_seconds,
        "n_edges": base_store.n_edges,
        "n_blocks": base_store.n_blocks,
        "payload_bytes": base_store.payload_bytes,
        "bits_per_edge": 8.0 * base_store.payload_bytes / base_store.n_edges,
        "edges_per_second": base_store.n_edges / gen_seconds,
    }
    for count in block_counts:
        if count not in stores:
            stores[count] = _reshard(
                base_store, workdir / f"blocks-{count}", finest // count
            )

    kappa = _make_kappa(n_sources, seed)

    # --- solve-time scaling across block counts ---------------------------
    # cache_blocks=1 so every point is genuinely out-of-core: a cache
    # that fits the whole store would degenerate to the in-memory path
    # and make the smallest block count spuriously fast.
    points = []
    for count in sorted(block_counts):
        store = stores[count]
        t0 = time.perf_counter()
        result = _blocked_solve(
            str(store.directory),
            kappa,
            tolerance=SOLVE_TOLERANCE,
            cache_blocks=1,
        )
        seconds = time.perf_counter() - t0
        points.append(
            {
                "n_blocks": store.n_blocks,
                "block_size": store.block_size,
                "solve_seconds": seconds,
                "iterations": int(result.convergence.iterations),
                "converged": bool(result.convergence.converged),
            }
        )
    times = [p["solve_seconds"] for p in points]
    report["scaling"] = {
        "block_counts": [p["n_blocks"] for p in points],
        "points": points,
        "min_seconds": min(times),
        "max_seconds": max(times),
        "max_over_min_ratio": max(times) / min(times),
    }

    # --- blocked == materialized equivalence ------------------------------
    blocked = _blocked_solve(
        str(base_store.directory),
        kappa,
        tolerance=EQUIVALENCE_SOLVE_TOLERANCE,
    )
    matrix = base_store.materialize()
    operand = throttle_transform(matrix, kappa, full_throttle="dangling")
    materialized = solver_registry.solve(
        operand,
        RankingParams(tolerance=EQUIVALENCE_SOLVE_TOLERANCE, max_iter=5000),
        solver="power",
        label="bench-sharding-materialized",
    )
    max_diff = float(np.abs(blocked.scores - materialized.scores).max())
    report["equivalence"] = {
        "max_score_diff": max_diff,
        "blocked_iterations": int(blocked.convergence.iterations),
        "materialized_iterations": int(materialized.convergence.iterations),
    }
    ok = max_diff <= EQUIVALENCE_ATOL
    del matrix, operand, blocked, materialized

    # --- peak RSS: sharded vs materialized baseline -----------------------
    store_dir = str(base_store.directory)
    null_rss = _measure_rss("null", store_dir, seed)
    baseline_rss = _measure_rss("baseline", store_dir, seed)
    sharded_rss = _measure_rss("sharded", store_dir, seed)
    base_net = baseline_rss["peak_rss_mb"] - null_rss["peak_rss_mb"]
    shard_net = sharded_rss["peak_rss_mb"] - null_rss["peak_rss_mb"]
    report["memory"] = {
        "null_peak_mb": null_rss["peak_rss_mb"],
        "baseline_peak_mb": baseline_rss["peak_rss_mb"],
        "sharded_peak_mb": sharded_rss["peak_rss_mb"],
        "baseline_net_mb": base_net,
        "sharded_net_mb": shard_net,
        "sharded_over_baseline": (
            shard_net / base_net if base_net > 0 else None
        ),
        "baseline_solve_seconds": baseline_rss["solve_seconds"],
        "sharded_solve_seconds": sharded_rss["solve_seconds"],
    }

    # --- decode throughput (with digest verification) ---------------------
    t0 = time.perf_counter()
    decoded_edges = 0
    for _info, block in base_store.iter_blocks(verify=True):
        decoded_edges += block.nnz
    decode_seconds = time.perf_counter() - t0
    report["decode"] = {
        "seconds": decode_seconds,
        "edges": decoded_edges,
        "edges_per_second": decoded_edges / decode_seconds,
        "payload_mb_per_second": (
            base_store.payload_bytes / 1e6 / decode_seconds
        ),
    }

    # --- block-parallel solve (recorded, not gated) -----------------------
    workers = min(4, mp.cpu_count())
    t0 = time.perf_counter()
    parallel = _blocked_solve(
        str(base_store.directory),
        kappa,
        tolerance=SOLVE_TOLERANCE,
        workers=workers,
    )
    report["parallel"] = {
        "workers": workers,
        "solve_seconds": time.perf_counter() - t0,
        "iterations": int(parallel.convergence.iterations),
        "serial_seconds": min(times),
    }

    report["equivalent"] = ok
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph (CI mode; equivalence still gates)",
    )
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--out", type=Path, default=RESULTS_PATH, help="output JSON path"
    )
    args = parser.parse_args(argv)

    with tempfile.TemporaryDirectory(prefix="bench-sharding-") as tmp:
        report = run(args.quick, args.seed, Path(tmp))
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    gen = report["generate"]
    scaling = report["scaling"]
    memory = report["memory"]
    decode = report["decode"]
    print(
        f"sharding bench (n={report['n_sources']:,}, "
        f"edges={gen['n_edges']:,}):"
    )
    print(
        f"  generate: {gen['seconds']:.1f}s "
        f"({gen['edges_per_second']:.0f} edges/s, "
        f"{gen['bits_per_edge']:.2f} bits/edge)"
    )
    for p in scaling["points"]:
        print(
            f"  solve @ {p['n_blocks']:3d} blocks: {p['solve_seconds']:.2f}s "
            f"({p['iterations']} iters)"
        )
    print(
        f"  scaling ratio (max/min): {scaling['max_over_min_ratio']:.2f}"
    )
    print(
        f"  equivalence: max |diff| {report['equivalence']['max_score_diff']:.2e}"
    )
    ratio = memory["sharded_over_baseline"]
    print(
        f"  peak RSS: baseline {memory['baseline_peak_mb']:.0f} MB, "
        f"sharded {memory['sharded_peak_mb']:.0f} MB "
        f"(net ratio {ratio:.2f})" if ratio is not None else
        f"  peak RSS: baseline {memory['baseline_peak_mb']:.0f} MB, "
        f"sharded {memory['sharded_peak_mb']:.0f} MB"
    )
    print(
        f"  decode: {decode['edges_per_second'] / 1e6:.1f}M edges/s "
        f"(verified, {decode['payload_mb_per_second']:.0f} MB/s)"
    )
    par = report["parallel"]
    print(
        f"  parallel ({par['workers']} workers): {par['solve_seconds']:.2f}s "
        f"vs serial {par['serial_seconds']:.2f}s"
    )
    print(f"  wrote {args.out}")
    if not report["equivalent"]:
        print(
            f"FAIL: blocked and materialized scores differ beyond "
            f"{EQUIVALENCE_ATOL:g}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

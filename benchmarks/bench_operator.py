#!/usr/bin/env python
"""Operator-layer benchmark: materialized vs lazy SR-SourceRank.

Times the two ways of computing Spam-Resilient SourceRank —

* **materialized**: build the explicit throttled matrix ``T''`` with
  :func:`repro.throttle.transform.throttle_transform`, then power-iterate
  on it (the pre-operator-layer code path);
* **lazy**: power-iterate directly on a
  :class:`~repro.linalg.ThrottledOperator` over the base matrix, never
  materializing ``T''``

— plus a 5-point κ-sweep in both styles, where the lazy path additionally
reuses one base :class:`~repro.linalg.CsrOperator` (one transposed CSR)
across every κ while the materialized path rebuilds everything per point.

Writes ``benchmarks/results/BENCH_operator.json``.  The script is a
regression gate as well as a bench: it exits non-zero if the lazy and
materialized score vectors disagree beyond 1e-9, in any mode.  Run with
``--quick`` in CI for a small graph and fewer repeats (timings are
recorded but not asserted there — CI boxes are noisy; the equivalence
check is the hard gate).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_operator.json"

EQUIVALENCE_ATOL = 1e-9


def build_source_graph(n_sources: int, seed: int):
    """A consensus-weighted source graph from a synthetic page graph."""
    from repro.datasets import load_dataset
    from repro.sources import SourceAssignment, SourceGraph

    if n_sources <= 200:
        ds = load_dataset("tiny")
        return SourceGraph.from_page_graph(ds.graph, ds.assignment)
    from repro.graph import PageGraph

    gen = np.random.default_rng(seed)
    n_pages = n_sources * 12
    n_edges = n_pages * 8
    graph = PageGraph.from_edges(
        gen.integers(0, n_pages, n_edges),
        gen.integers(0, n_pages, n_edges),
        n_pages,
    )
    ids = gen.integers(0, n_sources, n_pages)
    ids[:n_sources] = np.arange(n_sources)
    assignment = SourceAssignment(ids.astype(np.int64))
    return SourceGraph.from_page_graph(graph, assignment)


def time_repeats(fn, repeats: int) -> tuple[float, object]:
    """Best-of-N wall time plus the last return value."""
    best = np.inf
    value = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        value = fn()
        best = min(best, time.perf_counter() - t0)
    return best, value


def run(quick: bool, seed: int) -> dict:
    from repro.config import RankingParams
    from repro.linalg import CsrOperator, ThrottledOperator
    from repro.ranking.power import power_iteration
    from repro.throttle.transform import throttle_transform
    from repro.throttle.vector import ThrottleVector

    n_sources = 200 if quick else 3000
    repeats = 2 if quick else 3
    params = RankingParams(tolerance=1e-9, max_iter=2000)

    source_graph = build_source_graph(n_sources, seed)
    matrix = source_graph.matrix
    n = matrix.shape[0]
    gen = np.random.default_rng(seed)
    kappa = gen.random(n)
    kappa[gen.random(n) < 0.5] = 0.0  # throttle roughly half the sources
    tv = ThrottleVector(kappa)

    report: dict = {
        "n_sources": int(n),
        "nnz": int(matrix.nnz),
        "quick": quick,
        "seed": seed,
        "equivalence_atol": EQUIVALENCE_ATOL,
    }

    # --- single solve: materialized vs lazy -------------------------------
    def materialized_once():
        t2 = throttle_transform(matrix, tv, full_throttle="self")
        return power_iteration(t2, params, label="materialized")

    def lazy_once():
        with ThrottledOperator(matrix, tv, full_throttle="self") as op:
            return power_iteration(op, params, label="lazy")

    t_mat, r_mat = time_repeats(materialized_once, repeats)
    t_lazy, r_lazy = time_repeats(lazy_once, repeats)
    max_diff = float(np.abs(r_mat.scores - r_lazy.scores).max())
    report["single_solve"] = {
        "materialized_seconds": t_mat,
        "lazy_seconds": t_lazy,
        "speedup": t_mat / t_lazy if t_lazy > 0 else None,
        "max_score_diff": max_diff,
        "iterations": r_lazy.convergence.iterations,
    }
    ok = max_diff <= EQUIVALENCE_ATOL

    # --- 5-point kappa sweep ---------------------------------------------
    sweep_points = [0.0, 0.25, 0.5, 0.75, 1.0]

    def materialized_sweep():
        out = []
        for level in sweep_points:
            t2 = throttle_transform(
                matrix, ThrottleVector(kappa * level), full_throttle="self"
            )
            out.append(power_iteration(t2, params, label="sweep-mat"))
        return out

    def lazy_sweep():
        out = []
        with CsrOperator(matrix) as base:  # one base matrix, one A^T CSR
            for level in sweep_points:
                with ThrottledOperator(
                    base, kappa * level, full_throttle="self"
                ) as op:
                    out.append(power_iteration(op, params, label="sweep-lazy"))
        return out

    t_mat_sweep, r_mat_sweep = time_repeats(materialized_sweep, repeats)
    t_lazy_sweep, r_lazy_sweep = time_repeats(lazy_sweep, repeats)
    sweep_diffs = [
        float(np.abs(a.scores - b.scores).max())
        for a, b in zip(r_mat_sweep, r_lazy_sweep)
    ]
    report["kappa_sweep"] = {
        "points": sweep_points,
        "materialized_seconds": t_mat_sweep,
        "lazy_seconds": t_lazy_sweep,
        "speedup": t_mat_sweep / t_lazy_sweep if t_lazy_sweep > 0 else None,
        "max_score_diff": max(sweep_diffs),
        "per_point_diffs": sweep_diffs,
    }
    ok = ok and max(sweep_diffs) <= EQUIVALENCE_ATOL

    # --- telemetry overhead: events + live endpoint vs bare solve ---------
    # The ledger tracks ``telemetry_overhead.overhead_fraction`` with an
    # absolute ceiling (0.05): turning on the correlated event log and the
    # scrape endpoint must not cost more than 5% of solve wall time.
    # Profiling stays off — it is the one knob documented as expensive.
    from urllib.request import urlopen

    from repro.observability import EventLog, TelemetryServer

    tel_repeats = max(repeats, 5)  # sub-ms solves need extra repeats
    events = EventLog()
    server = TelemetryServer(event_log=events).start()
    try:
        with events.activate():
            lazy_once()  # warm-up: first emit pays one-time lazy init
        t_plain, _ = time_repeats(lazy_once, tel_repeats)
        with events.activate():
            t_tel, _ = time_repeats(lazy_once, tel_repeats)
        # Prove the endpoint was actually live alongside the timed solves.
        with urlopen(server.url("/health"), timeout=5.0) as resp:
            endpoint_ok = resp.status == 200
    finally:
        server.stop()
    report["telemetry_overhead"] = {
        "plain_seconds": t_plain,
        "telemetry_seconds": t_tel,
        "overhead_fraction": (t_tel - t_plain) / t_plain if t_plain > 0 else None,
        "events_emitted": len(events),
        "endpoint_ok": endpoint_ok,
        "run_id": events.run_id,
    }

    report["equivalent"] = ok
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph + fewer repeats (CI mode; equivalence still gates)",
    )
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--out", type=Path, default=RESULTS_PATH, help="output JSON path"
    )
    args = parser.parse_args(argv)

    report = run(args.quick, args.seed)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    single = report["single_solve"]
    sweep = report["kappa_sweep"]
    print(f"operator bench (n={report['n_sources']}, nnz={report['nnz']}):")
    print(
        f"  single solve: materialized {single['materialized_seconds']:.4f}s, "
        f"lazy {single['lazy_seconds']:.4f}s "
        f"(x{single['speedup']:.2f}); max |diff| {single['max_score_diff']:.2e}"
    )
    print(
        f"  5-point sweep: materialized {sweep['materialized_seconds']:.4f}s, "
        f"lazy {sweep['lazy_seconds']:.4f}s "
        f"(x{sweep['speedup']:.2f}); max |diff| {sweep['max_score_diff']:.2e}"
    )
    tel = report["telemetry_overhead"]
    print(
        f"  telemetry: bare {tel['plain_seconds']:.4f}s, "
        f"events+endpoint {tel['telemetry_seconds']:.4f}s "
        f"(overhead {tel['overhead_fraction']:+.2%}, "
        f"{tel['events_emitted']} events)"
    )
    print(f"  wrote {args.out}")
    if not report["equivalent"]:
        print(
            f"FAIL: lazy and materialized scores differ beyond "
            f"{EQUIVALENCE_ATOL:g}",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

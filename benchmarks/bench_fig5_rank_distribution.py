"""Fig. 5 — Rank distribution of all spam sources (20 buckets).

Paper protocol on WB2001: 10,315 labeled spam sources, 1,000 (<10 %)
seeded, top-20,000 spam-proximity sources throttled at kappa=1.  Claim:
"Spam-Resilient SourceRank ... penalizes spam sources considerably more
than the baseline SourceRank approach, even when fewer than 10 % of the
spam sources have been explicitly marked as spam."

We run the same protocol on the wb2001_like synthetic analogue (and the
two others for robustness) and assert the demotion: the spam mass must
shift toward the bottom buckets.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import run_fig5


@pytest.mark.parametrize("dataset", ["wb2001_like", "uk2002_like", "it2004_like"])
def test_fig5_spam_rank_distribution(benchmark, record, once, dataset):
    result = once(benchmark, run_fig5, dataset)
    record(f"fig5_rank_distribution_{dataset}", result.format())
    base_mean, throttled_mean = result.mass_weighted_bucket()
    # Spam must move down by at least 3 buckets on average.
    assert throttled_mean > base_mean + 3
    # And the bottom quarter of buckets must gain spam.
    q = result.n_buckets * 3 // 4
    assert result.throttled_counts[q:].sum() > result.baseline_counts[q:].sum()

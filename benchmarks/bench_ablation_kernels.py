"""Ablation — matvec kernels: scipy CSR vs cache-chunked vs shared-memory
parallel.

Times a fixed number of transpose matvecs on the uk2002_like page matrix.
Per the HPC guide ("no optimization without measuring"), this is the
measurement that justifies scipy as the default kernel at this scale —
the parallel kernel's per-call IPC overhead only pays off on much larger
matrices.
"""

from __future__ import annotations

import time

import numpy as np

from repro.datasets import load_dataset
from repro.eval import format_table
from repro.graph import transition_matrix
from repro.parallel import SharedCsrMatvec, chunked_rmatvec

_REPEATS = 20


def _run_kernel_ablation():
    ds = load_dataset("uk2002_like", with_spam=False)
    matrix = transition_matrix(ds.graph)
    n = matrix.shape[0]
    rng = np.random.default_rng(1)
    x = rng.random(n)
    x /= x.sum()

    rows = []
    reference = matrix.T @ x

    at = matrix.T.tocsr()
    start = time.perf_counter()
    for _ in range(_REPEATS):
        out = at @ x
    rows.append({"kernel": "scipy", "seconds": time.perf_counter() - start})
    np.testing.assert_allclose(out, reference, atol=1e-12)

    buf = np.empty(n)
    start = time.perf_counter()
    for _ in range(_REPEATS):
        out = chunked_rmatvec(matrix, x, out=buf)
    rows.append({"kernel": "chunked", "seconds": time.perf_counter() - start})
    np.testing.assert_allclose(out, reference, atol=1e-12)

    with SharedCsrMatvec(matrix, n_workers=4) as mv:
        start = time.perf_counter()
        for _ in range(_REPEATS):
            out = mv.rmatvec(x)
        rows.append({"kernel": "parallel(4)", "seconds": time.perf_counter() - start})
    np.testing.assert_allclose(out, reference, atol=1e-12)

    for row in rows:
        row["us_per_matvec"] = 1e6 * row["seconds"] / _REPEATS
    return rows


def test_kernel_ablation(benchmark, record, once):
    rows = once(benchmark, _run_kernel_ablation)
    record(
        "ablation_kernels",
        format_table(
            rows,
            ["kernel", "seconds", "us_per_matvec"],
            title=f"Ablation: {_REPEATS} transpose matvecs on the uk2002_like page matrix",
        ),
    )
    assert len(rows) == 3

"""Micro-benchmarks of the substrate layers.

Not a paper artifact — these keep the hot paths honest over time:
graph construction, compressed-graph encode/decode, the consensus
quotient, the throttle transform, and one full PageRank solve.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.datasets import load_dataset
from repro.graph import PageGraph, transition_matrix
from repro.ranking import pagerank
from repro.sources import SourceGraph, quotient_unique_page_counts
from repro.throttle import ThrottleVector, throttle_transform
from repro.webgraph import CompressedGraph


@pytest.fixture(scope="module")
def dataset():
    return load_dataset("uk2002_like", with_spam=False)


def test_bench_graph_from_edges(benchmark, dataset):
    src, dst = dataset.graph.edge_arrays()
    benchmark(PageGraph.from_edges, src, dst, dataset.graph.n_nodes)


def test_bench_compress(benchmark, dataset):
    compressed = benchmark(CompressedGraph.from_pagegraph, dataset.graph)
    assert compressed.stats().ratio < 0.6


def test_bench_decompress(benchmark, dataset):
    compressed = CompressedGraph.from_pagegraph(dataset.graph)
    graph = benchmark(compressed.to_pagegraph)
    assert graph == dataset.graph


def test_bench_consensus_quotient(benchmark, dataset):
    counts = benchmark(
        quotient_unique_page_counts, dataset.graph, dataset.assignment
    )
    assert counts.nnz > 0


def test_bench_source_graph_build(benchmark, dataset):
    sg = benchmark(
        SourceGraph.from_page_graph, dataset.graph, dataset.assignment
    )
    assert sg.n_sources == dataset.n_sources


def test_bench_throttle_transform(benchmark, dataset):
    sg = SourceGraph.from_page_graph(dataset.graph, dataset.assignment)
    rng = np.random.default_rng(0)
    kappa = ThrottleVector(rng.random(sg.n_sources))
    out = benchmark(throttle_transform, sg.matrix, kappa)
    assert out.shape == sg.matrix.shape


def test_bench_pagerank_full_solve(benchmark, dataset, once):
    result = once(benchmark, pagerank, dataset.graph, RankingParams())
    assert result.convergence.converged

"""Comparators — SR-SourceRank vs TrustRank and HITS under attack.

Section 7: TrustRank "is still vulnerable to honeypot and hijacking
vulnerabilities, in which high-value trusted pages may be especially
targeted."  This bench makes that claim measurable: a honeypot that
induces links from top-trust pages, and a hijack of trusted pages, are
run against TrustRank (page level) and Spam-Resilient SourceRank
(source level, spam-proximity throttling); HITS is included to show the
classic eigenvector capture.

Metric: the spam target's percentile gain under each ranking.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.ranking import hits, pagerank, select_trust_seeds, sourcerank, trustrank
from repro.sources import SourceGraph
from repro.spam import HijackAttack, HoneypotAttack, evaluate_attack


def _percentile_gain(before, after, item):
    return float(after.percentiles()[item] - before.percentiles()[item])


def _run_comparators():
    ds = load_dataset("tiny", with_spam=False)
    params = RankingParams()
    graph, assignment = ds.graph, ds.assignment

    sg = SourceGraph.from_page_graph(graph, assignment)
    sr_before = sourcerank(sg, params)
    target_source = int(sr_before.order()[-1])
    target_page = int(assignment.pages_of(target_source)[0])

    # Trusted seeds: inverse-PageRank top pages (the TrustRank recipe).
    trusted = select_trust_seeds(graph, 15, exclude=[target_page])
    trust_before = trustrank(graph, trusted, params)
    hits_before = hits(graph, params)
    pr_before = pagerank(graph, params)

    # Attacks aimed at the trusted pages specifically.
    attacks = {
        "honeypot(trusted inducers)": HoneypotAttack(
            target_page, 4, trusted[:8]
        ),
        "hijack(trusted victims)": HijackAttack(target_page, trusted[:8]),
    }

    rows = []
    for name, attack in attacks.items():
        spammed = attack.apply(graph, assignment)
        ev = evaluate_attack(
            graph,
            assignment,
            attack,
            params=params,
            pagerank_before=pr_before,
            srsr_before=sr_before,
        )
        trust_after = trustrank(spammed.graph, trusted, params)
        hits_after = hits(spammed.graph, params)
        rows.append(
            {
                "attack": name,
                "trustrank_gain": _percentile_gain(
                    trust_before, trust_after, target_page
                ),
                "hits_gain": _percentile_gain(
                    hits_before.authorities, hits_after.authorities, target_page
                ),
                "pagerank_gain": ev.pagerank_record.percentile_gain,
                "srsr_gain": ev.srsr_record.percentile_gain,
            }
        )
    return rows


def test_comparators_under_trusted_page_attacks(benchmark, record, once):
    rows = once(benchmark, _run_comparators)
    record(
        "comparators_trust_attacks",
        format_table(
            rows,
            ["attack", "trustrank_gain", "hits_gain", "pagerank_gain", "srsr_gain"],
            title=(
                "Comparators: spam-target percentile gain when attacks "
                "capture trusted pages"
            ),
        ),
    )
    for row in rows:
        # The Section 7 claim: attacks on trusted pages move TrustRank a
        # lot, and SR-SourceRank much less.
        assert row["trustrank_gain"] > 20
        assert row["srsr_gain"] < row["trustrank_gain"]

"""Ablation — BlockRank-style two-level warm start (Kamvar et al. [23]).

The paper's source abstraction is motivated by the Web's block structure;
Kamvar et al. exploit the same structure to *accelerate* PageRank.  This
bench measures the iteration savings of the two-level warm start on the
three dataset analogues.  The honest result at our locality (~78 %) and
the paper's strict 1e-9 tolerance is a modest single-digit saving —
recorded as such in EXPERIMENTS.md.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.ranking import blockrank, pagerank


def _run_blockrank_ablation():
    rows = []
    params = RankingParams()
    for name in ("tiny", "uk2002_like"):
        ds = load_dataset(name, with_spam=False)
        result = blockrank(ds.graph, ds.assignment, params, measure_cold=True)
        pr = pagerank(ds.graph, params, dangling="teleport")
        agreement = float(
            np.abs(result.global_ranking.scores - pr.scores).max()
        )
        rows.append(
            {
                "dataset": name,
                "cold_iterations": result.cold_iterations,
                "warm_iterations": result.warm_start_iterations,
                "saved": result.cold_iterations - result.warm_start_iterations,
                "max_score_diff": agreement,
            }
        )
    return rows


def test_blockrank_ablation(benchmark, record, once):
    rows = once(benchmark, _run_blockrank_ablation)
    record(
        "ablation_blockrank",
        format_table(
            rows,
            ["dataset", "cold_iterations", "warm_iterations", "saved", "max_score_diff"],
            title="Ablation: BlockRank two-level warm start vs cold PageRank",
        ),
    )
    for row in rows:
        # Correctness is the hard requirement; savings are reported.
        assert row["max_score_diff"] < 1e-7
        assert row["warm_iterations"] <= row["cold_iterations"] + 2

#!/usr/bin/env python
"""Fault-injection benchmark: every failure mode must recover to the
fault-free σ.

Three scenarios, each timed against its fault-free baseline:

* **nan_fallback** — a seeded NaN corrupts the power iterate mid-solve;
  the guard trips :class:`~repro.errors.NumericalError` and the
  ``power → jacobi`` fallback chain warm-starts past it.
* **broken_pool** — a parallel-kernel worker is killed with ``os._exit``;
  the pool rebuilds (re-attaching shared memory), and once the rebuild
  budget is exhausted the matvec degrades to the serial kernel.
* **killed_process** — a *real* child process running a checkpointed
  solve is killed mid-iteration; the parent resumes from the last atomic
  checkpoint.

Writes ``benchmarks/results/BENCH_resilience.json`` including the metric
counters each recovery incremented.  The script is a regression gate: it
exits non-zero if any recovered σ differs from the fault-free σ beyond
1e-9 or an expected recovery counter stayed at zero.  ``--quick`` keeps
CI runtime low (the equivalence checks still gate).
"""

from __future__ import annotations

import argparse
import json
import multiprocessing as mp
import os
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_resilience.json"

RECOVERY_ATOL = 1e-9


def build_matrix(n_sources: int, seed: int):
    """A consensus-weighted source matrix from a synthetic page graph."""
    from repro.datasets import load_dataset
    from repro.graph import PageGraph
    from repro.sources import SourceAssignment, SourceGraph

    if n_sources <= 200:
        ds = load_dataset("tiny")
        return SourceGraph.from_page_graph(ds.graph, ds.assignment).matrix
    gen = np.random.default_rng(seed)
    n_pages = n_sources * 12
    n_edges = n_pages * 8
    graph = PageGraph.from_edges(
        gen.integers(0, n_pages, n_edges),
        gen.integers(0, n_pages, n_edges),
        n_pages,
    )
    ids = gen.integers(0, n_sources, n_pages)
    ids[:n_sources] = np.arange(n_sources)
    assignment = SourceAssignment(ids.astype(np.int64))
    return SourceGraph.from_page_graph(graph, assignment).matrix


def _counter(kind_metric: str, kind: str) -> float:
    from repro.observability.metrics import get_registry

    return (
        get_registry()
        .counter(kind_metric, labelnames=("kind",))
        .labels(kind=kind)
        .value
    )


# ----------------------------------------------------------------------
# Scenario 1: NaN-corrupted iterate → fallback chain
# ----------------------------------------------------------------------
def scenario_nan_fallback(matrix, params) -> dict:
    from repro.linalg.operator import CsrOperator
    from repro.ranking.power import power_iteration
    from repro.resilience import FallbackChain, FaultyOperator

    reference = power_iteration(matrix, params, label="fault-free")

    before = _counter("repro_guard_trips_total", "nan")
    t0 = time.perf_counter()
    faulty = FaultyOperator(CsrOperator(matrix), corrupt_at_call=5, seed=17)
    result = FallbackChain(("power", "jacobi")).solve(
        faulty, params, label="nan-recovery"
    )
    elapsed = time.perf_counter() - t0
    diff = float(np.abs(result.scores - reference.scores).max())
    return {
        "max_score_diff": diff,
        "recovered": diff <= RECOVERY_ATOL,
        "seconds": elapsed,
        "attempts": [a.solver for a in result.provenance],
        "guard_trips_nan": _counter("repro_guard_trips_total", "nan") - before,
        "fallbacks_solver": _counter("repro_fallbacks_total", "solver"),
    }


# ----------------------------------------------------------------------
# Scenario 2: killed pool worker → rebuild, then serial degradation
# ----------------------------------------------------------------------
def scenario_broken_pool(matrix) -> dict:
    from repro.parallel import SharedCsrMatvec
    from repro.resilience import break_worker_pool

    gen = np.random.default_rng(5)
    x = gen.random(matrix.shape[0])
    expected = matrix.T @ x

    t0 = time.perf_counter()
    with SharedCsrMatvec(matrix.tocsr(), n_workers=2, max_rebuilds=1) as mv:
        ok_before = bool(
            np.allclose(mv.rmatvec(x), expected, atol=1e-12)
        )
        break_worker_pool(mv._pool)
        rebuilt = np.allclose(mv.rmatvec(x), expected, atol=1e-12)
        rebuilt_count = mv._pool.rebuilds
        break_worker_pool(mv._pool)  # budget now exhausted → degrade
        degraded_ok = np.allclose(mv.rmatvec(x), expected, atol=1e-12)
        degraded = mv.degraded
    elapsed = time.perf_counter() - t0
    return {
        "healthy_matvec_ok": ok_before,
        "rebuilt_matvec_ok": bool(rebuilt),
        "pool_rebuilds": int(rebuilt_count),
        "degraded_matvec_ok": bool(degraded_ok),
        "degraded": bool(degraded),
        "recovered": bool(ok_before and rebuilt and degraded_ok and degraded),
        "seconds": elapsed,
        "fallbacks_pool_rebuild": _counter(
            "repro_fallbacks_total", "pool_rebuild"
        ),
        "fallbacks_serial_degrade": _counter(
            "repro_fallbacks_total", "serial_degrade"
        ),
    }


# ----------------------------------------------------------------------
# Scenario 3: child process killed mid-solve → checkpoint resume
# ----------------------------------------------------------------------
def _doomed_solve(matrix, params, directory: str, kill_at: int) -> None:
    """Child-process body: checkpointed solve that dies at iteration k."""
    from repro.ranking.power import power_iteration
    from repro.resilience import SolveCheckpointer, crash_at_iteration

    power_iteration(
        matrix,
        params.with_(
            checkpoint=SolveCheckpointer(directory, resume=False)
        ),
        label="doomed",
        callback=crash_at_iteration(kill_at, action=lambda: os._exit(3)),
    )


def scenario_killed_process(matrix, params) -> dict:
    from repro.ranking.power import power_iteration
    from repro.resilience import SolveCheckpointer

    reference = power_iteration(matrix, params, label="fault-free")
    kill_at = max(reference.convergence.iterations // 2, 2)

    before = _counter("repro_checkpoint_resumes_total", "solve")
    with tempfile.TemporaryDirectory() as directory:
        ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else mp.get_context()
        )
        t0 = time.perf_counter()
        child = ctx.Process(
            target=_doomed_solve, args=(matrix, params, directory, kill_at)
        )
        child.start()
        child.join(timeout=120)
        exitcode = child.exitcode
        resumed = power_iteration(
            matrix,
            params.with_(
                checkpoint=SolveCheckpointer(directory, resume=True)
            ),
            label="doomed",
        )
        elapsed = time.perf_counter() - t0
    diff = float(np.abs(resumed.scores - reference.scores).max())
    return {
        "child_exitcode": exitcode,
        "killed_at_iteration": int(kill_at),
        "resumed_iterations": resumed.convergence.iterations,
        "reference_iterations": reference.convergence.iterations,
        "max_score_diff": diff,
        "recovered": bool(exitcode == 3 and diff <= RECOVERY_ATOL),
        "seconds": elapsed,
        "checkpoint_resumes_solve": _counter(
            "repro_checkpoint_resumes_total", "solve"
        )
        - before,
    }


def run(quick: bool, seed: int) -> dict:
    from repro.config import RankingParams, ResilienceParams

    n_sources = 200 if quick else 2000
    matrix = build_matrix(n_sources, seed)
    params = RankingParams(
        tolerance=1e-12,
        max_iter=2000,
        resilience=ResilienceParams(checkpoint_every=2),
    )

    report: dict = {
        "n_sources": int(matrix.shape[0]),
        "nnz": int(matrix.nnz),
        "quick": quick,
        "seed": seed,
        "recovery_atol": RECOVERY_ATOL,
        "scenarios": {
            "nan_fallback": scenario_nan_fallback(matrix, params),
            "broken_pool": scenario_broken_pool(matrix),
            "killed_process": scenario_killed_process(matrix, params),
        },
    }
    scenarios = report["scenarios"]
    report["all_recovered"] = all(
        s["recovered"] for s in scenarios.values()
    )
    report["metrics_nonzero"] = bool(
        scenarios["nan_fallback"]["fallbacks_solver"] > 0
        and scenarios["broken_pool"]["fallbacks_pool_rebuild"] > 0
        and scenarios["broken_pool"]["fallbacks_serial_degrade"] > 0
        and scenarios["killed_process"]["checkpoint_resumes_solve"] > 0
    )
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph (CI mode; recovery equivalence still gates)",
    )
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--out", type=Path, default=RESULTS_PATH, help="output JSON path"
    )
    args = parser.parse_args(argv)

    report = run(args.quick, args.seed)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print(f"resilience bench (n={report['n_sources']}, nnz={report['nnz']}):")
    for name, s in report["scenarios"].items():
        state = "recovered" if s["recovered"] else "FAILED"
        detail = (
            f"max |diff| {s['max_score_diff']:.2e}"
            if "max_score_diff" in s
            else f"rebuilds {s['pool_rebuilds']}, degraded {s['degraded']}"
        )
        print(f"  {name}: {state} in {s['seconds']:.3f}s ({detail})")
    print(f"  wrote {args.out}")
    if not report["all_recovered"]:
        print(
            f"FAIL: a faulted run did not recover to within "
            f"{RECOVERY_ATOL:g} of the fault-free scores",
            file=sys.stderr,
        )
        return 1
    if not report["metrics_nonzero"]:
        print(
            "FAIL: an expected recovery counter stayed at zero",
            file=sys.stderr,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

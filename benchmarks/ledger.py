"""Perf-trajectory ledger driver: fold BENCH files, gate regressions.

Thin wrapper over :mod:`repro.observability.ledger` so the ledger can
run from a checkout without installing the package::

    python benchmarks/ledger.py backfill
    python benchmarks/ledger.py ingest --bench operator --label PR6 \
        --file benchmarks/results/BENCH_operator.json
    python benchmarks/ledger.py compare        # exit 1 on regression
    python benchmarks/ledger.py show

``compare`` is the CI gate: it checks every ``BENCH_*.json`` in the
results directory against the committed ``LEDGER.json`` under the
tracked-metric contract and exits nonzero on any regression.  The same
four commands are available as ``repro ledger <command>``.
"""

from __future__ import annotations

import sys
from pathlib import Path

_REPO_ROOT = Path(__file__).resolve().parent.parent
if str(_REPO_ROOT / "src") not in sys.path:
    sys.path.insert(0, str(_REPO_ROOT / "src"))

from repro.cli import ledger_main  # noqa: E402 - after sys.path setup

DEFAULT_RESULTS = Path(__file__).parent / "results"


def main(argv: list[str] | None = None) -> int:
    return ledger_main(argv, default_results=DEFAULT_RESULTS)


if __name__ == "__main__":
    raise SystemExit(main())

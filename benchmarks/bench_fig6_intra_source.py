"""Fig. 6 — PageRank vs Spam-Resilient SourceRank: intra-source
manipulation on the three datasets.

Paper protocol: 5 random unthrottled target sources from the bottom 50 %,
inject 1/10/100/1000 spam pages inside the source (cases A-D), report the
average ranking-percentile increase of the target page (PageRank) and the
target source (SR-SourceRank).  Paper shape on WB2001: PageRank jumps
~80 points by case C; SR-SourceRank moves only a few points at case C
and ~20 at case D (vs ~70 for PageRank).
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import run_fig6


@pytest.mark.parametrize("dataset", ["uk2002_like", "it2004_like", "wb2001_like"])
def test_fig6_intra_source_manipulation(benchmark, record, once, dataset):
    result = once(benchmark, run_fig6, dataset)
    record(f"fig6_intra_source_{dataset}", result.format())
    pr = {r.case: r.mean_percentile_gain for r in result.pagerank_records}
    sr = {r.case: r.mean_percentile_gain for r in result.srsr_records}
    # PageRank must gain dramatically by case C.
    assert pr[100] > 40
    # SR-SourceRank must gain far less at every case.
    for case in result.cases:
        assert sr[case] < pr[case]
    # The spammer needs far more effort for any SR movement: case A gain
    # must stay small.
    assert sr[1] < 15

"""Detection paradigm vs proximity paradigm (Section 7's comparison).

Two ways to choose who gets throttled:

* **spam proximity** (the paper, Section 5) — needs a seed set but
  follows the link structure wherever spam hides;
* **statistical detection** ([17]/[15] in the related work) — needs no
  seeds but only sees locally anomalous structure.

Both feed the same top-k κ assignment and the same SR-SourceRank; the
protocol and metric are Fig. 5's.  Expectation at planted-spam ground
truth: proximity with a 10 % seed wins on recall of the spam *ring*
(exchange members point at each other, so proximity chains through all
of them), while unsupervised detection pays for its missing seeds with
false positives — quantified by the legit-ranking Spearman column.
"""

from __future__ import annotations

import numpy as np
import pytest
from scipy import stats

from repro.config import ExperimentParams
from repro.datasets import load_dataset, sample_seed_set
from repro.eval import format_table
from repro.ranking import sourcerank, spam_resilient_sourcerank
from repro.sources import SourceGraph
from repro.spam import OutlierSpamDetector
from repro.throttle import ThrottleVector, assign_kappa, spam_proximity
from repro.throttle.strategies import top_k_flags


def _evaluate(kappa, sg, ds, baseline, params):
    ranked = spam_resilient_sourcerank(
        sg, kappa, params.ranking, full_throttle="dangling"
    )
    demotion = (
        baseline.percentiles()[ds.spam_sources].mean()
        - ranked.percentiles()[ds.spam_sources].mean()
    )
    legit = np.setdiff1d(np.arange(ds.n_sources), ds.spam_sources)
    rho, _ = stats.spearmanr(baseline.scores[legit], ranked.scores[legit])
    caught = kappa.throttled_mask()[ds.spam_sources].mean()
    return demotion, float(rho), float(caught)


def _run_detection_vs_proximity(dataset: str = "wb2001_like"):
    params = ExperimentParams()
    ds = load_dataset(dataset)
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
    baseline = sourcerank(sg, params.ranking)
    k_fraction = params.throttle.top_fraction

    rows = []

    # Paradigm 1: proximity from a 10 % seed.
    rng = np.random.default_rng(params.seed)
    seeds = sample_seed_set(ds.spam_sources, params.seed_fraction, rng)
    proximity = spam_proximity(sg, seeds, params.proximity)
    kappa_prox = assign_kappa(proximity.scores, params.throttle)
    demotion, rho, caught = _evaluate(kappa_prox, sg, ds, baseline, params)
    rows.append(
        {
            "paradigm": f"proximity ({seeds.size} seeds)",
            "spam_caught": caught,
            "spam_demotion_pts": demotion,
            "legit_spearman": rho,
        }
    )

    # Paradigm 2: unsupervised statistical detection, same budget.
    detector = OutlierSpamDetector()
    det_scores, _ = detector.detect(
        ds.graph, ds.assignment, top_fraction=k_fraction
    )
    kappa_det = ThrottleVector.from_flags(
        top_k_flags(det_scores, int(round(k_fraction * ds.n_sources)))
    )
    demotion, rho, caught = _evaluate(kappa_det, sg, ds, baseline, params)
    rows.append(
        {
            "paradigm": "detection (no seeds)",
            "spam_caught": caught,
            "spam_demotion_pts": demotion,
            "legit_spearman": rho,
        }
    )

    # Paradigm 3: detection-seeded proximity (hybrid — detection finds the
    # seeds, proximity expands them).
    n_seed = max(1, int(round(params.seed_fraction * ds.spam_sources.size)))
    det_seeds = np.argsort(-det_scores, kind="stable")[:n_seed]
    hybrid = spam_proximity(sg, det_seeds, params.proximity)
    kappa_hybrid = assign_kappa(hybrid.scores, params.throttle)
    demotion, rho, caught = _evaluate(kappa_hybrid, sg, ds, baseline, params)
    rows.append(
        {
            "paradigm": "detection->proximity hybrid",
            "spam_caught": caught,
            "spam_demotion_pts": demotion,
            "legit_spearman": rho,
        }
    )
    return rows


def test_detection_vs_proximity(benchmark, record, once):
    rows = once(benchmark, _run_detection_vs_proximity)
    record(
        "detection_vs_proximity",
        format_table(
            rows,
            ["paradigm", "spam_caught", "spam_demotion_pts", "legit_spearman"],
            title=(
                "Throttle-set selection paradigms on the Fig. 5 protocol "
                "(wb2001_like)"
            ),
        ),
    )
    by = {r["paradigm"].split(" ")[0]: r for r in rows}
    # Proximity with seeds must demote spam decisively.
    assert by["proximity"]["spam_demotion_pts"] > 20
    # All paradigms must keep the legit ranking essentially intact.
    for row in rows:
        assert row["legit_spearman"] > 0.8

"""Ablation — kappa-assignment strategies on the Fig. 5 protocol.

The paper uses the binary top-k heuristic and explicitly leaves other
assignments to future work (Section 5).  This bench compares top-k,
threshold, proportional, and rank-linear assignment on the same
spam-proximity scores, measuring (a) how far ground-truth spam is demoted
and (b) how much the legitimate ranking is perturbed (Spearman rho on
non-spam sources).
"""

from __future__ import annotations

import numpy as np

from repro.config import ExperimentParams, ThrottleParams
from repro.datasets import load_dataset, sample_seed_set
from repro.eval import format_table, spearman_rho
from repro.ranking import sourcerank, spam_resilient_sourcerank
from repro.sources import SourceGraph
from repro.throttle import assign_kappa, spam_proximity


def _run_kappa_ablation(dataset: str = "uk2002_like"):
    params = ExperimentParams()
    ds = load_dataset(dataset)
    rng = np.random.default_rng(params.seed)
    seeds = sample_seed_set(ds.spam_sources, params.seed_fraction, rng)
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
    proximity = spam_proximity(sg, seeds, params.proximity)
    baseline = sourcerank(sg, params.ranking)
    legit = np.setdiff1d(np.arange(ds.n_sources), ds.spam_sources)

    strategies = {
        "top_k": ThrottleParams(strategy="top_k"),
        "threshold": ThrottleParams(
            strategy="threshold",
            threshold=float(np.percentile(proximity.scores, 97.5)),
        ),
        "proportional": ThrottleParams(strategy="proportional"),
        "linear": ThrottleParams(strategy="linear"),
    }
    rows = []
    for name, throttle_params in strategies.items():
        kappa = assign_kappa(proximity.scores, throttle_params)
        ranked = spam_resilient_sourcerank(
            sg, kappa, params.ranking, full_throttle="dangling"
        )
        spam_pct = ranked.percentiles()[ds.spam_sources].mean()
        base_pct = baseline.percentiles()[ds.spam_sources].mean()
        # Legit-ranking stability: correlation restricted to legit sources.
        from scipy import stats

        rho, _ = stats.spearmanr(
            baseline.scores[legit], ranked.scores[legit]
        )
        rows.append(
            {
                "strategy": name,
                "spam_pct_before": base_pct,
                "spam_pct_after": spam_pct,
                "spam_demotion": base_pct - spam_pct,
                "legit_spearman": float(rho),
            }
        )
    return rows


def test_kappa_strategy_ablation(benchmark, record, once):
    rows = once(benchmark, _run_kappa_ablation)
    record(
        "ablation_kappa",
        format_table(
            rows,
            [
                "strategy",
                "spam_pct_before",
                "spam_pct_after",
                "spam_demotion",
                "legit_spearman",
            ],
            title="Ablation: kappa assignment strategies (Fig. 5 protocol)",
        ),
    )
    by_name = {r["strategy"]: r for r in rows}
    # The paper's top-k heuristic must demote spam...
    assert by_name["top_k"]["spam_demotion"] > 5
    # ...without scrambling the legitimate ranking.
    assert by_name["top_k"]["legit_spearman"] > 0.8

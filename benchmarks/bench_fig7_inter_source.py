"""Fig. 7 — PageRank vs Spam-Resilient SourceRank: inter-source
manipulation on the three datasets.

Paper protocol: same as Fig. 6 but the spam pages live in a randomly
paired *colluding* source (bottom 50 %) linking to the target page in a
different source.  Paper shape: PageRank again jumps dramatically; the
SR-SourceRank score "is impacted less" — with no extra throttling
information for the sources involved.
"""

from __future__ import annotations

import pytest

from repro.eval.experiments import run_fig7


@pytest.mark.parametrize("dataset", ["uk2002_like", "it2004_like", "wb2001_like"])
def test_fig7_inter_source_manipulation(benchmark, record, once, dataset):
    result = once(benchmark, run_fig7, dataset)
    record(f"fig7_inter_source_{dataset}", result.format())
    pr = {r.case: r.mean_percentile_gain for r in result.pagerank_records}
    sr = {r.case: r.mean_percentile_gain for r in result.srsr_records}
    assert pr[100] > 40
    for case in result.cases:
        assert sr[case] < pr[case]

#!/usr/bin/env python
"""Correctness-audit benchmark and CI gate.

Three parts, one JSON report:

* **invariant suite** — the pipeline runs end-to-end on a seeded web
  with the strict audit enabled; every stage-boundary invariant and the
  per-iteration mass check must hold.
* **differential oracle** — every registered solver × kernel ×
  {lazy, materialized} operator combination on the seeded adversarial
  graph suite (dangling rows, κ ∈ {0, 1}, disconnected components) must
  agree to 1e-9, plus the metamorphic relations.
* **overhead gate** — the pipeline with auditing *disabled* must run
  within ``OVERHEAD_GATE`` (5 %) of an identical reference run: the
  audit must cost nothing when off.  The enabled-audit overhead is
  also measured and reported, for information only.

Writes ``benchmarks/results/BENCH_audit.json`` (CI uploads it as an
artifact) and exits non-zero if the oracle finds a disagreement, an
invariant is violated, or the disabled-audit overhead exceeds the gate.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_audit.json"

#: Max tolerated slowdown of the pipeline with auditing disabled,
#: relative to an identical reference run (noise gate).
OVERHEAD_GATE = 0.05


def build_inputs(n_sources: int, seed: int):
    """A synthetic web (page graph + assignment + spam seeds)."""
    from repro.datasets import load_dataset, sample_seed_set

    if n_sources <= 200:
        ds = load_dataset("tiny")
    else:
        ds = load_dataset("uk2002_like")
    seeds = sample_seed_set(
        ds.spam_sources, 0.25, np.random.default_rng(seed)
    )
    return ds.graph, ds.assignment, seeds


# ----------------------------------------------------------------------
# Part 1: invariant suite (strict audit through the pipeline)
# ----------------------------------------------------------------------
def part_invariants(graph, assignment, seeds) -> dict:
    from repro.config import AuditParams, RankingParams, SpamProximityParams
    from repro.core.pipeline import SpamResilientPipeline
    from repro.errors import AuditError

    audit = AuditParams()
    t0 = time.perf_counter()
    try:
        with SpamResilientPipeline(
            ranking=RankingParams(audit=audit),
            proximity=SpamProximityParams(audit=audit),
        ) as pipe:
            result = pipe.rank(graph, assignment, spam_seeds=seeds)
        violations: list[str] = []
    except AuditError as exc:
        result = None
        violations = [str(v) for v in exc.violations]
    return {
        "seconds": time.perf_counter() - t0,
        "passed": not violations,
        "violations": violations,
        "n_sources": None if result is None else int(result.scores.n),
    }


# ----------------------------------------------------------------------
# Part 2: differential oracle + metamorphic relations
# ----------------------------------------------------------------------
def part_differential(seed: int, quick: bool) -> dict:
    from repro.audit import run_differential_oracle

    t0 = time.perf_counter()
    report = run_differential_oracle(seed=seed, strict=False)
    return {
        "seconds": time.perf_counter() - t0,
        "passed": report.passed,
        "summary": report.summary(),
        "report": report.to_dict(),
    }


def part_metamorphic(seed: int, quick: bool) -> dict:
    from repro.audit import run_metamorphic_suite

    t0 = time.perf_counter()
    report = run_metamorphic_suite(
        seed=seed, n=16 if quick else 32, n_graphs=2 if quick else 4
    )
    return {
        "seconds": time.perf_counter() - t0,
        "passed": report.passed,
        "summary": report.summary(),
        "report": report.to_dict(),
    }


# ----------------------------------------------------------------------
# Part 3: overhead of the (disabled) audit path
# ----------------------------------------------------------------------
def _time_pipeline(graph, assignment, seeds, audit, repeats: int) -> float:
    from repro.config import AuditParams, RankingParams, SpamProximityParams
    from repro.core.pipeline import SpamResilientPipeline

    best = float("inf")
    for _ in range(repeats):
        with SpamResilientPipeline(
            ranking=RankingParams(audit=audit),
            proximity=SpamProximityParams(audit=audit),
        ) as pipe:
            t0 = time.perf_counter()
            pipe.rank(graph, assignment, spam_seeds=seeds)
            best = min(best, time.perf_counter() - t0)
    return best


def part_overhead(graph, assignment, seeds, quick: bool) -> dict:
    from repro.config import AuditParams

    repeats = 3 if quick else 5
    _time_pipeline(graph, assignment, seeds, None, 1)  # warm-up
    reference = _time_pipeline(graph, assignment, seeds, None, repeats)
    disabled = _time_pipeline(graph, assignment, seeds, None, repeats)
    enabled = _time_pipeline(graph, assignment, seeds, AuditParams(), repeats)
    disabled_overhead = disabled / reference - 1.0
    return {
        "reference_seconds": reference,
        "disabled_seconds": disabled,
        "enabled_seconds": enabled,
        "disabled_overhead": disabled_overhead,
        "enabled_overhead": enabled / reference - 1.0,
        "gate": OVERHEAD_GATE,
        "passed": disabled_overhead <= OVERHEAD_GATE,
    }


def run(quick: bool, seed: int) -> dict:
    n_sources = 200 if quick else 2000
    graph, assignment, seeds = build_inputs(n_sources, seed)
    report: dict = {
        "quick": quick,
        "seed": seed,
        "parts": {
            "invariants": part_invariants(graph, assignment, seeds),
            "differential": part_differential(seed, quick),
            "metamorphic": part_metamorphic(seed, quick),
            "overhead": part_overhead(graph, assignment, seeds, quick),
        },
    }
    report["passed"] = all(p["passed"] for p in report["parts"].values())
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small graph + fewer repeats (CI mode; all gates still apply)",
    )
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--out", type=Path, default=RESULTS_PATH, help="output JSON path"
    )
    args = parser.parse_args(argv)

    report = run(args.quick, args.seed)
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    print("audit bench:")
    parts = report["parts"]
    for name in ("invariants", "differential", "metamorphic"):
        part = parts[name]
        state = "PASS" if part["passed"] else "FAIL"
        print(f"  {name}: {state} in {part['seconds']:.3f}s")
        if "summary" in part:
            print(f"    {part['summary']}")
        for violation in part.get("violations", []):
            print(f"    violation: {violation}")
    over = parts["overhead"]
    print(
        f"  overhead: disabled {over['disabled_overhead']:+.1%} "
        f"(gate {over['gate']:.0%}), enabled {over['enabled_overhead']:+.1%}"
        f" -> {'PASS' if over['passed'] else 'FAIL'}"
    )
    print(f"  wrote {args.out}")
    if not report["passed"]:
        print("AUDIT BENCH FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

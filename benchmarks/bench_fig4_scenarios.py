"""Fig. 4 — Comparison with PageRank under three collusion scenarios.

(a) colluding pages inside the target source; (b) in one colluding
source; (c) spread over many colluding sources.  Paper shape: PageRank
amplification grows without bound (~100x at tau=100), SR-SourceRank is
capped at the one-time boost (a), at <= 2x (b), and is suppressed as
kappa -> 0.99 (c).  Each bench renders the analytic series plus a
simulated attack on the tiny synthetic web.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.eval.experiments import run_fig4

_TAUS = np.asarray([0, 1, 10, 100, 1000])


def test_fig4a_scenario1_intra_source(benchmark, record, once):
    result = once(benchmark, run_fig4, 1, taus=_TAUS, empirical=True)
    record("fig4a_scenario1", result.format())
    assert result.pagerank_curve[-1] > 100
    for curve in result.srsr_curves.values():
        assert curve.max() <= 1 / 0.15 + 1e-9
    for tau in (10, 100, 1000):
        assert result.empirical["pagerank"][tau] > result.empirical["srsr"][tau]


def test_fig4b_scenario2_single_colluding_source(benchmark, record, once):
    result = once(benchmark, run_fig4, 2, taus=_TAUS, empirical=True)
    record("fig4b_scenario2", result.format())
    for curve in result.srsr_curves.values():
        assert curve.max() <= 2.0
    assert result.pagerank_curve[-1] > 100


def test_fig4c_scenario3_many_colluding_sources(benchmark, record, once):
    result = once(
        benchmark, run_fig4, 3, taus=_TAUS, kappas=(0.0, 0.6, 0.9, 0.99),
        empirical=True,
    )
    record("fig4c_scenario3", result.format())
    # Higher kappa suppresses the amplification at every tau > 0.
    for lo, hi in zip((0.0, 0.6, 0.9), (0.6, 0.9, 0.99)):
        assert (
            result.srsr_curves[hi][1:] < result.srsr_curves[lo][1:]
        ).all()
    # With kappa=0 and one page per colluding source, scenario 3 reduces
    # exactly to PageRank's 1 + alpha*tau (no defence at all); any positive
    # kappa must fall strictly below it.
    import numpy as np

    np.testing.assert_allclose(
        result.pagerank_curve, result.srsr_curves[0.0], rtol=1e-9
    )
    assert (result.pagerank_curve[1:] > result.srsr_curves[0.6][1:]).all()

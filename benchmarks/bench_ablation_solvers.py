"""Ablation — power iteration vs Jacobi vs Gauss–Seidel.

The paper solves Eq. 1/3 with the Power Method and cites Gleich et al.'s
linear-system formulation [18].  This bench measures iterations-to-1e-9
and wall time for the three solvers on both a page matrix (zero diagonal)
and a throttled source matrix (heavy diagonal), where the solvers behave
very differently.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.config import RankingParams
from repro.datasets import load_dataset
from repro.eval import format_table
from repro.graph import transition_matrix
from repro.ranking import gauss_seidel_solve, jacobi_solve, power_iteration
from repro.sources import SourceGraph
from repro.throttle import ThrottleVector, throttle_transform

_SOLVERS = {
    "power": power_iteration,
    "jacobi": jacobi_solve,
    "gauss_seidel": gauss_seidel_solve,
}


def _run_solver_ablation():
    ds = load_dataset("uk2002_like", with_spam=False)
    params = RankingParams()
    page_matrix = transition_matrix(ds.graph)
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
    rng = np.random.default_rng(0)
    kappa = ThrottleVector(rng.random(sg.n_sources) * 0.9)
    source_matrix = throttle_transform(sg.matrix, kappa)

    rows = []
    reference: dict[str, np.ndarray] = {}
    for label, matrix in (("page", page_matrix), ("source_T''", source_matrix)):
        for name, solver in _SOLVERS.items():
            start = time.perf_counter()
            result = solver(matrix, params)
            elapsed = time.perf_counter() - start
            rows.append(
                {
                    "matrix": label,
                    "solver": name,
                    "iterations": result.convergence.iterations,
                    "seconds": elapsed,
                }
            )
            key = label
            if key in reference:
                np.testing.assert_allclose(
                    result.scores, reference[key], atol=1e-7
                )
            else:
                reference[key] = result.scores
    return rows


def test_solver_ablation(benchmark, record, once):
    rows = once(benchmark, _run_solver_ablation)
    record(
        "ablation_solvers",
        format_table(
            rows,
            ["matrix", "solver", "iterations", "seconds"],
            title="Ablation: solver iterations and wall time to 1e-9 (alpha=0.85)",
        ),
    )
    by = {(r["matrix"], r["solver"]): r for r in rows}
    # Gauss–Seidel needs fewer sweeps than the power method on the page
    # matrix (the Gleich et al. observation).
    assert (
        by[("page", "gauss_seidel")]["iterations"]
        < by[("page", "power")]["iterations"]
    )

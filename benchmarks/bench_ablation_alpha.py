"""Ablation — sensitivity of the defence to the mixing parameter alpha.

The paper fixes alpha = 0.85 "(which is typical in the literature)".
This bench sweeps alpha and reports, on the Fig. 5 protocol:

* the spam demotion achieved by throttling (percentile points);
* the spammer's theoretical self-tuning cap 1/(1-alpha) (Fig. 2's k=0
  endpoint) — the tension: larger alpha propagates legitimate authority
  further but also amplifies what un-throttled spam can self-claim;
* power-iteration count (the well-known convergence cost of alpha -> 1).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExperimentParams, RankingParams, SpamProximityParams
from repro.datasets import load_dataset, sample_seed_set
from repro.eval import format_table
from repro.ranking import sourcerank, spam_resilient_sourcerank
from repro.sources import SourceGraph
from repro.throttle import assign_kappa, spam_proximity

_ALPHAS = (0.5, 0.7, 0.85, 0.95)


def _run_alpha_ablation(dataset: str = "uk2002_like"):
    base_params = ExperimentParams()
    ds = load_dataset(dataset)
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
    rng = np.random.default_rng(base_params.seed)
    seeds = sample_seed_set(ds.spam_sources, base_params.seed_fraction, rng)

    rows = []
    for alpha in _ALPHAS:
        ranking = RankingParams(alpha=alpha)
        proximity = spam_proximity(
            sg, seeds, SpamProximityParams(beta=alpha)
        )
        kappa = assign_kappa(proximity.scores, base_params.throttle)
        baseline = sourcerank(sg, ranking)
        throttled = spam_resilient_sourcerank(
            sg, kappa, ranking, full_throttle="dangling"
        )
        demotion = (
            baseline.percentiles()[ds.spam_sources].mean()
            - throttled.percentiles()[ds.spam_sources].mean()
        )
        rows.append(
            {
                "alpha": alpha,
                "spam_demotion_pts": demotion,
                "self_tuning_cap": 1.0 / (1.0 - alpha),
                "iterations": baseline.convergence.iterations,
            }
        )
    return rows


def test_alpha_sensitivity(benchmark, record, once):
    rows = once(benchmark, _run_alpha_ablation)
    record(
        "ablation_alpha",
        format_table(
            rows,
            ["alpha", "spam_demotion_pts", "self_tuning_cap", "iterations"],
            title="Ablation: defence sensitivity to alpha (Fig. 5 protocol)",
        ),
    )
    # The defence must work across the whole alpha range...
    for row in rows:
        assert row["spam_demotion_pts"] > 5
    # ...and iteration cost must grow with alpha (the classic trade-off).
    iters = [r["iterations"] for r in rows]
    assert iters[0] < iters[-1]

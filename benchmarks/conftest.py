"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table or figure) and both
prints the series (run pytest with ``-s`` to see them inline) and writes
them under ``benchmarks/results/`` so EXPERIMENTS.md can reference the
exact rendered output.
"""

from __future__ import annotations

import json
import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record():
    """Return a callback ``record(name, text)`` that persists and echoes
    one artifact's rendered series."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        # Echo to the real stdout so -s shows artifacts inline.
        sys.stdout.write(f"\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def once():
    """Wrap a heavy driver so ``benchmark`` times exactly one execution.

    Usage::

        result = once(benchmark, run_fig5, "wb2001_like")
    """

    def _once(benchmark, fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _once


@pytest.fixture(scope="session")
def _metrics_delta_store():
    """Per-bench registry deltas, written out once at session end."""
    store: dict[str, dict[str, float]] = {}
    yield store
    if store:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / "metrics_deltas.json"
        path.write_text(
            json.dumps(store, indent=2, sort_keys=True) + "\n", encoding="utf-8"
        )
        sys.stdout.write(f"\nwrote per-bench metrics deltas to {path}\n")


@pytest.fixture(autouse=True)
def snapshot_metrics(request, _metrics_delta_store):
    """Record what each bench added to the global metrics registry.

    The delta (counter increments, histogram count/sum growth) is keyed by
    the bench's node id in ``benchmarks/results/metrics_deltas.json`` — a
    cheap regression fingerprint: a bench whose pipeline-run or solver
    -iteration counts change shape shows up in the diff.
    """
    from repro.observability import diff_snapshots, get_registry

    registry = get_registry()
    before = registry.snapshot()
    yield
    delta = diff_snapshots(before, registry.snapshot())
    if delta:
        _metrics_delta_store[request.node.nodeid] = delta

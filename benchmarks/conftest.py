"""Shared helpers for the benchmark harness.

Every bench regenerates one paper artifact (table or figure) and both
prints the series (run pytest with ``-s`` to see them inline) and writes
them under ``benchmarks/results/`` so EXPERIMENTS.md can reference the
exact rendered output.
"""

from __future__ import annotations

import sys
from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def record():
    """Return a callback ``record(name, text)`` that persists and echoes
    one artifact's rendered series."""
    RESULTS_DIR.mkdir(exist_ok=True)

    def _record(name: str, text: str) -> None:
        path = RESULTS_DIR / f"{name}.txt"
        path.write_text(text + "\n", encoding="utf-8")
        # Echo to the real stdout so -s shows artifacts inline.
        sys.stdout.write(f"\n{text}\n")

    return _record


@pytest.fixture(scope="session")
def once():
    """Wrap a heavy driver so ``benchmark`` times exactly one execution.

    Usage::

        result = once(benchmark, run_fig5, "wb2001_like")
    """

    def _once(benchmark, fn, *args, **kwargs):
        return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)

    return _once

#!/usr/bin/env python
"""Open-loop load harness for the replicated serving fleet.

One publisher (the existing :class:`RankingService` updater) feeds the
snapshot store; N spawned read-only replicas adopt each publish; an
asyncio front door balances batched σ/percentile/top-k reads across
them.  The harness drives the whole stack the way the ISSUE demands:

* **load** — ≥1M reads (batched requests, open-loop arrival schedule:
  latency is completion − *scheduled* arrival, so a stalled server
  pays for the queue it builds, not just its service time).
* **chaos** — one replica is SIGKILLed mid-load and restarted while
  the load keeps running; every read issued during the outage must
  still succeed (the door evicts and retries), and after the restart
  the replica must take reads again.
* **updates** — the publisher applies evolving-graph updates mid-load;
  afterwards every replica must converge to the newest snapshot and
  serve a σ identical to the publisher's latest to 1e-9.
* **singletons** — concurrent single-id reads must be coalesced by the
  door's micro-batcher (strictly fewer flushes than reads).

Writes ``benchmarks/results/BENCH_fleet.json``; exits non-zero when any
gate fails: a failed or rejected read, a replica that never converged,
σ drift past 1e-9, an outage that surfaced to a client, or a
micro-batcher that never batched.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from pathlib import Path

import numpy as np

RESULTS_PATH = Path(__file__).parent / "results" / "BENCH_fleet.json"

SIGMA_ATOL = 1e-9

#: Share of the scheduled requests at which the chaos levers fire.
KILL_AT = 0.35
RESTART_AT = 0.60
UPDATE_AT = (0.20, 0.45, 0.75)


def quantile(samples: list[float], q: float) -> float:
    if not samples:
        return 0.0
    return float(np.quantile(np.asarray(samples), q))


class GraphEvolver:
    """Deterministic stream of growing page webs (bench_serving idiom)."""

    def __init__(self, graph, seed: int) -> None:
        from repro.graph import add_edges

        self._add_edges = add_edges
        self.graph = graph
        self._gen = np.random.default_rng(seed)

    def step(self):
        src = self._gen.integers(0, self.graph.n_nodes, size=4)
        dst = self._gen.integers(0, self.graph.n_nodes, size=4)
        self.graph = self._add_edges(self.graph, src.tolist(), dst.tolist())
        return self.graph


def build_fleet(store_dir: Path, seed: int, replicas: int):
    from repro.config import FleetParams, ServingParams
    from repro.serving import RankingService, ServingFleet

    serving = ServingParams(
        max_pending=6,
        backoff_base_seconds=0.02,
        backoff_max_seconds=0.2,
        poll_interval_seconds=0.005,
        seed=seed,
    )
    service = RankingService(store_dir, serving=serving)
    params = FleetParams(
        replicas=replicas,
        replica_poll_seconds=0.02,
        probe_interval_seconds=0.1,
        batch_linger_seconds=0.002,
    )
    return service, ServingFleet(service, params)


# ----------------------------------------------------------------------
# Open-loop load with mid-load chaos and publisher updates
# ----------------------------------------------------------------------
def run_load(
    fleet,
    service,
    evolver,
    assignment,
    kappa,
    *,
    n_sources: int,
    requests: int,
    batch_ids: int,
    seed: int,
) -> dict:
    """Drive the scheduled request stream through the front door.

    Open-loop: request *i* is due at ``t0 + i·interval`` regardless of
    how the server is doing; its latency is measured from that arrival,
    so a backed-up door shows up as tail latency instead of silently
    slowing the generator down (closed-loop coordination omission).
    """
    from repro.errors import AdmissionError

    gen = np.random.default_rng(seed)
    client = fleet.client()

    # Calibrate the arrival rate against this machine: the open-loop
    # schedule targets ~75% of the measured unloaded throughput so the
    # queue drains between stalls instead of growing without bound.
    warmup = []
    for _ in range(20):
        ids = gen.integers(0, n_sources, size=batch_ids).tolist()
        t = time.perf_counter()
        response = client.score(ids)
        warmup.append(time.perf_counter() - t)
        assert response["ok"], response
    interval = max(float(np.median(warmup)) / 0.75, 1e-4)

    kill_idx = int(requests * KILL_AT)
    restart_idx = int(requests * RESTART_AT)
    update_idx = {int(requests * frac) for frac in UPDATE_AT}

    latencies: list[float] = []
    outage = {"reads": 0, "failed": 0}
    failures: list[str] = []
    updates_accepted = 0
    restart_thread: threading.Thread | None = None
    restart_error: list[str] = []
    in_outage = False

    def restart() -> None:
        try:
            fleet.restart_replica(0)
        except Exception as exc:  # noqa: BLE001 - gated below
            restart_error.append(f"{type(exc).__name__}: {exc}")

    t0 = time.perf_counter()
    for i in range(requests):
        if i == kill_idx:
            fleet.kill_replica(0)
            in_outage = True
        if i == restart_idx:
            restart_thread = threading.Thread(target=restart, name="restart")
            restart_thread.start()
        if i in update_idx:
            try:
                service.submit_update(evolver.step(), assignment, kappa)
                updates_accepted += 1
            except AdmissionError:
                pass  # backpressure: the load does not stop for it
        arrival = t0 + i * interval
        now = time.perf_counter()
        if now < arrival:
            time.sleep(arrival - now)
        ids = gen.integers(0, n_sources, size=batch_ids).tolist()
        response = (
            client.percentile(ids) if i % 7 == 6 else client.score(ids)
        )
        done = time.perf_counter()
        # Open-loop latency: measured from the *scheduled* arrival, so
        # time spent queued behind a stalled door counts against us.
        latencies.append(done - arrival)
        ok = bool(response.get("ok"))
        if in_outage:
            outage["reads"] += batch_ids
            if not ok:
                outage["failed"] += batch_ids
        if not ok and len(failures) < 10:
            failures.append(str(response))
        if restart_thread is not None and not restart_thread.is_alive():
            in_outage = False
    elapsed = time.perf_counter() - t0

    if restart_thread is not None:
        restart_thread.join(timeout=120)

    # Post-restart traffic: the restarted replica must take reads again.
    deadline = time.monotonic() + 60
    while (
        fleet.frontdoor.stats()["replicas"]["0"]["state"] != "active"
        and time.monotonic() < deadline
    ):
        time.sleep(0.05)
    reads_before = fleet.frontdoor.stats()["replicas"]["0"]["reads"]
    post_restart = 50
    for i in range(post_restart):
        ids = gen.integers(0, n_sources, size=batch_ids).tolist()
        t = time.perf_counter()
        response = client.score(ids)
        latencies.append(time.perf_counter() - t)
        if not response.get("ok") and len(failures) < 10:
            failures.append(str(response))
    reads_after = fleet.frontdoor.stats()["replicas"]["0"]["reads"]
    client.close()

    total_requests = requests + len(warmup) + post_restart
    return {
        "requests": total_requests,
        "scheduled_requests": requests,
        "batch_ids": batch_ids,
        "interval_seconds": interval,
        "target_rate_reads_per_second": batch_ids / interval,
        "elapsed_seconds": elapsed,
        "latency_overall": {
            "count": len(latencies),
            "p50_seconds": quantile(latencies, 0.50),
            "p99_seconds": quantile(latencies, 0.99),
            "max_seconds": max(latencies),
        },
        "chaos": {
            "killed_at_request": kill_idx,
            "restart_started_at_request": restart_idx,
            "reads_during_outage": outage["reads"],
            "failed_during_outage": outage["failed"],
            "restart_error": restart_error,
            "restarted_replica_state": fleet.frontdoor.stats()["replicas"][
                "0"
            ]["state"],
            "restarted_replica_reads_delta": reads_after - reads_before,
        },
        "updates_accepted": updates_accepted,
        "request_failures": failures,
    }


# ----------------------------------------------------------------------
# Singleton micro-batching phase
# ----------------------------------------------------------------------
def run_singletons(fleet, n_sources: int, threads: int, rounds: int) -> dict:
    """Concurrent single-id reads must coalesce inside the door."""
    from repro.serving import FleetClient

    stats_before = fleet.frontdoor.stats()["batching"]
    results: list[bool] = []
    lock = threading.Lock()

    def reader(offset: int) -> None:
        with FleetClient(fleet.frontdoor.address) as client:
            ok = [
                bool(client.score_one((offset + i) % n_sources).get("ok"))
                for i in range(rounds)
            ]
        with lock:
            results.extend(ok)

    workers = [
        threading.Thread(target=reader, args=(i * 17,), name=f"singleton-{i}")
        for i in range(threads)
    ]
    for worker in workers:
        worker.start()
    for worker in workers:
        worker.join(timeout=120)
    stats_after = fleet.frontdoor.stats()["batching"]
    reads = threads * rounds
    flushes = stats_after["flushes"] - stats_before["flushes"]
    return {
        "reads": reads,
        "ok": sum(results),
        "flushes": flushes,
        "coalesced": bool(flushes and flushes < reads),
    }


# ----------------------------------------------------------------------
# Convergence + σ identity
# ----------------------------------------------------------------------
def run_convergence(fleet, service) -> dict:
    """Every replica lands on the publisher's newest snapshot, exactly."""
    from repro.serving import replica_request

    deadline = time.monotonic() + 120
    while (
        service.health()["staleness_updates"] > 0
        and time.monotonic() < deadline
    ):
        time.sleep(0.02)
    published = service.health()["snapshot_version"]
    versions: dict[str, int | None] = {}
    while time.monotonic() < deadline:
        versions = {
            rid: entry.get("snapshot_version")
            for rid, entry in fleet.frontdoor.health().items()
        }
        if versions and all(v == published for v in versions.values()):
            break
        time.sleep(0.05)

    reference = service.store.latest(kind="sr").result().scores
    per_replica: dict[str, float] = {}
    for rid, handle in sorted(fleet.replicas.items()):
        served = replica_request(handle.address, {"op": "sigma"})["sigma"]
        per_replica[str(rid)] = float(
            np.abs(np.asarray(served) - reference).max()
        )
    sigma_max_diff = max(per_replica.values())
    return {
        "published_version": published,
        "replica_versions": versions,
        "converged": bool(
            versions and all(v == published for v in versions.values())
        ),
        "sigma_max_diff": sigma_max_diff,
        "sigma_per_replica": per_replica,
    }


# ----------------------------------------------------------------------
# Driver
# ----------------------------------------------------------------------
def run(
    quick: bool, seed: int, replicas: int, requests: int, batch_ids: int,
    store_dir: Path,
) -> dict:
    from repro.datasets import load_dataset
    from repro.observability.metrics import reset_registry
    from repro.throttle.vector import ThrottleVector

    reset_registry()
    ds = load_dataset("tiny")
    n = ds.assignment.n_sources
    kappa = np.zeros(n)
    kappa[np.asarray(ds.spam_sources, dtype=np.int64)] = 1.0
    kappa = ThrottleVector(kappa)

    service, fleet = build_fleet(store_dir, seed, replicas)
    t0 = time.perf_counter()
    service.bootstrap(ds.graph, ds.assignment, kappa)
    bootstrap_seconds = time.perf_counter() - t0
    evolver = GraphEvolver(ds.graph, seed)

    t0 = time.perf_counter()
    with fleet:
        fleet_up_seconds = time.perf_counter() - t0
        load = run_load(
            fleet,
            service,
            evolver,
            ds.assignment,
            kappa,
            n_sources=n,
            requests=requests,
            batch_ids=batch_ids,
            seed=seed,
        )
        singletons = run_singletons(
            fleet, n, threads=8, rounds=4 if quick else 16
        )
        convergence = run_convergence(fleet, service)
        door = fleet.frontdoor.stats()
        health = fleet.health()

    reads = door["reads"]
    per_replica = {
        rid: {
            "state": entry["state"],
            "reads": entry["reads"],
            "evictions": entry["evictions"],
            "reinstatements": entry["reinstatements"],
            "latency": entry["latency"],
        }
        for rid, entry in door["replicas"].items()
    }
    chaos = load["chaos"]
    gates = {
        "zero_failed_reads": bool(
            reads["failed"] == 0
            and reads["rejected"] == 0
            and not load["request_failures"]
        ),
        "min_reads": reads["ok"] >= requests * batch_ids,
        "chaos_recovered": bool(
            not chaos["restart_error"]
            and chaos["restarted_replica_state"] == "active"
            and door["replicas"]["0"]["evictions"] >= 1
            and door["replicas"]["0"]["reinstatements"] >= 1
            and chaos["restarted_replica_reads_delta"] > 0
        ),
        "outage_survived": bool(
            chaos["reads_during_outage"] > 0
            and chaos["failed_during_outage"] == 0
        ),
        "updates_applied": load["updates_accepted"] >= len(UPDATE_AT),
        "replicas_converged": convergence["converged"],
        "sigma_identity": convergence["sigma_max_diff"] <= SIGMA_ATOL,
        "singletons_coalesced": singletons["coalesced"],
        "every_replica_served": all(
            entry["reads"] > 0 for entry in per_replica.values()
        ),
        "publisher_healthy": health["publisher"]["state"] == "healthy",
    }
    return {
        "quick": quick,
        "seed": seed,
        "replicas": replicas,
        "n_sources": int(n),
        "sigma_atol": SIGMA_ATOL,
        "bootstrap_seconds": bootstrap_seconds,
        "fleet_up_seconds": fleet_up_seconds,
        "load": {
            **{k: v for k, v in load.items() if k != "chaos"},
            "reads": {
                "total": reads["ok"] + reads["failed"] + reads["rejected"],
                "ok": reads["ok"],
                "failed": reads["failed"],
                "rejected": reads["rejected"],
            },
            "latency": {
                "overall": load["latency_overall"],
                "per_replica": {
                    rid: entry["latency"]
                    for rid, entry in per_replica.items()
                },
            },
        },
        "chaos": chaos,
        "adoption": {
            "published_version": convergence["published_version"],
            "replica_versions": convergence["replica_versions"],
            "sigma_max_diff": convergence["sigma_max_diff"],
            "sigma_per_replica": convergence["sigma_per_replica"],
        },
        "singletons": singletons,
        "per_replica": per_replica,
        "frontend": {
            "requests_total": door["requests_total"],
            "batching": door["batching"],
        },
        "gates": gates,
        "all_passed": all(gates.values()),
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small read count (CI mode; every gate still applies)",
    )
    parser.add_argument("--seed", type=int, default=2007)
    parser.add_argument(
        "--replicas", type=int, default=3, help="fleet size (default 3)"
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=None,
        help="scheduled batched requests (default 1500, or 100 with --quick)",
    )
    parser.add_argument(
        "--batch-ids",
        type=int,
        default=None,
        help="ids per batched request (default 700, or 500 with --quick)",
    )
    parser.add_argument(
        "--out", type=Path, default=RESULTS_PATH, help="output JSON path"
    )
    args = parser.parse_args(argv)
    requests = args.requests or (100 if args.quick else 1500)
    batch_ids = args.batch_ids or (500 if args.quick else 700)

    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        report = run(
            args.quick, args.seed, args.replicas, requests, batch_ids,
            Path(tmp) / "snapshots",
        )
    args.out.parent.mkdir(parents=True, exist_ok=True)
    args.out.write_text(json.dumps(report, indent=2) + "\n", encoding="utf-8")

    load, chaos = report["load"], report["chaos"]
    print(
        f"fleet load ({report['replicas']} replicas, "
        f"{load['reads']['total']:,} reads in "
        f"{load['elapsed_seconds']:.1f}s open-loop):"
    )
    print(
        f"  latency p50 {load['latency']['overall']['p50_seconds'] * 1e3:.2f}ms "
        f"p99 {load['latency']['overall']['p99_seconds'] * 1e3:.2f}ms; "
        f"outage reads {chaos['reads_during_outage']:,} "
        f"({chaos['failed_during_outage']} failed)"
    )
    print(
        f"  adoption: publisher v{report['adoption']['published_version']}, "
        f"replicas {report['adoption']['replica_versions']}, "
        f"sigma max diff {report['adoption']['sigma_max_diff']:.2e}"
    )
    for gate, passed in report["gates"].items():
        print(f"  {gate}: {'ok' if passed else 'FAILED'}")
    print(f"  wrote {args.out}")
    if not report["all_passed"]:
        failed = [g for g, ok in report["gates"].items() if not ok]
        print(f"FAIL: gates failed: {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Spammer economics — the paper's future-work metrics, measured.

Two experiments:

1. **Closed-form planning** (`AttackPlanner`): optimal budget allocation
   and achievable score gain against PageRank vs SR-SourceRank across
   defender throttle levels; the cost-ratio column quantifies "raises the
   cost of rank manipulation".
2. **Portfolio value** (simulated): a spammer portfolio (the planted
   communities) is valued by modeled traffic share under baseline
   SourceRank vs throttled SR-SourceRank — "the relative impact on the
   value of a spammer's portfolio of sources" (Section 8).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ExperimentParams
from repro.datasets import load_dataset, sample_seed_set
from repro.economics import AttackPlanner, CostModel, traffic_share
from repro.eval import format_table
from repro.ranking import sourcerank, spam_resilient_sourcerank
from repro.sources import SourceGraph
from repro.throttle import assign_kappa, spam_proximity


def _run_planner_sweep():
    planner = AttackPlanner(CostModel(), n_pages=1_000_000, n_sources=100_000)
    budget = 1e5
    rows = [planner.plan_against_pagerank(budget).as_dict()]
    for kappa in (0.0, 0.6, 0.9, 0.99):
        plan = planner.plan_against_srsr(budget, kappa)
        row = plan.as_dict()
        row["cost_ratio_vs_pr"] = planner.cost_ratio(kappa)
        rows.append(row)
    return rows


def test_attack_planner_sweep(benchmark, record, once):
    rows = once(benchmark, _run_planner_sweep)
    record(
        "economics_planner",
        format_table(
            rows,
            ["ranking", "budget", "pages", "sources", "score_gain",
             "gain_per_unit", "cost_ratio_vs_pr"],
            title="Economics: optimal attack plans at a fixed budget",
        ),
    )
    ratios = [r.get("cost_ratio_vs_pr") for r in rows[1:]]
    assert all(a < b for a, b in zip(ratios, ratios[1:]))  # kappa raises cost


def _run_portfolio_value(dataset: str = "wb2001_like"):
    params = ExperimentParams()
    ds = load_dataset(dataset)
    sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
    rng = np.random.default_rng(params.seed)
    seeds = sample_seed_set(ds.spam_sources, params.seed_fraction, rng)
    proximity = spam_proximity(sg, seeds, params.proximity)
    kappa = assign_kappa(proximity.scores, params.throttle)

    baseline = sourcerank(sg, params.ranking)
    throttled = spam_resilient_sourcerank(
        sg, kappa, params.ranking, full_throttle="dangling"
    )
    rows = []
    for label, ranking in (("baseline", baseline), ("throttled", throttled)):
        rows.append(
            {
                "ranking": label,
                "portfolio_share_%": 100 * traffic_share(ranking, ds.spam_sources),
                "fair_share_%": 100 * ds.spam_sources.size / ds.n_sources,
            }
        )
    return rows


def test_portfolio_value_impact(benchmark, record, once):
    rows = once(benchmark, _run_portfolio_value)
    record(
        "economics_portfolio",
        format_table(
            rows,
            ["ranking", "portfolio_share_%", "fair_share_%"],
            title="Economics: spam portfolio traffic share, baseline vs throttled",
        ),
    )
    by = {r["ranking"]: r for r in rows}
    # Throttling must cut the portfolio's modeled traffic substantially.
    assert by["throttled"]["portfolio_share_%"] < 0.5 * by["baseline"]["portfolio_share_%"]

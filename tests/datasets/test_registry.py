"""Unit tests for the dataset registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import DATASETS, load_dataset
from repro.errors import DatasetError
from repro.sources import SourceGraph


class TestRegistry:
    def test_expected_names(self):
        assert {"uk2002_like", "it2004_like", "wb2001_like", "tiny"} <= set(DATASETS)

    def test_specs_carry_paper_ground_truth(self):
        spec = DATASETS["uk2002_like"]
        assert spec.paper_sources == 98_221
        assert spec.paper_edges == 1_625_097

    def test_load_tiny_with_spam(self):
        ds = load_dataset("tiny")
        assert ds.spam_sources.size == DATASETS["tiny"].spam.n_spam_sources
        assert ds.n_sources == ds.assignment.n_sources

    def test_load_without_spam(self):
        ds = load_dataset("tiny", with_spam=False)
        assert ds.spam_sources.size == 0

    def test_unknown_name(self):
        with pytest.raises(DatasetError, match="unknown dataset"):
            load_dataset("nope")

    def test_determinism(self):
        a = load_dataset("tiny")
        b = load_dataset("tiny")
        assert a.graph == b.graph
        np.testing.assert_array_equal(a.spam_sources, b.spam_sources)

    def test_seed_override_changes_graph(self):
        a = load_dataset("tiny")
        b = load_dataset("tiny", seed_override=999)
        assert a.graph != b.graph

    def test_scale_override(self):
        base = load_dataset("tiny", with_spam=False)
        bigger = load_dataset("tiny", with_spam=False, scale_override=2.0)
        assert bigger.n_sources == pytest.approx(2 * base.n_sources, rel=0.05)

    def test_bad_scale_rejected(self):
        with pytest.raises(DatasetError):
            load_dataset("tiny", scale_override=0.0)

    def test_edge_density_matches_paper_shape(self):
        """The synthetic source graphs must land within 25 % of the
        paper's Table 1 edges-per-source ratios."""
        for name in ("uk2002_like", "wb2001_like"):
            ds = load_dataset(name, with_spam=False)
            sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
            ours = sg.n_edges(count_self=False) / ds.n_sources
            spec = ds.spec
            paper = spec.paper_edges / spec.paper_sources
            assert abs(ours - paper) / paper < 0.25, name

"""Unit tests for spam-community planting and seed sampling."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    SpamPlantConfig,
    SyntheticWebConfig,
    generate_web,
    plant_spam_communities,
    sample_seed_set,
)
from repro.errors import DatasetError
from repro.sources import SourceGraph


@pytest.fixture(scope="module")
def planted():
    graph, assignment = generate_web(
        SyntheticWebConfig(n_sources=150, mean_pages_per_source=10.0, seed=21)
    )
    cfg = SpamPlantConfig(n_spam_sources=12, seed=22)
    g2, a2, spam = plant_spam_communities(graph, assignment, cfg)
    return graph, assignment, g2, a2, spam


class TestPlanting:
    def test_spam_sources_appended(self, planted):
        graph, assignment, g2, a2, spam = planted
        assert spam.size == 12
        assert spam.min() == assignment.n_sources
        assert a2.n_sources == assignment.n_sources + 12

    def test_original_pages_unchanged(self, planted):
        graph, assignment, g2, a2, spam = planted
        np.testing.assert_array_equal(
            a2.page_to_source[: assignment.n_pages], assignment.page_to_source
        )

    def test_spam_interlinked(self, planted):
        """Every spam source must have source edges to other spam sources
        (the exchange ring)."""
        _, _, g2, a2, spam = planted
        sg = SourceGraph.from_page_graph(g2, a2)
        m = sg.matrix
        for s in spam:
            row = m[int(s)].tocoo().col
            others = np.setdiff1d(np.intersect1d(row, spam), [s])
            assert others.size >= 1

    def test_hijacked_links_exist(self, planted):
        """Some legitimate source must link into spam."""
        _, assignment, g2, a2, spam = planted
        sg = SourceGraph.from_page_graph(g2, a2)
        into_spam = sg.matrix[:, spam].sum(axis=1)
        legit = np.asarray(into_spam).ravel()[: assignment.n_sources]
        assert (legit > 0).any()

    def test_victim_pool_bounds_in_neighbourhood(self):
        graph, assignment = generate_web(
            SyntheticWebConfig(n_sources=200, mean_pages_per_source=10.0, seed=31)
        )
        cfg = SpamPlantConfig(
            n_spam_sources=10, hijacked_per_source=5, victim_pool_sources=4, seed=32
        )
        g2, a2, spam = plant_spam_communities(graph, assignment, cfg)
        sg = SourceGraph.from_page_graph(g2, a2)
        into_spam = np.asarray(sg.matrix[:, spam].sum(axis=1)).ravel()
        legit_linkers = np.flatnonzero(into_spam[: assignment.n_sources] > 0)
        assert legit_linkers.size <= 4

    def test_determinism(self):
        graph, assignment = generate_web(SyntheticWebConfig(n_sources=80, seed=41))
        cfg = SpamPlantConfig(n_spam_sources=5, seed=42)
        g_a, _, _ = plant_spam_communities(graph, assignment, cfg)
        g_b, _, _ = plant_spam_communities(graph, assignment, cfg)
        assert g_a == g_b

    def test_config_validation(self):
        with pytest.raises(DatasetError):
            SpamPlantConfig(n_spam_sources=1)
        with pytest.raises(DatasetError):
            SpamPlantConfig(pages_per_source=0)
        with pytest.raises(DatasetError):
            SpamPlantConfig(ring_chords=-1)


class TestSeedSampling:
    def test_fraction(self, rng):
        spam = np.arange(100, 200)
        seeds = sample_seed_set(spam, 0.1, np.random.default_rng(5))
        assert seeds.size == 10
        assert np.isin(seeds, spam).all()

    def test_at_least_one(self):
        seeds = sample_seed_set(np.array([7, 8]), 0.01, np.random.default_rng(5))
        assert seeds.size == 1

    def test_full_fraction(self):
        spam = np.arange(5)
        seeds = sample_seed_set(spam, 1.0, np.random.default_rng(5))
        np.testing.assert_array_equal(seeds, spam)

    def test_sorted_output(self):
        seeds = sample_seed_set(np.arange(50), 0.5, np.random.default_rng(6))
        assert (np.diff(seeds) > 0).all()

    def test_rejects_empty(self):
        with pytest.raises(DatasetError):
            sample_seed_set(np.array([], dtype=np.int64), 0.5, np.random.default_rng(0))

    def test_rejects_bad_fraction(self):
        with pytest.raises(DatasetError):
            sample_seed_set(np.arange(5), 0.0, np.random.default_rng(0))

"""Unit tests for the synthetic web-graph generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import SyntheticWebConfig, generate_web
from repro.errors import DatasetError
from repro.graph.stats import compute_stats, gini_coefficient, intra_host_locality


@pytest.fixture(scope="module")
def web():
    cfg = SyntheticWebConfig(n_sources=300, mean_pages_per_source=20.0, seed=5)
    return cfg, *generate_web(cfg)


class TestConfigValidation:
    def test_defaults_valid(self):
        SyntheticWebConfig()

    @pytest.mark.parametrize(
        "field,value",
        [
            ("n_sources", 1),
            ("mean_pages_per_source", 0.0),
            ("size_sigma", 0.0),
            ("mean_out_degree", 0.0),
            ("intra_fraction", 1.5),
            ("hub_bias", -0.1),
            ("popularity_noise", 0.0),
            ("mean_targets_per_source", 0.0),
            ("targets_sigma", 0.0),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(DatasetError):
            SyntheticWebConfig(**{field: value})


class TestGeneratedShape:
    def test_determinism(self):
        cfg = SyntheticWebConfig(n_sources=100, seed=9)
        g1, a1 = generate_web(cfg)
        g2, a2 = generate_web(cfg)
        assert g1 == g2
        assert a1 == a2

    def test_seed_changes_graph(self):
        cfg1 = SyntheticWebConfig(n_sources=100, seed=1)
        cfg2 = SyntheticWebConfig(n_sources=100, seed=2)
        assert generate_web(cfg1)[0] != generate_web(cfg2)[0]

    def test_source_count(self, web):
        cfg, graph, assignment = web
        assert assignment.n_sources == cfg.n_sources

    def test_pages_contiguous_by_source(self, web):
        _, _, assignment = web
        # page_to_source must be non-decreasing (source-major layout).
        diffs = np.diff(assignment.page_to_source)
        assert (diffs >= 0).all()

    def test_mean_source_size_near_target(self, web):
        cfg, _, assignment = web
        mean = assignment.source_sizes.mean()
        assert 0.5 * cfg.mean_pages_per_source < mean < 2.0 * cfg.mean_pages_per_source

    def test_locality_near_target(self, web):
        cfg, graph, assignment = web
        loc = intra_host_locality(graph, assignment.page_to_source)
        assert abs(loc - cfg.intra_fraction) < 0.08

    def test_mean_out_degree_near_target(self, web):
        cfg, graph, _ = web
        mean_deg = graph.n_edges / graph.n_nodes
        # Dedup and self-link drops push the mean below the target a bit.
        assert 0.5 * cfg.mean_out_degree < mean_deg <= cfg.mean_out_degree

    def test_no_self_loops(self, web):
        _, graph, _ = web
        assert compute_stats(graph).self_loops == 0

    def test_heavy_tailed_source_sizes(self, web):
        _, _, assignment = web
        assert gini_coefficient(assignment.source_sizes) > 0.3

    def test_hub_bias_concentrates_in_links(self):
        """Home pages must receive more in-links than other pages."""
        cfg = SyntheticWebConfig(n_sources=200, hub_bias=0.9, seed=3)
        graph, assignment = generate_web(cfg)
        indeg = graph.in_degrees()
        offsets = np.concatenate([[0], np.cumsum(assignment.source_sizes)[:-1]])
        hub_mean = indeg[offsets].mean()
        assert hub_mean > 2 * indeg.mean()

    def test_zero_intra_fraction(self):
        cfg = SyntheticWebConfig(n_sources=50, intra_fraction=0.0, seed=4)
        graph, assignment = generate_web(cfg)
        assert intra_host_locality(graph, assignment.page_to_source) == pytest.approx(
            0.0
        )

    def test_full_intra_fraction(self):
        cfg = SyntheticWebConfig(n_sources=50, intra_fraction=1.0, seed=4)
        graph, assignment = generate_web(cfg)
        assert intra_host_locality(graph, assignment.page_to_source) == pytest.approx(
            1.0
        )


class TestSourceStore:
    def _config(self, **overrides):
        from repro.datasets.synthetic import SyntheticSourceConfig

        base = dict(n_sources=500, mean_out_degree=5.0, seed=77)
        base.update(overrides)
        return SyntheticSourceConfig(**base)

    def test_deterministic(self, tmp_path):
        from repro.datasets.synthetic import generate_source_store

        a = generate_source_store(self._config(), tmp_path / "a", block_size=128)
        b = generate_source_store(self._config(), tmp_path / "b", block_size=128)
        assert [s.digest for s in a.shards] == [s.digest for s in b.shards]
        assert a.n_edges == b.n_edges

    def test_seed_changes_store(self, tmp_path):
        from repro.datasets.synthetic import generate_source_store

        a = generate_source_store(self._config(), tmp_path / "a", block_size=128)
        b = generate_source_store(
            self._config(seed=78), tmp_path / "b", block_size=128
        )
        assert [s.digest for s in a.shards] != [s.digest for s in b.shards]

    def test_rows_are_stochastic_with_no_dangling(self, tmp_path):
        from repro.datasets.synthetic import generate_source_store

        store = generate_source_store(
            self._config(), tmp_path / "store", block_size=128
        )
        np.testing.assert_allclose(store.row_sums(), 1.0, atol=1e-9)

    def test_meta_records_generator(self, tmp_path):
        from repro.datasets.synthetic import generate_source_store

        store = generate_source_store(
            self._config(), tmp_path / "store", block_size=128
        )
        assert store.meta["generator"] == "synthetic-source"
        assert store.meta["seed"] == 77

    def test_config_validation(self):
        from repro.errors import DatasetError

        with pytest.raises(DatasetError):
            self._config(n_sources=1)
        with pytest.raises(DatasetError):
            self._config(mean_out_degree=0.5)
        with pytest.raises(DatasetError):
            self._config(size_sigma=0.0)

"""Unit tests for the dataset validator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset, validate_dataset
from repro.datasets.validation import CheckResult, ValidationReport


class TestValidateDataset:
    @pytest.mark.parametrize("name", ["uk2002_like", "wb2001_like"])
    def test_shipped_analogues_pass(self, name):
        report = validate_dataset(load_dataset(name))
        assert report.passed, report.failures()

    def test_tiny_passes(self):
        # Toy specs skip the paper-anchored spam-fraction check entirely
        # (they deliberately over-plant spam so small tests have signal).
        report = validate_dataset(load_dataset("tiny"))
        assert report.passed, report.failures()
        assert "spam_fraction" not in {c.name for c in report.checks}

    def test_check_names_present(self):
        report = validate_dataset(load_dataset("uk2002_like"))
        names = {c.name for c in report.checks}
        assert {
            "intra_source_locality",
            "source_edge_density",
            "source_size_gini",
            "giant_component_fraction",
            "spam_fraction",
        } <= names

    def test_clean_dataset_skips_spam_check(self):
        report = validate_dataset(load_dataset("uk2002_like", with_spam=False))
        assert "spam_fraction" not in {c.name for c in report.checks}

    def test_tight_bands_fail(self):
        report = validate_dataset(
            load_dataset("uk2002_like"),
            locality_band=(0.99, 1.0),
        )
        assert not report.passed
        failed = {c.name for c in report.failures()}
        assert "intra_source_locality" in failed

    def test_format_marks_failures(self):
        report = ValidationReport(
            dataset="x",
            checks=(
                CheckResult("good", True, 1.0, ">= 0"),
                CheckResult("bad", False, 0.0, ">= 1"),
            ),
        )
        text = report.format()
        assert "NO" in text
        assert "yes" in text

    def test_dataset_cli_prints_validation(self, tmp_path, capsys):
        from repro.cli import main

        code = main(["dataset", "uk2002_like", str(tmp_path / "out")])
        out = capsys.readouterr().out
        assert "dataset validation" in out
        assert code == 0

"""Unit tests for the BlockRank-style two-level solver."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.errors import SourceAssignmentError
from repro.ranking import blockrank, local_pagerank, pagerank
from repro.sources import SourceAssignment


class TestLocalPagerank:
    def test_blocks_are_distributions(self, tiny_dataset):
        ds = tiny_dataset
        local = local_pagerank(ds.graph, ds.assignment, RankingParams())
        sums = np.bincount(
            ds.assignment.page_to_source, weights=local, minlength=ds.n_sources
        )
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)

    def test_single_page_sources_get_one(self):
        from repro.graph import PageGraph

        g = PageGraph.from_edges([0], [1], 3)
        a = SourceAssignment(np.array([0, 1, 2]))
        local = local_pagerank(g, a, RankingParams())
        np.testing.assert_allclose(local, 1.0)

    def test_mismatch_rejected(self, tiny_dataset):
        with pytest.raises(SourceAssignmentError):
            local_pagerank(
                tiny_dataset.graph, SourceAssignment(np.array([0, 1])), RankingParams()
            )

    def test_local_ignores_cross_links(self):
        """A page's local score must not depend on other sources' links."""
        from repro.graph import PageGraph

        # Source 0: pages 0,1 with 0->1.  Source 1: page 2 linking at 1.
        g1 = PageGraph.from_edges([0, 2], [1, 1], 3)
        g2 = PageGraph.from_edges([0], [1], 3)  # cross link removed
        a = SourceAssignment(np.array([0, 0, 1]))
        params = RankingParams()
        np.testing.assert_allclose(
            local_pagerank(g1, a, params)[:2],
            local_pagerank(g2, a, params)[:2],
            atol=1e-12,
        )


class TestBlockRank:
    def test_same_fixed_point_as_pagerank(self, tiny_dataset):
        ds = tiny_dataset
        params = RankingParams()
        br = blockrank(ds.graph, ds.assignment, params)
        pr = pagerank(ds.graph, params, dangling="teleport")
        np.testing.assert_allclose(
            br.global_ranking.scores, pr.scores, atol=1e-8
        )

    def test_measure_cold_records_iterations(self, tiny_dataset):
        ds = tiny_dataset
        br = blockrank(ds.graph, ds.assignment, measure_cold=True)
        assert br.cold_iterations is not None
        assert br.warm_start_iterations >= 1
        # The two-level warm start must not be substantially worse than a
        # cold start (it is usually a little better; exact savings are
        # locality-dependent and measured in the ablation bench).
        assert br.warm_start_iterations <= br.cold_iterations + 5

    def test_aggregate_ranking_sums_to_one(self, tiny_dataset):
        ds = tiny_dataset
        br = blockrank(ds.graph, ds.assignment)
        assert br.source_ranking.scores.sum() == pytest.approx(1.0)
        assert br.source_ranking.n == ds.n_sources

"""Unit tests for incremental rank maintenance."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.errors import GraphError
from repro.graph import PageGraph, add_edges
from repro.ranking import (
    IncrementalPageRank,
    IncrementalSourceRank,
    pagerank,
    spam_resilient_sourcerank,
)
from repro.sources import SourceGraph
from repro.spam import IntraSourceAttack
from repro.throttle import ThrottleVector


class TestIncrementalPageRank:
    def test_first_update_matches_cold(self, small_graph):
        inc = IncrementalPageRank()
        result = inc.update(small_graph)
        cold = pagerank(small_graph)
        np.testing.assert_allclose(result.scores, cold.scores, atol=1e-12)

    def test_incremental_matches_cold_after_growth(self, small_graph):
        inc = IncrementalPageRank(RankingParams())
        inc.update(small_graph)
        grown = add_edges(small_graph, [small_graph.n_nodes], [0])
        warm = inc.update(grown)
        cold = pagerank(grown)
        np.testing.assert_allclose(warm.scores, cold.scores, atol=1e-7)

    def test_warm_start_saves_iterations(self, small_graph):
        # "teleport" dangling keeps the iteration stochastic, so the warm
        # start actually sits near the fixed point.
        inc = IncrementalPageRank(dangling="teleport")
        first = inc.update(small_graph)
        grown = add_edges(small_graph, [small_graph.n_nodes], [0])
        second = inc.update(grown)
        assert second.convergence.iterations < first.convergence.iterations

    def test_current_tracks_last(self, small_graph):
        inc = IncrementalPageRank()
        assert inc.current is None
        result = inc.update(small_graph)
        assert inc.current is result

    def test_reset(self, small_graph):
        inc = IncrementalPageRank()
        inc.update(small_graph)
        inc.reset()
        assert inc.current is None

    def test_shrinking_graph_rejected(self, small_graph):
        inc = IncrementalPageRank()
        inc.update(small_graph)
        with pytest.raises(GraphError, match="shrank"):
            inc.update(PageGraph.from_edges([0], [1], 2))


class TestIncrementalSourceRank:
    def test_matches_cold_after_attack(self, tiny_dataset):
        ds = tiny_dataset
        inc = IncrementalSourceRank()
        inc.update(ds.graph, ds.assignment)
        spammed = IntraSourceAttack(0, 20).apply(ds.graph, ds.assignment)
        warm = inc.update(spammed.graph, spammed.assignment)
        cold_sg = SourceGraph.from_page_graph(spammed.graph, spammed.assignment)
        cold = spam_resilient_sourcerank(cold_sg, None)
        np.testing.assert_allclose(warm.scores, cold.scores, atol=1e-7)

    def test_kappa_padded_for_new_sources(self, tiny_dataset):
        from repro.spam import LinkFarmAttack

        ds = tiny_dataset
        inc = IncrementalSourceRank()
        kappa = ThrottleVector.zeros(ds.n_sources).updated(ds.spam_sources, 0.9)
        inc.update(ds.graph, ds.assignment, kappa)
        spammed = LinkFarmAttack(0, 5, n_sources=3).apply(ds.graph, ds.assignment)
        result = inc.update(spammed.graph, spammed.assignment, kappa)
        assert result.n == ds.n_sources + 3

    def test_oversized_kappa_rejected(self, tiny_dataset):
        # Regression: a κ longer than the source graph used to be
        # accepted silently and fail (or worse, rank wrong) downstream.
        from repro.errors import ThrottleError

        ds = tiny_dataset
        inc = IncrementalSourceRank()
        oversized = ThrottleVector.zeros(ds.n_sources + 5)
        # Must be update's own diagnostic (mirroring _padded_warm_start's
        # shrink error), not ThrottledOperator's generic size mismatch
        # raised three layers down.
        with pytest.raises(ThrottleError, match="recompute") as excinfo:
            inc.update(ds.graph, ds.assignment, oversized)
        message = str(excinfo.value)
        assert str(ds.n_sources + 5) in message
        assert str(ds.n_sources) in message

    def test_weighting_and_mode_forwarded(self, tiny_dataset):
        ds = tiny_dataset
        a = IncrementalSourceRank(weighting="uniform").update(
            ds.graph, ds.assignment
        )
        b = IncrementalSourceRank(weighting="consensus").update(
            ds.graph, ds.assignment
        )
        assert not np.allclose(a.scores, b.scores)


class TestThreadSafety:
    def test_concurrent_pagerank_updates_serialize(self, small_graph):
        # Regression: updates used to mutate ``_last`` with no lock, so
        # concurrent callers could interleave warm starts with a torn
        # result.  All threads must finish cleanly and agree with the
        # cold solve.
        import threading

        inc = IncrementalPageRank()
        errors: list[Exception] = []

        def worker() -> None:
            try:
                for _ in range(3):
                    inc.update(small_graph)
            except Exception as exc:  # noqa: BLE001 - the assertion
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=60)
        assert not errors
        cold = pagerank(small_graph)
        np.testing.assert_allclose(inc.current.scores, cold.scores, atol=1e-7)

    def test_concurrent_sourcerank_updates_and_reads(self, tiny_dataset):
        import threading

        ds = tiny_dataset
        inc = IncrementalSourceRank()
        kappa = ThrottleVector.zeros(ds.n_sources).updated(ds.spam_sources, 1.0)
        errors: list[Exception] = []
        stop = threading.Event()

        def updater() -> None:
            try:
                for _ in range(3):
                    inc.update(ds.graph, ds.assignment, kappa)
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def reader() -> None:
            try:
                while not stop.is_set():
                    result = inc.current
                    if result is not None:
                        # A torn _last would fail normalization here.
                        assert abs(result.scores.sum() - 1.0) < 1e-9
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        updaters = [threading.Thread(target=updater) for _ in range(4)]
        readers = [threading.Thread(target=reader) for _ in range(2)]
        for t in readers + updaters:
            t.start()
        for t in updaters:
            t.join(timeout=60)
        stop.set()
        for t in readers:
            t.join(timeout=10)
        assert not errors
        cold_sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
        cold = spam_resilient_sourcerank(cold_sg, kappa)
        np.testing.assert_allclose(inc.current.scores, cold.scores, atol=1e-7)

    def test_seed_installs_warm_start(self, small_graph):
        inc = IncrementalPageRank()
        cold = pagerank(small_graph)
        inc.seed(cold)
        assert inc.current is cold
        warm = inc.update(small_graph)
        # Seeded at the fixed point: the re-solve converges immediately.
        assert warm.convergence.iterations <= cold.convergence.iterations

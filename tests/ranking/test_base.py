"""Unit tests for :mod:`repro.ranking.base`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError, NodeIndexError
from repro.ranking.base import ConvergenceInfo, RankingResult

_INFO = ConvergenceInfo(converged=True, iterations=3, residual=1e-12, tolerance=1e-9)


class TestRankingResult:
    def test_l1_normalization(self):
        r = RankingResult(np.array([1.0, 3.0]), _INFO)
        np.testing.assert_allclose(r.scores, [0.25, 0.75])

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            RankingResult(np.array([]), _INFO)

    def test_rejects_nan(self):
        with pytest.raises(GraphError):
            RankingResult(np.array([1.0, np.nan]), _INFO)

    def test_rejects_zero_mass(self):
        with pytest.raises(GraphError):
            RankingResult(np.zeros(3), _INFO)

    def test_scores_read_only(self):
        r = RankingResult(np.array([1.0, 1.0]), _INFO)
        with pytest.raises(ValueError):
            r.scores[0] = 5.0

    def test_order_best_first(self):
        r = RankingResult(np.array([0.1, 0.5, 0.4]), _INFO)
        np.testing.assert_array_equal(r.order(), [1, 2, 0])

    def test_order_ties_by_id(self):
        r = RankingResult(np.array([0.5, 0.5, 0.1]), _INFO)
        np.testing.assert_array_equal(r.order(), [0, 1, 2])

    def test_ranks_inverse_of_order(self):
        r = RankingResult(np.array([0.1, 0.5, 0.4]), _INFO)
        ranks = r.ranks()
        assert ranks[1] == 0  # best item
        assert ranks[0] == 2  # worst item

    def test_percentiles_orientation(self):
        r = RankingResult(np.array([0.1, 0.5, 0.4]), _INFO)
        p = r.percentiles()
        assert p[1] == pytest.approx(100.0)
        assert p[0] == pytest.approx(0.0)

    def test_percentiles_tie_averaging(self):
        r = RankingResult(np.array([0.5, 0.5]), _INFO)
        np.testing.assert_allclose(r.percentiles(), [50.0, 50.0])

    def test_top(self):
        r = RankingResult(np.array([0.1, 0.5, 0.4]), _INFO)
        np.testing.assert_array_equal(r.top(2), [1, 2])

    def test_top_range_check(self):
        r = RankingResult(np.array([1.0]), _INFO)
        with pytest.raises(GraphError):
            r.top(5)

    def test_score_of(self):
        r = RankingResult(np.array([1.0, 3.0]), _INFO)
        assert r.score_of(1) == pytest.approx(0.75)

    def test_score_of_rejects_negative_id(self):
        # Regression: numpy indexing wrapped -1 around to the last item.
        r = RankingResult(np.array([1.0, 3.0]), _INFO)
        with pytest.raises(NodeIndexError, match="out of range"):
            r.score_of(-1)

    def test_score_of_rejects_id_past_end(self):
        r = RankingResult(np.array([1.0, 3.0]), _INFO)
        with pytest.raises(NodeIndexError):
            r.score_of(2)

    def test_score_of_error_carries_node_and_size(self):
        r = RankingResult(np.array([1.0, 3.0]), _INFO)
        with pytest.raises(NodeIndexError) as err:
            r.score_of(-5)
        assert err.value.node == -5
        assert err.value.n_nodes == 2

    def test_percentile_of_matches_percentiles(self):
        r = RankingResult(np.array([0.1, 0.5, 0.4]), _INFO)
        for node in range(r.n):
            assert r.percentile_of(node) == pytest.approx(r.percentiles()[node])

    def test_percentile_of_rejects_out_of_range(self):
        r = RankingResult(np.array([0.1, 0.5, 0.4]), _INFO)
        with pytest.raises(NodeIndexError):
            r.percentile_of(-1)
        with pytest.raises(NodeIndexError):
            r.percentile_of(3)

    def test_repr_mentions_convergence(self):
        r = RankingResult(np.array([1.0]), _INFO, label="x")
        assert "iterations=3" in repr(r)

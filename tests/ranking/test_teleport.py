"""Unit tests for teleport distributions and dangling helpers."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConfigError
from repro.ranking import dangling_vector, personalized_teleport, seeded_teleport, uniform_teleport
from repro.ranking.dangling import apply_self_loops


class TestUniform:
    def test_values(self):
        np.testing.assert_allclose(uniform_teleport(4), 0.25)

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            uniform_teleport(0)


class TestSeeded:
    def test_mass_on_seeds_only(self):
        v = seeded_teleport(5, [1, 3])
        assert v[1] == pytest.approx(0.5)
        assert v[3] == pytest.approx(0.5)
        assert v[[0, 2, 4]].sum() == 0.0

    def test_duplicate_seeds_collapse(self):
        v = seeded_teleport(5, [1, 1, 3])
        assert v[1] == pytest.approx(0.5)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ConfigError):
            seeded_teleport(5, [])

    def test_out_of_range_rejected(self):
        with pytest.raises(ConfigError):
            seeded_teleport(5, [7])


class TestPersonalized:
    def test_normalizes(self):
        v = personalized_teleport(np.array([1.0, 3.0]))
        np.testing.assert_allclose(v, [0.25, 0.75])

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            personalized_teleport(np.array([1.0, -1.0]))

    def test_rejects_zero_mass(self):
        with pytest.raises(ConfigError):
            personalized_teleport(np.zeros(3))

    def test_rejects_nan(self):
        with pytest.raises(ConfigError):
            personalized_teleport(np.array([np.nan]))


class TestDanglingHelpers:
    def test_dangling_vector(self):
        m = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
        np.testing.assert_array_equal(dangling_vector(m), [True, False])

    def test_apply_self_loops(self):
        m = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 0.0]]))
        fixed = apply_self_loops(m)
        assert fixed[0, 0] == 1.0
        assert fixed[1, 1] == 0.0

    def test_apply_self_loops_noop(self):
        m = sp.csr_matrix(np.array([[0.5, 0.5]]))
        assert apply_self_loops(m) is m

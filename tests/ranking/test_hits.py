"""Unit tests for the HITS baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.errors import EmptyGraphError
from repro.graph import PageGraph
from repro.ranking import hits


class TestHits:
    def test_star_authority(self):
        """Spokes -> hub: the hub is the top authority, spokes top hubs."""
        n = 10
        g = PageGraph.from_edges(
            np.arange(1, n), np.zeros(n - 1, dtype=np.int64), n
        )
        result = hits(g)
        assert result.authorities.order()[0] == 0
        assert result.hubs.score_of(0) == pytest.approx(0.0, abs=1e-12)

    def test_bipartite_known_values(self):
        """Complete bipartite 2x3: authorities uniform over the 3."""
        src = np.array([0, 0, 0, 1, 1, 1])
        dst = np.array([2, 3, 4, 2, 3, 4])
        g = PageGraph.from_edges(src, dst, 5)
        result = hits(g)
        auth = result.authorities.scores
        np.testing.assert_allclose(auth[2:], auth[2], atol=1e-9)
        np.testing.assert_allclose(result.hubs.scores[:2], result.hubs.scores[0], atol=1e-9)

    def test_converges_on_random_graph(self, small_graph):
        result = hits(small_graph)
        assert result.authorities.convergence.converged
        assert result.authorities.scores.sum() == pytest.approx(1.0)
        assert result.hubs.scores.sum() == pytest.approx(1.0)

    def test_networkx_agreement(self, small_graph):
        import networkx as nx

        src, dst = small_graph.edge_arrays()
        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(small_graph.n_nodes))
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        their_h, their_a = nx.hits(nxg, max_iter=1000, tol=1e-12)
        ours = hits(small_graph, RankingParams(tolerance=1e-12))
        theirs_a = np.array([their_a[i] for i in range(small_graph.n_nodes)])
        theirs_a /= theirs_a.sum()
        np.testing.assert_allclose(ours.authorities.scores, theirs_a, atol=1e-6)

    def test_hits_vulnerable_to_isolated_farm(self):
        """Section 2's point: a self-contained spam structure captures
        HITS outright (no teleportation to dilute it)."""
        # Legit: a small ring.  Spam: a dense bipartite farm.
        src = [0, 1, 2]
        dst = [1, 2, 0]
        for hub in (10, 11, 12, 13, 14):
            for auth in (20, 21, 22):
                src.append(hub)
                dst.append(auth)
        g = PageGraph.from_edges(np.array(src), np.array(dst), 23)
        result = hits(g)
        # The principal eigenvector locks onto the dense farm.
        assert result.authorities.order()[0] in (20, 21, 22)

    def test_edgeless_rejected(self):
        with pytest.raises(EmptyGraphError):
            hits(PageGraph.empty(3))

"""Jacobi and Gauss–Seidel solver tests: agreement and convergence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.errors import ConvergenceError, GraphError
from repro.graph import transition_matrix
from repro.ranking import (
    gauss_seidel_solve,
    jacobi_solve,
    power_iteration,
    sourcerank,
)


class TestJacobi:
    def test_matches_power_on_page_graph(self, small_graph):
        params = RankingParams()
        m = transition_matrix(small_graph)
        p = power_iteration(m, params)
        j = jacobi_solve(m, params)
        np.testing.assert_allclose(j.scores, p.scores, atol=1e-8)

    def test_matches_power_on_source_graph(self, small_source_graph):
        """Source graphs have self-edges → Jacobi genuinely differs from
        the power method per-iteration, but the fixed point is the same."""
        params = RankingParams()
        p = power_iteration(small_source_graph.matrix, params)
        j = jacobi_solve(small_source_graph.matrix, params)
        np.testing.assert_allclose(j.scores, p.scores, atol=1e-8)

    def test_diagonal_handled_explicitly(self, small_source_graph):
        """Jacobi's update must divide by 1 - alpha * T_ii: feeding it a
        matrix with unit diagonal entries must still converge to the same
        fixed point (the power method handles those rows very differently)."""
        params = RankingParams()
        j = jacobi_solve(small_source_graph.matrix, params)
        assert j.convergence.converged

    def test_strict_convergence_error(self, small_graph):
        with pytest.raises(ConvergenceError):
            jacobi_solve(
                transition_matrix(small_graph), RankingParams(max_iter=1)
            )

    def test_warm_start_reaches_same_fixed_point(self, small_graph):
        params = RankingParams()
        m = transition_matrix(small_graph)
        cold = jacobi_solve(m, params)
        warm = jacobi_solve(m, params, x0=cold.scores)
        np.testing.assert_allclose(warm.scores, cold.scores, atol=1e-8)

    def test_rejects_non_square(self):
        import scipy.sparse as sp

        with pytest.raises(GraphError):
            jacobi_solve(sp.csr_matrix((2, 3)), RankingParams())


class TestGaussSeidel:
    def test_matches_power(self, small_graph):
        params = RankingParams()
        m = transition_matrix(small_graph)
        p = power_iteration(m, params)
        g = gauss_seidel_solve(m, params)
        np.testing.assert_allclose(g.scores, p.scores, atol=1e-8)

    def test_matches_power_on_source_graph(self, small_source_graph):
        params = RankingParams()
        p = power_iteration(small_source_graph.matrix, params)
        g = gauss_seidel_solve(small_source_graph.matrix, params)
        np.testing.assert_allclose(g.scores, p.scores, atol=1e-8)

    def test_converges_in_fewer_sweeps_than_power(self, small_graph):
        """The Gleich et al. [18] observation: GS roughly halves the
        iteration count on web matrices."""
        params = RankingParams()
        m = transition_matrix(small_graph)
        p = power_iteration(m, params)
        g = gauss_seidel_solve(m, params)
        assert g.convergence.iterations < p.convergence.iterations

    def test_strict_convergence_error(self, small_graph):
        with pytest.raises(ConvergenceError):
            gauss_seidel_solve(
                transition_matrix(small_graph), RankingParams(max_iter=1)
            )

    def test_teleport_biasing(self, small_graph):
        params = RankingParams()
        m = transition_matrix(small_graph)
        t = np.zeros(small_graph.n_nodes)
        t[3] = 1.0
        biased = gauss_seidel_solve(m, params, teleport=t)
        uniform = gauss_seidel_solve(m, params)
        assert biased.score_of(3) > uniform.score_of(3)


class TestSolverSelection:
    def test_sourcerank_solver_switch(self, small_source_graph):
        params = RankingParams()
        results = {
            s: sourcerank(small_source_graph, params, solver=s).scores
            for s in ("power", "jacobi", "gauss_seidel")
        }
        np.testing.assert_allclose(results["power"], results["jacobi"], atol=1e-8)
        np.testing.assert_allclose(
            results["power"], results["gauss_seidel"], atol=1e-8
        )

    def test_unknown_solver_rejected(self, small_source_graph):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            sourcerank(small_source_graph, solver="cg")

"""Unit tests for the three public ranking entry points."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.errors import ConfigError, EmptyGraphError
from repro.graph import PageGraph
from repro.ranking import pagerank, sourcerank, spam_resilient_sourcerank
from repro.sources import SourceAssignment, SourceGraph
from repro.throttle import ThrottleVector


class TestPageRank:
    def test_star_graph_center_wins(self):
        """All spokes point at the hub: the hub must rank first."""
        n = 20
        g = PageGraph.from_edges(
            np.arange(1, n), np.zeros(n - 1, dtype=np.int64), n
        )
        result = pagerank(g)
        assert result.order()[0] == 0

    def test_networkx_agreement(self):
        """Cross-check against networkx's reference implementation."""
        import networkx as nx

        gen = np.random.default_rng(11)
        n = 200
        src = gen.integers(0, n, 1500)
        dst = gen.integers(0, n, 1500)
        g = PageGraph.from_edges(src, dst, n)
        ours = pagerank(g, RankingParams(alpha=0.85), dangling="teleport")

        nxg = nx.DiGraph()
        nxg.add_nodes_from(range(n))
        nxg.add_edges_from(zip(src.tolist(), dst.tolist()))
        theirs = nx.pagerank(nxg, alpha=0.85, tol=1e-12, max_iter=500)
        theirs_vec = np.array([theirs[i] for i in range(n)])
        np.testing.assert_allclose(ours.scores, theirs_vec, atol=1e-6)

    def test_empty_graph_rejected(self):
        with pytest.raises(EmptyGraphError):
            pagerank(PageGraph.empty(0))

    def test_unknown_solver_rejected(self, triangle_graph):
        with pytest.raises(ConfigError):
            pagerank(triangle_graph, solver="magic")

    def test_alpha_extremes(self, small_graph):
        """alpha=0 gives the teleport vector back exactly."""
        result = pagerank(small_graph, RankingParams(alpha=0.0))
        np.testing.assert_allclose(result.scores, 1.0 / small_graph.n_nodes)

    def test_default_params_used(self, triangle_graph):
        result = pagerank(triangle_graph)
        assert result.convergence.tolerance == 1e-9

    def test_label(self, triangle_graph):
        assert pagerank(triangle_graph).label == "pagerank"


class TestSourceRank:
    def test_converges(self, small_source_graph):
        result = sourcerank(small_source_graph)
        assert result.convergence.converged
        assert result.n == small_source_graph.n_sources

    def test_popular_source_ranks_high(self):
        """A source every other source links to must rank first."""
        g = PageGraph.from_edges(
            np.array([1, 2, 3, 4, 5]), np.array([0, 0, 0, 0, 0]), 6
        )
        a = SourceAssignment(np.arange(6))
        sg = SourceGraph.from_page_graph(g, a)
        assert sourcerank(sg).order()[0] == 0


class TestSpamResilientSourceRank:
    def test_none_kappa_equals_baseline(self, small_source_graph):
        base = sourcerank(small_source_graph)
        sr = spam_resilient_sourcerank(small_source_graph, None)
        np.testing.assert_allclose(sr.scores, base.scores, atol=1e-12)

    def test_zero_kappa_equals_baseline(self, small_source_graph):
        base = sourcerank(small_source_graph)
        kappa = ThrottleVector.zeros(small_source_graph.n_sources)
        sr = spam_resilient_sourcerank(small_source_graph, kappa)
        np.testing.assert_allclose(sr.scores, base.scores, atol=1e-12)

    def test_array_kappa_accepted(self, small_source_graph):
        kappa = np.zeros(small_source_graph.n_sources)
        kappa[0] = 0.9
        result = spam_resilient_sourcerank(small_source_graph, kappa)
        assert result.convergence.converged

    def test_throttling_reduces_outward_influence(self, small_source_graph):
        """Throttling source s reduces the score of the sources it points
        to (relative to their unthrottled scores)."""
        n = small_source_graph.n_sources
        base = sourcerank(small_source_graph)
        # Pick the source with the most out-edges (excluding self).
        m = small_source_graph.matrix.copy()
        m.setdiag(0)
        m.eliminate_zeros()  # setdiag leaves explicit zeros behind
        out_mass = np.asarray(m.sum(axis=1)).ravel()
        s = int(np.argmax(out_mass))
        beneficiaries = m[s].tocoo().col
        kappa = ThrottleVector.zeros(n).updated([s], 1.0)
        throttled = spam_resilient_sourcerank(small_source_graph, kappa)
        # Average relative change of beneficiaries must be negative.
        rel = throttled.scores[beneficiaries] / base.scores[beneficiaries]
        assert rel.mean() < 1.0

    def test_full_throttle_modes_differ(self, small_source_graph):
        n = small_source_graph.n_sources
        kappa = ThrottleVector.zeros(n).updated([0, 1, 2], 1.0)
        self_mode = spam_resilient_sourcerank(
            small_source_graph, kappa, full_throttle="self"
        )
        dangling_mode = spam_resilient_sourcerank(
            small_source_graph, kappa, full_throttle="dangling"
        )
        # Dangling mode strictly demotes the throttled sources vs self mode.
        assert (
            dangling_mode.scores[[0, 1, 2]] < self_mode.scores[[0, 1, 2]]
        ).all()

    def test_solvers_agree_with_throttling(self, small_source_graph):
        n = small_source_graph.n_sources
        kappa = ThrottleVector.constant(n, 0.3)
        params = RankingParams()
        results = [
            spam_resilient_sourcerank(
                small_source_graph, kappa, params, solver=s
            ).scores
            for s in ("power", "jacobi", "gauss_seidel")
        ]
        np.testing.assert_allclose(results[0], results[1], atol=1e-8)
        np.testing.assert_allclose(results[0], results[2], atol=1e-8)

"""Unit tests for the TrustRank comparator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.errors import ConfigError
from repro.graph import PageGraph
from repro.ranking import pagerank, select_trust_seeds, trustrank


class TestTrustRank:
    def test_trust_flows_from_seeds(self):
        """Chain 0 -> 1 -> 2: seeding 0 gives monotone decaying trust."""
        g = PageGraph.from_edges([0, 1], [1, 2], 3)
        result = trustrank(g, [0])
        s = result.scores
        assert s[0] > s[1] > s[2] > 0

    def test_unreachable_pages_get_zero(self):
        g = PageGraph.from_edges([0, 2], [1, 3], 4)
        result = trustrank(g, [0])
        assert result.score_of(2) == pytest.approx(0.0, abs=1e-12)
        assert result.score_of(3) == pytest.approx(0.0, abs=1e-12)

    def test_uniform_seeds_equal_pagerank(self, small_graph):
        """Seeding every page reduces TrustRank to PageRank exactly."""
        all_pages = np.arange(small_graph.n_nodes)
        t = trustrank(small_graph, all_pages)
        p = pagerank(small_graph)
        np.testing.assert_allclose(t.scores, p.scores, atol=1e-9)

    def test_empty_seeds_rejected(self, small_graph):
        with pytest.raises(ConfigError):
            trustrank(small_graph, [])

    def test_out_of_range_seeds_rejected(self, small_graph):
        with pytest.raises(ConfigError):
            trustrank(small_graph, [10_000])

    def test_honeypot_vulnerability(self):
        """The paper's Section 7 critique: a honeypot that earns links
        from trusted pages inherits their trust directly."""
        # Trusted core: ring 0-1-2.  Honeypot page 3 induces a link from
        # trusted page 0, then forwards to spam target 4.
        g = PageGraph.from_edges(
            np.array([0, 1, 2, 0, 3]), np.array([1, 2, 0, 3, 4]), 5
        )
        result = trustrank(g, [0, 1, 2])
        # The spam target earns substantial trust — comparable to a
        # trusted-core member.
        assert result.score_of(4) > 0.3 * result.score_of(2)


class TestSeedSelection:
    def test_inverse_pagerank_picks_broadcasters(self):
        """A page that links to everything is the top inverse-PR seed."""
        n = 12
        src = [0] * (n - 1) + list(range(1, n - 1))
        dst = list(range(1, n)) + [n - 1] * (n - 2)
        g = PageGraph.from_edges(np.array(src), np.array(dst), n)
        seeds = select_trust_seeds(g, 1)
        assert seeds[0] == 0

    def test_exclusion_models_inspection(self, small_graph):
        first = select_trust_seeds(small_graph, 5)
        excluded = select_trust_seeds(small_graph, 5, exclude=first)
        assert not set(first.tolist()) & set(excluded.tolist())

    def test_range_validation(self, small_graph):
        with pytest.raises(ConfigError):
            select_trust_seeds(small_graph, 0)
        with pytest.raises(ConfigError):
            select_trust_seeds(small_graph, small_graph.n_nodes + 1)

    def test_sorted_output(self, small_graph):
        seeds = select_trust_seeds(small_graph, 10)
        assert (np.diff(seeds) > 0).all()

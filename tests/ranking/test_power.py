"""Unit + property tests for the power-iteration engine."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RankingParams
from repro.errors import ConfigError, ConvergenceError, GraphError
from repro.graph import PageGraph, transition_matrix
from repro.ranking import power_iteration, uniform_teleport
from repro.ranking.power import residual_norm


class TestResidualNorm:
    def test_norms(self):
        d = np.array([3.0, -4.0])
        assert residual_norm(d, "l1") == pytest.approx(7.0)
        assert residual_norm(d, "l2") == pytest.approx(5.0)
        assert residual_norm(d, "linf") == pytest.approx(4.0)

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            residual_norm(np.zeros(2), "l3")


class TestPowerIteration:
    def test_uniform_cycle(self, triangle_graph):
        """A symmetric cycle has the uniform stationary distribution."""
        result = power_iteration(transition_matrix(triangle_graph), RankingParams())
        np.testing.assert_allclose(result.scores, 1 / 3, atol=1e-8)

    def test_fixed_point_property(self, small_graph):
        """The result satisfies its own equation: x = a*M^T x + leak + (1-a)c
        up to normalization."""
        params = RankingParams()
        m = transition_matrix(small_graph)
        result = power_iteration(m, params, dangling="teleport")
        x = result.scores
        c = uniform_teleport(small_graph.n_nodes)
        leak = x[np.asarray(m.sum(axis=1)).ravel() == 0].sum()
        y = params.alpha * (m.T @ x) + params.alpha * leak * c + (1 - params.alpha) * c
        np.testing.assert_allclose(y, x, atol=1e-7)

    def test_convergence_info(self, triangle_graph):
        result = power_iteration(transition_matrix(triangle_graph), RankingParams())
        info = result.convergence
        assert info.converged
        assert info.residual < info.tolerance
        assert len(info.residual_history) == info.iterations

    def test_residual_history_monotone_tail(self, small_graph):
        result = power_iteration(transition_matrix(small_graph), RankingParams())
        hist = np.asarray(result.convergence.residual_history)
        # Power iteration on these matrices contracts geometrically; the
        # last few residuals must be decreasing.
        assert (np.diff(hist[-5:]) < 0).all()

    def test_max_iter_strict_raises(self, small_graph):
        params = RankingParams(max_iter=2, strict=True)
        with pytest.raises(ConvergenceError) as err:
            power_iteration(transition_matrix(small_graph), params)
        assert err.value.iterations == 2

    def test_max_iter_lenient_returns(self, small_graph):
        params = RankingParams(max_iter=2, strict=False)
        result = power_iteration(transition_matrix(small_graph), params)
        assert not result.convergence.converged

    def test_warm_start_converges_faster(self, small_graph):
        # Use the "teleport" dangling strategy so the iteration is truly
        # stochastic — its fixed point then IS the normalized score vector
        # and restarting from it must converge almost immediately.
        params = RankingParams()
        m = transition_matrix(small_graph)
        cold = power_iteration(m, params, dangling="teleport")
        warm = power_iteration(m, params, dangling="teleport", x0=cold.scores)
        assert warm.convergence.iterations < cold.convergence.iterations
        np.testing.assert_allclose(warm.scores, cold.scores, atol=1e-7)

    def test_personalized_teleport_shifts_mass(self, small_graph):
        params = RankingParams()
        t = np.zeros(small_graph.n_nodes)
        t[0] = 1.0
        biased = power_iteration(transition_matrix(small_graph), params, teleport=t)
        uniform = power_iteration(transition_matrix(small_graph), params)
        assert biased.score_of(0) > uniform.score_of(0)

    def test_callback_invoked(self, triangle_graph):
        seen = []
        power_iteration(
            transition_matrix(triangle_graph),
            RankingParams(),
            callback=lambda i, r: seen.append((i, r)),
        )
        assert seen and seen[0][0] == 1

    def test_rejects_non_square(self):
        with pytest.raises(GraphError):
            power_iteration(sp.csr_matrix((2, 3)), RankingParams())

    def test_rejects_bad_teleport_length(self, triangle_graph):
        with pytest.raises(GraphError):
            power_iteration(
                transition_matrix(triangle_graph),
                RankingParams(),
                teleport=np.ones(5) / 5,
            )

    def test_rejects_bad_x0_length(self, triangle_graph):
        with pytest.raises(GraphError):
            power_iteration(
                transition_matrix(triangle_graph), RankingParams(), x0=np.ones(7)
            )


class TestKernelAgreement:
    def test_chunked_matches_scipy(self, small_graph):
        params = RankingParams()
        m = transition_matrix(small_graph)
        a = power_iteration(m, params, kernel="scipy")
        b = power_iteration(m, params, kernel="chunked")
        np.testing.assert_allclose(a.scores, b.scores, atol=1e-10)

    def test_unknown_kernel_rejected(self, triangle_graph):
        with pytest.raises(ConfigError):
            power_iteration(
                transition_matrix(triangle_graph), RankingParams(), kernel="gpu"
            )


class TestDanglingStrategies:
    def test_self_strategy_keeps_mass(self):
        g = PageGraph.from_edges([0], [1], 2)  # node 1 dangling
        result = power_iteration(
            transition_matrix(g), RankingParams(), dangling="self"
        )
        # With a self-loop, node 1 accumulates; with leak it would not.
        assert result.score_of(1) > result.score_of(0)

    def test_teleport_strategy_stochasticizes(self):
        g = PageGraph.from_edges([0], [1], 2)
        result = power_iteration(
            transition_matrix(g), RankingParams(), dangling="teleport"
        )
        assert result.convergence.converged

    def test_strategies_differ(self):
        g = PageGraph.from_edges([0, 1, 2], [1, 2, 0], 4)  # node 3 dangling
        params = RankingParams()
        m = transition_matrix(g)
        rs = {
            s: power_iteration(m, params, dangling=s).scores
            for s in ("linear", "teleport", "self")
        }
        assert not np.allclose(rs["linear"], rs["self"])

    def test_unknown_strategy_rejected(self, triangle_graph):
        with pytest.raises(ConfigError):
            power_iteration(
                transition_matrix(triangle_graph),
                RankingParams(),
                dangling="bogus",
            )

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=25, deadline=None)
    def test_scores_are_distribution(self, seed):
        """Property: output is always a probability distribution."""
        gen = np.random.default_rng(seed)
        n = int(gen.integers(2, 40))
        g = PageGraph.from_edges(
            gen.integers(0, n, 3 * n), gen.integers(0, n, 3 * n), n
        )
        result = power_iteration(transition_matrix(g), RankingParams())
        assert result.scores.min() >= 0
        assert result.scores.sum() == pytest.approx(1.0)

"""Tests for the Section 4 closed forms — including the paper's own
calibration numbers and agreement with simulation."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.analysis import closed_form as cf
from repro.config import RankingParams
from repro.errors import ConfigError
from repro.ranking import spam_resilient_sourcerank
from repro.sources import SourceGraph


class TestSelfTuningBoost:
    def test_paper_values_fig2(self):
        """Fig. 2's quoted points at alpha=0.85."""
        assert cf.self_tuning_boost(0.0, 0.85) == pytest.approx(1 / 0.15, rel=1e-9)
        assert cf.self_tuning_boost(0.80, 0.85) == pytest.approx(320 / 150, rel=1e-3)
        assert cf.self_tuning_boost(0.90, 0.85) == pytest.approx(1.5666, rel=1e-3)
        assert cf.self_tuning_boost(1.0, 0.85) == pytest.approx(1.0)

    def test_range_5_to_10_for_typical_alpha(self):
        """'For typical values of alpha — from 0.80 to 0.90 — a source may
        increase its score from 5 to 10 times.'"""
        assert cf.self_tuning_boost(0.0, 0.80) == pytest.approx(5.0)
        assert cf.self_tuning_boost(0.0, 0.90) == pytest.approx(10.0)

    def test_monotone_decreasing_in_kappa(self):
        k = np.linspace(0, 1, 11)
        b = cf.self_tuning_boost(k, 0.85)
        assert (np.diff(b) < 0).all()

    def test_rejects_bad_kappa(self):
        with pytest.raises(ConfigError):
            cf.self_tuning_boost(1.5, 0.85)

    def test_rejects_bad_alpha(self):
        with pytest.raises(ConfigError):
            cf.self_tuning_boost(0.5, 1.0)


class TestSigmaSingleSource:
    def test_maximized_at_self_weight_one(self):
        w = np.linspace(0, 1, 21)
        sigma = cf.sigma_single_source(w, z=0.001, alpha=0.85, n_sources=1000)
        assert sigma.argmax() == 20

    def test_optimal_matches_formula(self):
        opt = cf.optimal_sigma_single_source(z=0.001, alpha=0.85, n_sources=1000)
        assert opt == pytest.approx(
            float(cf.sigma_single_source(1.0, 0.001, 0.85, 1000))
        )

    def test_simulation_agreement(self):
        """The closed form must match an actual SR-SourceRank run on the
        Figure 1(a) configuration."""
        alpha = 0.85
        n = 50
        # Source 0: self-weight w, rest spread to a background ring.
        for w in (0.0, 0.4, 0.9):
            rows, cols, vals = [0, 0], [0, 1], [w, 1.0 - w]
            if w == 1.0:
                rows, cols, vals = [0], [0], [1.0]
            for j in range(1, n):
                rows.append(j)
                cols.append(1 + (j % (n - 1)))
                vals.append(1.0)
            m = sp.csr_matrix((vals, (rows, cols)), shape=(n, n))
            sg = SourceGraph.from_weight_matrix(m)
            result = spam_resilient_sourcerank(sg, None, RankingParams(alpha=alpha))
            # z = 0: nothing links to source 0.  The simulation returns the
            # L1-normalized sigma, so rescale the closed form by the exact
            # total mass of the unnormalized linear-form solution.
            predicted = cf.sigma_single_source(w, z=0.0, alpha=alpha, n_sources=n)
            assert result.score_of(0) == pytest.approx(
                float(predicted) / _total_mass(m, alpha, n), rel=1e-4
            )


def _total_mass(m: sp.csr_matrix, alpha: float, n: int) -> float:
    """Unnormalized total stationary mass of the linear-form solution."""
    import scipy.sparse.linalg as spla

    b = np.full(n, (1 - alpha) / n)
    x = spla.spsolve(sp.identity(n, format="csc") - alpha * m.T.tocsc(), b)
    return float(x.sum())


class TestColluders:
    def test_eq5_linear_in_x(self):
        x = np.array([1, 2, 4, 8])
        d = cf.colluding_contribution(x, kappa=0.5, alpha=0.85, n_sources=1000)
        np.testing.assert_allclose(d / x, d[0], rtol=1e-12)

    def test_higher_kappa_contributes_less(self):
        lo = cf.colluding_contribution(10, 0.1, 0.85, 1000)
        hi = cf.colluding_contribution(10, 0.9, 0.85, 1000)
        assert hi < lo

    def test_sigma_with_colluders_baseline(self):
        """x=0 must reduce to the no-attack optimal score."""
        s0 = cf.sigma_with_colluders(0, 0.5, 0.85, 1000)
        expected = cf.optimal_sigma_single_source(0.0, 0.85, 1000)
        assert float(s0) == pytest.approx(expected)

    def test_equivalence_identity(self):
        """x'(kappa -> kappa) must be exactly x."""
        assert float(cf.equivalent_colluders_ratio(0.3, 0.3, 0.85)) == pytest.approx(1.0)

    def test_equivalence_consistency_with_sigma(self):
        """sigma(x, kappa) == sigma(x * ratio, kappa') by construction."""
        alpha, kappa, kp = 0.85, 0.2, 0.7
        ratio = float(cf.equivalent_colluders_ratio(kappa, kp, alpha))
        s1 = float(cf.sigma_with_colluders(12.0, kappa, alpha, 1000))
        s2 = float(cf.sigma_with_colluders(12.0 * ratio, kp, alpha, 1000))
        assert s1 == pytest.approx(s2, rel=1e-12)

    def test_paper_values_fig3(self):
        """'23% more sources at kappa'=0.6, 60% at 0.8, 135% at 0.9,
        1485% at 0.99' (alpha = 0.85)."""
        pct = cf.additional_sources_pct(np.array([0.6, 0.8, 0.9, 0.99]), 0.85)
        np.testing.assert_allclose(pct, [22.5, 60.0, 135.0, 1485.0], rtol=1e-3)

    def test_fully_throttled_rejected(self):
        with pytest.raises(ConfigError):
            cf.equivalent_colluders_ratio(0.0, 1.0, 0.85)


class TestPageRankSide:
    def test_boost_linear_in_tau(self):
        tau = np.array([1, 10, 100])
        d = cf.pagerank_boost(tau, 0.85, 10_000)
        np.testing.assert_allclose(d / tau, d[0], rtol=1e-12)

    def test_amplification_is_1_plus_tau_alpha(self):
        """With z=0: pi(tau)/pi(0) = 1 + tau * alpha."""
        amp = cf.pagerank_amplification(np.array([100]), 0.85, 10**6)
        assert amp[0] == pytest.approx(86.0)

    def test_paper_claim_factor_100_at_tau_100(self):
        """'the PageRank score of the target page jumps by a factor of
        nearly 100 times with only 100 colluding pages'."""
        amp = float(cf.pagerank_amplification(np.array([100]), 0.85, 10**6)[0])
        assert 80 <= amp <= 100

    def test_negative_tau_rejected(self):
        with pytest.raises(ConfigError):
            cf.pagerank_boost(np.array([-1]), 0.85, 100)


class TestScenarioAmplifications:
    def test_scenario1_flat_in_tau(self):
        amp = cf.srsr_amplification_scenario1(np.array([1, 10, 1000]), 0.0, 0.85)
        assert (amp == amp[0]).all()
        assert amp[0] == pytest.approx(1 / 0.15, rel=1e-9)

    def test_scenario1_tau_zero_is_one(self):
        assert cf.srsr_amplification_scenario1(np.array([0]), 0.5, 0.85)[0] == 1.0

    def test_scenario2_capped_at_two(self):
        """'the maximum influence ... is capped at 2 times the original
        score for several values of kappa'."""
        for kappa in (0.0, 0.3, 0.6, 0.9):
            amp = float(
                cf.srsr_amplification_scenario2(
                    np.array([10**6]), kappa, 0.85, 10_000
                )[0]
            )
            assert 1.0 < amp <= 2.0

    def test_scenario3_grows_but_suppressed_by_kappa(self):
        x = np.array([1, 10, 100])
        lo = cf.srsr_amplification_scenario3(x, 0.0, 0.85, 10_000)
        hi = cf.srsr_amplification_scenario3(x, 0.99, 0.85, 10_000)
        assert (np.diff(lo) > 0).all()
        assert (hi < lo).all()

    def test_scenario3_vs_pagerank_shape(self):
        """PageRank amplification dominates SR-SourceRank at every tau."""
        tau = np.array([1, 10, 100, 1000])
        pr = cf.pagerank_amplification(tau, 0.85, 10**5)
        sr = cf.srsr_amplification_scenario3(tau, 0.9, 0.85, 10**4)
        assert (pr[1:] > sr[1:]).all()

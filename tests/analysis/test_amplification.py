"""Unit tests for empirical amplification and resilience metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    ResilienceRecord,
    measure_amplification,
    percentile_increase,
    resilience_summary,
    score_amplification,
)
from repro.errors import GraphError
from repro.ranking.base import ConvergenceInfo, RankingResult

_INFO = ConvergenceInfo(True, 1, 0.0, 1e-9)


def _result(scores):
    return RankingResult(np.asarray(scores, dtype=np.float64), _INFO)


class TestScoreAmplification:
    def test_basic(self):
        before = _result([1.0, 1.0, 2.0])
        after = _result([2.0, 1.0, 1.0])
        # before normalized: 0.25; after normalized: 0.5.
        assert score_amplification(before, after, 0) == pytest.approx(2.0)

    def test_after_may_have_more_items(self):
        before = _result([1.0, 1.0])
        after = _result([1.0, 1.0, 2.0])
        assert score_amplification(before, after, 0) == pytest.approx(0.5)

    def test_out_of_range_target(self):
        with pytest.raises(GraphError):
            score_amplification(_result([1.0]), _result([1.0]), 5)


class TestMeasureAmplification:
    def test_record_fields(self):
        before = _result([1.0, 2.0, 4.0])
        after = _result([4.0, 2.0, 1.0])
        rec = measure_amplification(before, after, 0)
        assert rec.rank_before == 2
        assert rec.rank_after == 0
        assert rec.percentile_before == pytest.approx(0.0)
        assert rec.percentile_after == pytest.approx(100.0)
        assert rec.percentile_gain == pytest.approx(100.0)
        assert rec.amplification == pytest.approx(
            (4 / 7) / (1 / 7)
        )


class TestResilience:
    def _records(self):
        before = _result([1.0, 2.0, 4.0])
        after = _result([4.0, 2.0, 1.0])
        return [
            measure_amplification(before, after, 0),
            measure_amplification(before, after, 1),
        ]

    def test_percentile_increase_mean(self):
        recs = self._records()
        # target 0: +100; target 1: 0.
        assert percentile_increase(recs) == pytest.approx(50.0)

    def test_summary_record(self):
        rec = resilience_summary("pagerank", 10, self._records())
        assert isinstance(rec, ResilienceRecord)
        assert rec.case == 10
        assert rec.n_targets == 2
        assert rec.mean_percentile_gain == pytest.approx(50.0)
        assert rec.as_dict()["label"] == "pagerank"

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            percentile_increase([])
        with pytest.raises(GraphError):
            resilience_summary("x", 1, [])

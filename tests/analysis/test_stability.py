"""Unit tests for the stability analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import adversarial_impact, random_perturbation_stability
from repro.config import RankingParams
from repro.errors import ConfigError


class TestRandomPerturbation:
    def test_small_perturbation_is_stable(self, small_graph, rng):
        report = random_perturbation_stability(
            small_graph, n_edges=10, rng=np.random.default_rng(1)
        )
        assert report.n_edges_added == 10
        assert report.spearman > 0.95
        assert report.top_100_overlap > 0.8

    def test_more_edges_less_stable(self, small_graph):
        lo = random_perturbation_stability(
            small_graph, 5, np.random.default_rng(2)
        )
        hi = random_perturbation_stability(
            small_graph, 2000, np.random.default_rng(2)
        )
        assert hi.spearman < lo.spearman

    def test_validation(self, small_graph):
        with pytest.raises(ConfigError):
            random_perturbation_stability(small_graph, 0, np.random.default_rng(0))


class TestAdversarialImpact:
    def test_targeted_budget_moves_target(self, small_graph):
        """The paper's contrast: the same budget that barely perturbs the
        whole ranking when random rockets one target when concentrated."""
        from repro.ranking import pagerank

        before = pagerank(small_graph)
        # A bottom-half target.
        target = int(before.order()[-10])
        random_report = random_perturbation_stability(
            small_graph, 100, np.random.default_rng(3), before=before
        )
        adv_report, gain = adversarial_impact(
            small_graph, target, 100, before=before
        )
        # Whole-ranking metrics stay high in both regimes...
        assert adv_report.spearman > 0.9
        # ...but the adversarial target jumps dramatically while random
        # perturbation moves the average item only slightly.
        assert gain > 50
        assert random_report.mean_percentile_shift < 10

    def test_gain_grows_with_budget(self, small_graph):
        from repro.ranking import pagerank

        before = pagerank(small_graph)
        target = int(before.order()[-5])
        _, small_gain = adversarial_impact(small_graph, target, 5, before=before)
        _, big_gain = adversarial_impact(small_graph, target, 500, before=before)
        assert big_gain > small_gain

    def test_validation(self, small_graph):
        with pytest.raises(ConfigError):
            adversarial_impact(small_graph, 0, 0)
        with pytest.raises(ConfigError):
            adversarial_impact(small_graph, 10**9, 5)

"""Formatting/coverage tests for driver result objects and misc paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.eval import run_fig4
from repro.eval.experiments import Fig5Result
from repro.graph import transition_matrix
from repro.ranking.power import PowerOperator


class TestFig4Formatting:
    def test_empirical_table_included(self):
        result = run_fig4(1, taus=np.array([0, 5]), empirical=True)
        text = result.format()
        assert "empirical (simulated attacks)" in text
        assert "tau=5" in text

    def test_analytic_only_omits_empirical(self):
        result = run_fig4(2, taus=np.array([0, 5]))
        assert "empirical" not in result.format()


class TestFig5Helpers:
    def test_mass_weighted_bucket(self):
        result = Fig5Result(
            dataset="x",
            n_buckets=4,
            n_spam=4,
            n_seeds=1,
            baseline_counts=np.array([4, 0, 0, 0]),
            throttled_counts=np.array([0, 0, 0, 4]),
        )
        base, throttled = result.mass_weighted_bucket()
        assert base == pytest.approx(0.0)
        assert throttled == pytest.approx(3.0)

    def test_empty_counts_do_not_divide_by_zero(self):
        result = Fig5Result(
            dataset="x",
            n_buckets=2,
            n_spam=0,
            n_seeds=0,
            baseline_counts=np.zeros(2, dtype=np.int64),
            throttled_counts=np.zeros(2, dtype=np.int64),
        )
        base, throttled = result.mass_weighted_bucket()
        assert base == 0.0 and throttled == 0.0


class TestPowerOperator:
    def test_context_manager_closes(self, triangle_graph):
        m = transition_matrix(triangle_graph)
        with PowerOperator(m, 0.85, np.full(3, 1 / 3)) as op:
            y = op.step(np.full(3, 1 / 3))
        assert y.sum() == pytest.approx(1.0)

    def test_rmatvec_kernels_agree(self, small_graph, rng):
        m = transition_matrix(small_graph)
        x = rng.random(small_graph.n_nodes)
        t = np.full(small_graph.n_nodes, 1 / small_graph.n_nodes)
        with PowerOperator(m, 0.85, t, kernel="scipy") as a, PowerOperator(
            m, 0.85, t, kernel="chunked"
        ) as b:
            np.testing.assert_allclose(a.rmatvec(x), b.rmatvec(x), atol=1e-12)

    def test_n_property(self, triangle_graph):
        m = transition_matrix(triangle_graph)
        with PowerOperator(m, 0.85, np.full(3, 1 / 3)) as op:
            assert op.n == 3

    def test_rejects_dense_matrix(self):
        from repro.errors import GraphError

        with pytest.raises(GraphError):
            PowerOperator(np.eye(3), 0.85, np.full(3, 1 / 3))

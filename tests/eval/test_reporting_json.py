"""Unit tests for the JSON result serialization."""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np
import pytest

from repro.eval import from_json, to_json


class TestToJson:
    def test_roundtrip_plain(self, tmp_path):
        rows = [{"a": 1, "b": 2.5}, {"a": 2, "b": 0.5}]
        path = tmp_path / "r.json"
        to_json(rows, path, meta={"seed": 2007})
        loaded, meta = from_json(path)
        assert loaded == rows
        assert meta == {"seed": 2007}

    def test_numpy_types_serialized(self):
        rows = [
            {
                "i": np.int64(3),
                "f": np.float64(1.5),
                "arr": np.array([1, 2, 3]),
            }
        ]
        text = to_json(rows)
        payload = json.loads(text)
        assert payload["rows"][0] == {"i": 3, "f": 1.5, "arr": [1, 2, 3]}

    def test_from_json_accepts_raw_text(self):
        text = to_json([{"x": 1}])
        rows, meta = from_json(text)
        assert rows == [{"x": 1}]
        assert meta == {}

    def test_empty_rows(self, tmp_path):
        path = tmp_path / "empty.json"
        to_json([], path)
        rows, meta = from_json(path)
        assert rows == []

    def test_deterministic_output(self):
        rows = [{"b": 2, "a": 1}]
        assert to_json(rows) == to_json([{"a": 1, "b": 2}])

"""Tests for the run-everything manifest (tiny configuration)."""

from __future__ import annotations

import json

import pytest

from repro.config import ExperimentParams, ThrottleParams
from repro.eval import from_json, run_all


@pytest.fixture(scope="module")
def manifest(tmp_path_factory):
    out = tmp_path_factory.mktemp("artifacts")
    params = ExperimentParams(
        seed=31,
        n_targets=2,
        cases=(1, 20),
        throttle=ThrottleParams(top_fraction=16 / 128),
        seed_fraction=0.25,
        n_buckets=10,
    )
    return run_all(
        out,
        params=params,
        datasets=("tiny",),
        empirical=False,
    )


class TestRunAll:
    def test_all_artifacts_present(self, manifest):
        expected = {
            "table1",
            "fig2",
            "fig3",
            "fig4_scenario1",
            "fig4_scenario2",
            "fig4_scenario3",
            "fig5",
            "fig6_tiny",
            "fig7_tiny",
        }
        assert set(manifest.artifacts) == expected

    def test_files_written(self, manifest):
        from pathlib import Path

        for record in manifest.records:
            assert Path(record.text_path).exists()
            assert Path(record.json_path).exists()

    def test_json_rows_loadable(self, manifest):
        for record in manifest.records:
            rows, meta = from_json(record.json_path)
            assert rows, record.artifact
            assert meta["artifact"] == record.artifact
            assert meta["seed"] == manifest.seed

    def test_manifest_file(self, manifest):
        from pathlib import Path

        rows, meta = from_json(Path(manifest.out_dir) / "manifest.json")
        assert len(rows) == len(manifest.records)
        assert meta["total_seconds"] == pytest.approx(
            manifest.total_seconds(), rel=1e-6
        )

    def test_fig5_rows_shape(self, manifest):
        record = next(r for r in manifest.records if r.artifact == "fig5")
        rows, _ = from_json(record.json_path)
        assert len(rows) == 10  # n_buckets
        assert set(rows[0]) == {"bucket", "baseline", "throttled"}

    def test_fig67_rows_shape(self, manifest):
        record = next(r for r in manifest.records if r.artifact == "fig6_tiny")
        rows, _ = from_json(record.json_path)
        assert [r["case"] for r in rows] == [1, 20]
        assert all(
            r["pagerank_pct_gain"] > r["srsr_pct_gain"] for r in rows
        )

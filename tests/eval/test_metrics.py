"""Unit tests for eval metrics: percentiles, buckets, correlation, tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.eval import (
    bucket_counts,
    format_series,
    format_table,
    kendall_tau,
    percentile_gain,
    percentile_of,
    spam_bucket_distribution,
    spearman_rho,
    top_k_overlap,
)
from repro.eval.buckets import bucket_assignment
from repro.ranking.base import ConvergenceInfo, RankingResult

_INFO = ConvergenceInfo(True, 1, 0.0, 1e-9)


def _result(scores):
    return RankingResult(np.asarray(scores, dtype=np.float64), _INFO)


class TestPercentile:
    def test_best_item(self):
        r = _result([1.0, 5.0, 3.0])
        assert percentile_of(r, 1) == pytest.approx(100.0)

    def test_gain(self):
        before = _result([1.0, 5.0, 3.0])
        after = _result([5.0, 1.0, 3.0])
        assert percentile_gain(before, after, 0) == pytest.approx(100.0)

    def test_range_check(self):
        with pytest.raises(GraphError):
            percentile_of(_result([1.0]), 5)


class TestBuckets:
    def test_assignment_balanced(self):
        r = _result(np.arange(1, 101, dtype=np.float64))
        buckets = bucket_assignment(r, 20)
        counts = np.bincount(buckets)
        assert (counts == 5).all()

    def test_top_item_in_bucket_zero(self):
        scores = np.arange(1, 101, dtype=np.float64)
        r = _result(scores)
        buckets = bucket_assignment(r, 20)
        assert buckets[99] == 0  # highest score
        assert buckets[0] == 19  # lowest score

    def test_uneven_split(self):
        r = _result(np.arange(1, 8, dtype=np.float64))
        buckets = bucket_assignment(r, 3)
        counts = np.bincount(buckets)
        assert counts.sum() == 7
        assert counts.max() - counts.min() <= 1

    def test_too_many_buckets_rejected(self):
        with pytest.raises(GraphError):
            bucket_assignment(_result([1.0, 2.0]), 5)

    def test_bucket_counts(self):
        r = _result(np.arange(1, 101, dtype=np.float64))
        counts = bucket_counts(r, members=np.array([99, 98, 0]), n_buckets=20)
        assert counts[0] == 2  # two top scorers
        assert counts[19] == 1  # the worst item
        assert counts.sum() == 3

    def test_member_range_check(self):
        with pytest.raises(GraphError):
            bucket_counts(_result(np.ones(10)), np.array([50]), 2)

    def test_distribution_requires_same_n(self):
        with pytest.raises(GraphError):
            spam_bucket_distribution(
                _result(np.ones(10)), _result(np.ones(12)), np.array([0]), 2
            )

    def test_distribution_keys(self):
        r = _result(np.arange(1, 41, dtype=np.float64))
        d = spam_bucket_distribution(r, r, np.array([0, 1]), 4)
        assert set(d) == {"baseline", "throttled"}
        np.testing.assert_array_equal(d["baseline"], d["throttled"])


class TestCorrelation:
    def test_identical_rankings(self):
        r = _result(np.arange(1, 21, dtype=np.float64))
        assert spearman_rho(r, r) == pytest.approx(1.0)
        assert kendall_tau(r, r) == pytest.approx(1.0)

    def test_reversed_rankings(self):
        a = _result(np.arange(1, 21, dtype=np.float64))
        b = _result(np.arange(20, 0, -1, dtype=np.float64))
        assert spearman_rho(a, b) == pytest.approx(-1.0)
        assert kendall_tau(a, b) == pytest.approx(-1.0)

    def test_top_k_overlap(self):
        a = _result([4.0, 3.0, 2.0, 1.0])
        b = _result([4.0, 3.0, 1.0, 2.0])
        assert top_k_overlap(a, b, 2) == pytest.approx(1.0)
        assert top_k_overlap(a, b, 3) == pytest.approx(0.5)

    def test_mismatched_sizes_rejected(self):
        with pytest.raises(GraphError):
            spearman_rho(_result([1.0]), _result([1.0, 2.0]))

    def test_top_k_range(self):
        with pytest.raises(GraphError):
            top_k_overlap(_result([1.0]), _result([1.0]), 5)


class TestReporting:
    def test_format_table_alignment(self):
        text = format_table(
            [{"a": 1, "b": 2.5}, {"a": 100, "b": 0.125}], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len({len(line) for line in lines[1:]}) == 1  # aligned

    def test_format_table_empty(self):
        assert format_table([], title="t") == "t"

    def test_format_series(self):
        text = format_series([1, 2], {"y": [0.5, 0.6]}, x_name="x")
        assert "x" in text and "y" in text
        assert "0.5" in text

    def test_large_and_tiny_floats_use_scientific(self):
        text = format_table([{"v": 1e-9}])
        assert "e-09" in text

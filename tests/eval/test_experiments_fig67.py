"""Tests for the Fig. 6/7 drivers on the tiny dataset."""

from __future__ import annotations

import pytest

from repro.config import ExperimentParams, ThrottleParams
from repro.eval import run_fig6, run_fig7


@pytest.fixture(scope="module")
def tiny_params():
    return ExperimentParams(
        seed=23,
        n_targets=2,
        cases=(1, 50),
        throttle=ThrottleParams(top_fraction=16 / 128),
        seed_fraction=0.25,
        n_buckets=10,
    )


@pytest.fixture(scope="module")
def fig6(tiny_params):
    return run_fig6("tiny", tiny_params)


@pytest.fixture(scope="module")
def fig7(tiny_params):
    return run_fig7("tiny", tiny_params)


class TestFig6Driver:
    def test_cases_covered(self, fig6, tiny_params):
        assert fig6.cases == tiny_params.cases
        assert len(fig6.pagerank_records) == len(tiny_params.cases)
        assert len(fig6.srsr_records) == len(tiny_params.cases)

    def test_pagerank_dominates(self, fig6):
        for pr, sr in zip(fig6.pagerank_records, fig6.srsr_records):
            assert pr.mean_percentile_gain > sr.mean_percentile_gain

    def test_gains_grow_with_effort(self, fig6):
        pr = [r.mean_percentile_gain for r in fig6.pagerank_records]
        assert pr[-1] > pr[0]

    def test_records_carry_target_counts(self, fig6, tiny_params):
        for rec in fig6.pagerank_records:
            assert rec.n_targets == tiny_params.n_targets

    def test_format(self, fig6):
        text = fig6.format()
        assert "Fig 6" in text
        assert "pagerank_pct_gain" in text
        assert "A(1)" in text

    def test_deterministic(self, tiny_params):
        again = run_fig6("tiny", tiny_params)
        for a, b in zip(again.pagerank_records, run_fig6("tiny", tiny_params).pagerank_records):
            assert a.mean_percentile_gain == b.mean_percentile_gain


class TestFig7Driver:
    def test_pagerank_dominates(self, fig7):
        for pr, sr in zip(fig7.pagerank_records, fig7.srsr_records):
            assert pr.mean_percentile_gain > sr.mean_percentile_gain

    def test_cross_source_weaker_or_similar_to_intra(self, fig6, fig7):
        """Section 4.2: at high effort, cross-source collusion buys the
        spammer no more than intra-source self-tuning."""
        sr6 = fig6.srsr_records[-1].mean_percentile_gain
        sr7 = fig7.srsr_records[-1].mean_percentile_gain
        assert sr7 <= sr6 + 5  # small-sample slack

    def test_format(self, fig7):
        assert "Fig 7" in fig7.format()

"""Tests for the per-figure experiment drivers (small/fast configurations)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    ExperimentParams,
    RankingParams,
    SpamProximityParams,
    ThrottleParams,
)
from repro.errors import ConfigError
from repro.eval import run_fig2, run_fig3, run_fig4, run_fig5
from repro.eval.experiments import run_table1


@pytest.fixture(scope="module")
def tiny_params():
    """Experiment params scaled for the tiny dataset."""
    return ExperimentParams(
        seed=11,
        n_targets=2,
        cases=(1, 10),
        # Tiny has 8 spam of ~128 sources; throttle budget 2x spam count.
        throttle=ThrottleParams(top_fraction=16 / 128),
        seed_fraction=0.25,
        n_buckets=10,
    )


class TestFig2:
    def test_curves_cover_alphas(self):
        r = run_fig2(alphas=(0.80, 0.85))
        assert set(r.curves) == {0.80, 0.85}

    def test_kappa_zero_endpoint(self):
        r = run_fig2(alphas=(0.85,))
        assert r.curves[0.85][0] == pytest.approx(1 / 0.15)

    def test_kappa_one_endpoint(self):
        r = run_fig2(alphas=(0.85,))
        assert r.curves[0.85][-1] == pytest.approx(1.0)

    def test_format_output(self):
        text = run_fig2().format()
        assert "Fig 2" in text
        assert "alpha=0.85" in text


class TestFig3:
    def test_analytic_paper_points(self):
        r = run_fig3(kappa_primes=np.array([0.6, 0.8, 0.9, 0.99]))
        np.testing.assert_allclose(
            r.analytic_pct, [22.5, 60.0, 135.0, 1485.0], rtol=1e-3
        )

    def test_empirical_matches_analytic(self):
        """The simulated extra-source percentages must track the closed
        form within a few percent."""
        r = run_fig3(
            kappa_primes=np.array([0.4, 0.8]),
            empirical=True,
            params=RankingParams(tolerance=1e-12),
        )
        assert r.empirical_pct is not None
        np.testing.assert_allclose(r.empirical_pct, r.analytic_pct, rtol=0.08)

    def test_format_mentions_alpha(self):
        assert "alpha=0.85" in run_fig3().format()


class TestFig4:
    def test_scenario_validation(self):
        with pytest.raises(ConfigError):
            run_fig4(7)

    def test_pagerank_unbounded_sr_capped_scenario1(self):
        r = run_fig4(1, taus=np.array([0, 1, 10, 100, 1000]))
        assert r.pagerank_curve[-1] > 100
        for curve in r.srsr_curves.values():
            assert curve.max() <= 1 / 0.15 + 1e-9

    def test_scenario2_cap(self):
        r = run_fig4(2, kappas=(0.0, 0.5, 0.9))
        for curve in r.srsr_curves.values():
            assert curve.max() <= 2.0

    def test_scenario3_kappa_ordering(self):
        r = run_fig4(3, kappas=(0.0, 0.99))
        # Higher kappa => strictly weaker amplification for tau > 0.
        assert (r.srsr_curves[0.99][1:] < r.srsr_curves[0.0][1:]).all()

    def test_empirical_directional(self):
        """Simulated attacks: PageRank amplification must dominate
        SR-SourceRank amplification at every tau."""
        r = run_fig4(1, taus=np.array([10, 100]), empirical=True)
        assert r.empirical is not None
        for tau in (10, 100):
            assert r.empirical["pagerank"][tau] > r.empirical["srsr"][tau]

    def test_format_lists_series(self):
        text = run_fig4(1).format()
        assert "pagerank" in text and "srsr(k=0)" in text


class TestFig5:
    def test_tiny_run_demotes_spam(self, tiny_params):
        r = run_fig5("tiny", tiny_params)
        base_mean, throttled_mean = r.mass_weighted_bucket()
        assert throttled_mean > base_mean
        assert r.baseline_counts.sum() == r.n_spam
        assert r.throttled_counts.sum() == r.n_spam

    def test_format(self, tiny_params):
        text = run_fig5("tiny", tiny_params).format()
        assert "Fig 5" in text and "baseline_sourcerank" in text


class TestTable1:
    def test_rows_for_requested_datasets(self):
        r = run_table1(names=("uk2002_like",))
        assert len(r.rows) == 1
        row = r.rows[0]
        assert row["dataset"] == "uk2002_like"
        assert row["paper_sources"] == 98_221
        assert row["sources"] > 0
        assert row["edges"] > 0

    def test_format(self):
        text = run_table1(names=("uk2002_like",)).format()
        assert "Table 1" in text

"""Unit + property tests for the HPC matvec kernels."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigError, GraphError
from repro.parallel import chunked_matvec, chunked_rmatvec, effective_workers


@pytest.fixture(scope="module")
def matrix():
    gen = np.random.default_rng(3)
    return sp.random(400, 400, density=0.02, random_state=3, format="csr")


class TestChunkedRmatvec:
    def test_matches_scipy(self, matrix, rng):
        x = rng.random(matrix.shape[0])
        expected = matrix.T @ x
        np.testing.assert_allclose(chunked_rmatvec(matrix, x), expected, atol=1e-12)

    def test_small_chunks(self, matrix, rng):
        x = rng.random(matrix.shape[0])
        out = chunked_rmatvec(matrix, x, chunk_rows=7)
        np.testing.assert_allclose(out, matrix.T @ x, atol=1e-12)

    def test_out_buffer_reused(self, matrix, rng):
        x = rng.random(matrix.shape[0])
        buf = np.full(matrix.shape[1], 99.0)
        out = chunked_rmatvec(matrix, x, out=buf)
        assert out is buf
        np.testing.assert_allclose(buf, matrix.T @ x, atol=1e-12)

    def test_rejects_bad_vector_length(self, matrix):
        with pytest.raises(GraphError):
            chunked_rmatvec(matrix, np.zeros(5))

    def test_rejects_bad_out_length(self, matrix, rng):
        with pytest.raises(GraphError):
            chunked_rmatvec(matrix, rng.random(400), out=np.zeros(3))

    def test_rejects_bad_chunk(self, matrix, rng):
        with pytest.raises(GraphError):
            chunked_rmatvec(matrix, rng.random(400), chunk_rows=0)

    def test_rejects_non_csr(self, rng):
        with pytest.raises(GraphError):
            chunked_rmatvec(sp.random(4, 4, format="coo"), rng.random(4))

    @given(st.integers(min_value=1, max_value=50))
    @settings(max_examples=30, deadline=None)
    def test_chunk_size_invariance(self, chunk_rows):
        gen = np.random.default_rng(chunk_rows)
        m = sp.random(60, 60, density=0.1, random_state=chunk_rows, format="csr")
        x = gen.random(60)
        np.testing.assert_allclose(
            chunked_rmatvec(m, x, chunk_rows=chunk_rows), m.T @ x, atol=1e-12
        )


class TestChunkedMatvec:
    def test_matches_scipy(self, matrix, rng):
        x = rng.random(matrix.shape[1])
        np.testing.assert_allclose(
            chunked_matvec(matrix, x), matrix @ x, atol=1e-12
        )

    def test_small_chunks(self, matrix, rng):
        x = rng.random(matrix.shape[1])
        np.testing.assert_allclose(
            chunked_matvec(matrix, x, chunk_rows=13), matrix @ x, atol=1e-12
        )

    def test_rectangular(self, rng):
        m = sp.random(30, 50, density=0.1, random_state=1, format="csr")
        x = rng.random(50)
        np.testing.assert_allclose(chunked_matvec(m, x), m @ x, atol=1e-12)

    def test_empty_rows_give_zero(self):
        m = sp.csr_matrix((3, 3))
        out = chunked_matvec(m, np.ones(3))
        np.testing.assert_array_equal(out, 0.0)


class TestEffectiveWorkers:
    def test_default_bounded(self):
        assert 1 <= effective_workers(None) <= 8

    def test_explicit(self):
        assert effective_workers(3) == 3

    def test_rejects_zero(self):
        with pytest.raises(ConfigError):
            effective_workers(0)

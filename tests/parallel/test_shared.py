"""Tests for the shared-memory parallel matvec (spawns real processes)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.parallel import SharedCsrMatvec
from repro.parallel.shared import SharedCsrMatvec as _SCM


@pytest.fixture(scope="module")
def matrix():
    return sp.random(300, 300, density=0.03, random_state=9, format="csr")


class TestSharedCsrMatvec:
    def test_matches_scipy(self, matrix, rng):
        x = rng.random(matrix.shape[0])
        with SharedCsrMatvec(matrix, n_workers=2) as mv:
            np.testing.assert_allclose(mv.rmatvec(x), matrix.T @ x, atol=1e-12)

    def test_repeated_calls(self, matrix, rng):
        with SharedCsrMatvec(matrix, n_workers=2) as mv:
            for _ in range(3):
                x = rng.random(matrix.shape[0])
                np.testing.assert_allclose(mv.rmatvec(x), matrix.T @ x, atol=1e-12)

    def test_single_worker(self, matrix, rng):
        x = rng.random(matrix.shape[0])
        with SharedCsrMatvec(matrix, n_workers=1) as mv:
            np.testing.assert_allclose(mv.rmatvec(x), matrix.T @ x, atol=1e-12)

    def test_closed_rejects_calls(self, matrix):
        mv = SharedCsrMatvec(matrix, n_workers=1)
        mv.close()
        with pytest.raises(GraphError, match="closed"):
            mv.rmatvec(np.zeros(matrix.shape[0]))

    def test_double_close_is_safe(self, matrix):
        mv = SharedCsrMatvec(matrix, n_workers=1)
        mv.close()
        mv.close()

    def test_rejects_bad_vector(self, matrix):
        with SharedCsrMatvec(matrix, n_workers=1) as mv:
            with pytest.raises(GraphError):
                mv.rmatvec(np.zeros(7))

    def test_rejects_non_csr(self):
        with pytest.raises(GraphError):
            SharedCsrMatvec(sp.random(4, 4, format="coo"))

    def test_band_balancing(self):
        """Bands must partition rows and roughly balance nonzeros."""
        m = sp.random(1000, 1000, density=0.01, random_state=2, format="csr")
        bands = _SCM._make_bands(m.indptr.astype(np.int64), 4)
        assert bands[0][0] == 0
        assert bands[-1][1] == 1000
        for (a, b), (c, d) in zip(bands, bands[1:]):
            assert b == c  # contiguous partition


class TestPowerIterationParallelKernel:
    def test_parallel_kernel_matches_scipy(self, small_graph):
        from repro.config import RankingParams
        from repro.graph import transition_matrix
        from repro.ranking import power_iteration

        m = transition_matrix(small_graph)
        params = RankingParams()
        a = power_iteration(m, params, kernel="scipy")
        b = power_iteration(m, params, kernel="parallel")
        np.testing.assert_allclose(a.scores, b.scores, atol=1e-10)


class TestSharedBlockedMatvec:
    @pytest.fixture()
    def store(self, matrix, tmp_path):
        from repro.webgraph.store import ShardedGraphStore

        return ShardedGraphStore.from_matrix(
            matrix, tmp_path / "store", block_size=64
        )

    def test_matches_transpose_matvec(self, matrix, store, rng):
        from repro.parallel.shared import SharedBlockedMatvec

        x = rng.random(matrix.shape[0])
        with SharedBlockedMatvec(store, n_workers=2) as mv:
            np.testing.assert_allclose(mv.rmatvec(x), matrix.T @ x, atol=1e-12)
            assert not mv.degraded

    def test_repeated_calls(self, matrix, store, rng):
        from repro.parallel.shared import SharedBlockedMatvec

        with SharedBlockedMatvec(store, n_workers=2) as mv:
            for _ in range(3):
                x = rng.random(matrix.shape[0])
                np.testing.assert_allclose(
                    mv.rmatvec(x), matrix.T @ x, atol=1e-12
                )

    def test_degraded_serial_path_is_exact(self, matrix, store, rng):
        from repro.parallel.shared import SharedBlockedMatvec

        x = rng.random(matrix.shape[0])
        with SharedBlockedMatvec(store, n_workers=2) as mv:
            mv._degrade("test")
            assert mv.degraded
            np.testing.assert_allclose(mv.rmatvec(x), matrix.T @ x, atol=1e-12)

    def test_closed_rejects_calls(self, store):
        from repro.parallel.shared import SharedBlockedMatvec

        mv = SharedBlockedMatvec(store, n_workers=1)
        mv.close()
        mv.close()  # double close is safe
        with pytest.raises(GraphError, match="closed"):
            mv.rmatvec(np.zeros(mv.n))

    def test_rejects_non_store(self):
        from repro.parallel.shared import SharedBlockedMatvec

        with pytest.raises(GraphError, match="ShardedGraphStore"):
            SharedBlockedMatvec(sp.eye(4, format="csr"))

    def test_group_balancing_partitions_blocks(self, store):
        from repro.parallel.shared import SharedBlockedMatvec

        groups = SharedBlockedMatvec._make_groups(store.shards, 3)
        covered = sorted(bid for group in groups for bid in group)
        assert covered == list(range(store.n_blocks))
        assert len(groups) <= 3

    def test_telemetry_counts_blocked_rmatvecs(self, store, rng):
        from repro.observability import get_registry, reset_registry
        from repro.parallel.shared import SharedBlockedMatvec

        reset_registry()
        try:
            with SharedBlockedMatvec(store, n_workers=1) as mv:
                mv.rmatvec(rng.random(mv.n))
            metrics = get_registry().as_dict()
            samples = metrics["repro_parallel_rmatvecs_total"]["samples"]
            assert any(
                s["labels"].get("evaluator") == "blocked" and s["value"] >= 1
                for s in samples
            )
        finally:
            reset_registry()

"""Tests for the shared-memory parallel matvec (spawns real processes)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.parallel import SharedCsrMatvec
from repro.parallel.shared import SharedCsrMatvec as _SCM


@pytest.fixture(scope="module")
def matrix():
    return sp.random(300, 300, density=0.03, random_state=9, format="csr")


class TestSharedCsrMatvec:
    def test_matches_scipy(self, matrix, rng):
        x = rng.random(matrix.shape[0])
        with SharedCsrMatvec(matrix, n_workers=2) as mv:
            np.testing.assert_allclose(mv.rmatvec(x), matrix.T @ x, atol=1e-12)

    def test_repeated_calls(self, matrix, rng):
        with SharedCsrMatvec(matrix, n_workers=2) as mv:
            for _ in range(3):
                x = rng.random(matrix.shape[0])
                np.testing.assert_allclose(mv.rmatvec(x), matrix.T @ x, atol=1e-12)

    def test_single_worker(self, matrix, rng):
        x = rng.random(matrix.shape[0])
        with SharedCsrMatvec(matrix, n_workers=1) as mv:
            np.testing.assert_allclose(mv.rmatvec(x), matrix.T @ x, atol=1e-12)

    def test_closed_rejects_calls(self, matrix):
        mv = SharedCsrMatvec(matrix, n_workers=1)
        mv.close()
        with pytest.raises(GraphError, match="closed"):
            mv.rmatvec(np.zeros(matrix.shape[0]))

    def test_double_close_is_safe(self, matrix):
        mv = SharedCsrMatvec(matrix, n_workers=1)
        mv.close()
        mv.close()

    def test_rejects_bad_vector(self, matrix):
        with SharedCsrMatvec(matrix, n_workers=1) as mv:
            with pytest.raises(GraphError):
                mv.rmatvec(np.zeros(7))

    def test_rejects_non_csr(self):
        with pytest.raises(GraphError):
            SharedCsrMatvec(sp.random(4, 4, format="coo"))

    def test_band_balancing(self):
        """Bands must partition rows and roughly balance nonzeros."""
        m = sp.random(1000, 1000, density=0.01, random_state=2, format="csr")
        bands = _SCM._make_bands(m.indptr.astype(np.int64), 4)
        assert bands[0][0] == 0
        assert bands[-1][1] == 1000
        for (a, b), (c, d) in zip(bands, bands[1:]):
            assert b == c  # contiguous partition


class TestPowerIterationParallelKernel:
    def test_parallel_kernel_matches_scipy(self, small_graph):
        from repro.config import RankingParams
        from repro.graph import transition_matrix
        from repro.ranking import power_iteration

        m = transition_matrix(small_graph)
        params = RankingParams()
        a = power_iteration(m, params, kernel="scipy")
        b = power_iteration(m, params, kernel="parallel")
        np.testing.assert_allclose(a.scores, b.scores, atol=1e-10)

"""Shared fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.datasets import load_dataset
from repro.graph import PageGraph
from repro.sources import SourceAssignment, SourceGraph


@pytest.fixture(scope="session")
def rng() -> np.random.Generator:
    """Session-wide seeded generator for tests that need randomness."""
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def small_graph() -> PageGraph:
    """A small deterministic random graph (500 nodes, ~4k edges)."""
    gen = np.random.default_rng(42)
    n = 500
    return PageGraph.from_edges(
        gen.integers(0, n, 4000), gen.integers(0, n, 4000), n
    )


@pytest.fixture(scope="session")
def small_assignment(small_graph: PageGraph) -> SourceAssignment:
    """Dense 40-source assignment for the small graph."""
    gen = np.random.default_rng(43)
    ids = gen.integers(0, 40, small_graph.n_nodes)
    ids[:40] = np.arange(40)  # force density
    return SourceAssignment(ids.astype(np.int64))


@pytest.fixture(scope="session")
def small_source_graph(
    small_graph: PageGraph, small_assignment: SourceAssignment
) -> SourceGraph:
    """Consensus-weighted source graph over the small graph."""
    return SourceGraph.from_page_graph(small_graph, small_assignment)


@pytest.fixture(scope="session")
def tiny_dataset():
    """The registry's tiny dataset (with planted spam)."""
    return load_dataset("tiny")


@pytest.fixture(scope="session")
def fast_params() -> RankingParams:
    """Looser tolerance for tests where exact convergence is not the point."""
    return RankingParams(tolerance=1e-10, max_iter=500)


@pytest.fixture
def triangle_graph() -> PageGraph:
    """The 3-cycle: a tiny graph with a known uniform stationary vector."""
    return PageGraph.from_edges([0, 1, 2], [1, 2, 0], 3)

"""Span nesting, ambient-tracer activation, and tree rendering."""

from __future__ import annotations

import pytest

from repro.observability import Tracer, current_tracer, format_tree, span


class TestSpanNesting:
    def test_nested_spans_form_a_tree(self) -> None:
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("child_a"):
                with tracer.span("grandchild"):
                    pass
            with tracer.span("child_b"):
                pass
        assert [r.name for r in tracer.roots] == ["root"]
        root = tracer.roots[0]
        assert [c.name for c in root.children] == ["child_a", "child_b"]
        assert root.children[0].children[0].name == "grandchild"

    def test_durations_are_stamped_and_contain_children(self) -> None:
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        outer = tracer.roots[0]
        inner = outer.children[0]
        assert outer.duration >= inner.duration >= 0.0

    def test_sequential_roots(self) -> None:
        tracer = Tracer()
        with tracer.span("first"):
            pass
        with tracer.span("second"):
            pass
        assert [r.name for r in tracer.roots] == ["first", "second"]

    def test_span_meta_and_walk_and_find(self) -> None:
        tracer = Tracer()
        with tracer.span("a", kind="outer") as rec:
            rec.meta["extra"] = 1
            with tracer.span("b"):
                pass
        assert tracer.roots[0].meta == {"kind": "outer", "extra": 1}
        assert [s.name for s in tracer.walk()] == ["a", "b"]
        assert len(tracer.find("b")) == 1

    def test_exception_still_closes_span(self) -> None:
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("boom"):
                raise RuntimeError("x")
        assert tracer.roots[0].duration >= 0.0


class TestAmbientTracer:
    def test_module_span_is_noop_without_active_tracer(self) -> None:
        assert current_tracer() is None
        with span("orphan") as record:
            assert record is None

    def test_module_span_attaches_to_active_tracer(self) -> None:
        tracer = Tracer()
        with tracer.activate():
            assert current_tracer() is tracer
            with span("attached") as record:
                assert record is not None
        assert current_tracer() is None
        assert [r.name for r in tracer.roots] == ["attached"]

    def test_activation_nests_and_restores(self) -> None:
        outer, inner = Tracer(), Tracer()
        with outer.activate():
            with inner.activate():
                with span("x"):
                    pass
            assert current_tracer() is outer
        assert [r.name for r in inner.roots] == ["x"]
        assert outer.roots == []


class TestSerialization:
    def test_as_dict_shape(self) -> None:
        tracer = Tracer()
        with tracer.span("root", n=3):
            with tracer.span("leaf"):
                pass
        payload = tracer.as_dict()
        root = payload["spans"][0]
        assert root["name"] == "root"
        assert root["meta"] == {"n": 3}
        assert root["children"][0]["name"] == "leaf"
        assert "children" not in root["children"][0]

    def test_format_tree_indents_children(self) -> None:
        tracer = Tracer()
        with tracer.span("root"):
            with tracer.span("leaf", hint="x"):
                pass
        text = format_tree(tracer)
        lines = text.splitlines()
        assert lines[0].startswith("root:")
        assert lines[1].startswith("  leaf:")
        assert "[hint=x]" in lines[1]


class TestThreadSafety:
    def test_threads_never_interleave_into_each_others_traces(self) -> None:
        # Regression: one tracer shared by the serving updater and its
        # readers must keep each thread's spans in that thread's own
        # tree — an updater span opening while a reader span is open
        # must become a separate root, never a child of the reader's.
        import threading

        tracer = Tracer()
        barrier = threading.Barrier(4)

        def worker(name: str) -> None:
            for i in range(25):
                if i == 0:
                    barrier.wait()
                with tracer.span(f"{name}-outer", i=i):
                    with tracer.span(f"{name}-inner"):
                        pass

        threads = [
            threading.Thread(target=worker, args=(f"w{k}",)) for k in range(4)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        roots = tracer.roots
        assert len(roots) == 100
        for root in roots:
            prefix = root.name.split("-")[0]
            # Each root holds exactly its own thread's nested span, and
            # every span in the tree carries the opening thread's tid.
            assert [c.name for c in root.children] == [f"{prefix}-inner"]
            assert {s.tid for s in root.walk()} == {root.tid}

    def test_max_roots_ring_keeps_newest(self) -> None:
        tracer = Tracer(max_roots=3)
        for i in range(7):
            with tracer.span(f"s{i}"):
                pass
        assert [r.name for r in tracer.roots] == ["s4", "s5", "s6"]

    def test_max_roots_validated(self) -> None:
        with pytest.raises(ValueError, match="max_roots"):
            Tracer(max_roots=0)

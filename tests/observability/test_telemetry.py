"""Solver telemetry, pipeline tracing, export payloads, and the CLI flags."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro import SpamResilientPipeline
from repro.cli import main
from repro.config import RankingParams, SpamProximityParams
from repro.core.pipeline import PIPELINE_STAGES
from repro.errors import ConvergenceError
from repro.eval.reporting import convergence_row, format_convergence
from repro.graph import PageGraph
from repro.observability import (
    SolverTelemetry,
    Tracer,
    build_metrics_payload,
    get_registry,
    reset_registry,
    write_metrics,
)
from repro.ranking.base import ConvergenceInfo
from repro.ranking.gauss_seidel import gauss_seidel_solve
from repro.ranking.jacobi import jacobi_solve
from repro.ranking.pagerank import pagerank
from repro.ranking.power import power_iteration


@pytest.fixture()
def fresh_registry():
    registry = reset_registry()
    yield registry
    reset_registry()


class TestSolverTelemetry:
    def test_power_records_residual_curve_and_kernel(self, triangle_graph) -> None:
        telemetry = SolverTelemetry()
        params = RankingParams(tolerance=1e-8, progress=telemetry)
        result = pagerank(triangle_graph, params)
        assert len(telemetry.runs) == 1
        run = telemetry.runs[0]
        assert run.solver == "power"
        assert run.kernel == "scipy"
        assert run.label == "pagerank"
        assert run.n == 3
        assert run.converged
        assert run.iterations == result.convergence.iterations
        assert tuple(run.residuals) == result.convergence.residual_history
        assert len(run.step_seconds) == run.iterations
        assert all(s >= 0.0 for s in run.step_seconds)
        assert run.wall_seconds > 0.0

    def test_power_records_dangling_mass(self) -> None:
        # Nodes 1 and 2 are dangling: the walk leaks mass every step.
        graph = PageGraph.from_edges([0], [1], 3)
        telemetry = SolverTelemetry()
        pagerank(graph, RankingParams(tolerance=1e-6, progress=telemetry))
        run = telemetry.runs[0]
        assert run.n_dangling == 2
        assert len(run.dangling_mass) == run.iterations
        assert all(0.0 <= m <= 1.0 for m in run.dangling_mass)

    def test_jacobi_and_gauss_seidel_emit_runs(self, small_source_graph) -> None:
        telemetry = SolverTelemetry()
        params = RankingParams(tolerance=1e-8, progress=telemetry)
        jacobi_solve(small_source_graph.matrix, params, label="j")
        gauss_seidel_solve(small_source_graph.matrix, params, label="gs")
        assert [r.solver for r in telemetry.runs] == ["jacobi", "gauss_seidel"]
        assert all(r.converged and r.residuals for r in telemetry.runs)
        assert telemetry.iteration_counts()["j"] == telemetry.runs[0].iterations

    def test_failed_solve_still_reports(self, small_source_graph) -> None:
        telemetry = SolverTelemetry()
        params = RankingParams(max_iter=1, progress=telemetry)
        with pytest.raises(ConvergenceError):
            power_iteration(small_source_graph.matrix, params)
        assert len(telemetry.runs) == 1
        assert not telemetry.runs[0].converged
        assert telemetry.runs[0].iterations == 1

    def test_disabled_telemetry_gives_identical_scores(self, triangle_graph) -> None:
        plain = pagerank(triangle_graph, RankingParams())
        observed = pagerank(
            triangle_graph, RankingParams(progress=SolverTelemetry())
        )
        np.testing.assert_allclose(plain.scores, observed.scores)
        # progress is excluded from parameter equality (reproducibility key).
        assert RankingParams() == RankingParams(progress=SolverTelemetry())

    def test_as_dict_is_json_ready(self, triangle_graph) -> None:
        telemetry = SolverTelemetry()
        pagerank(triangle_graph, RankingParams(progress=telemetry))
        payload = json.loads(json.dumps(telemetry.as_dict()))
        assert payload["runs"][0]["residuals"]
        assert payload["iteration_counts"]["pagerank"] >= 1


class TestPipelineTracing:
    def test_all_five_stage_spans_appear(self, tiny_dataset, fresh_registry) -> None:
        ds = tiny_dataset
        seeds = ds.spam_sources[:4]
        result = SpamResilientPipeline().rank(
            ds.graph, ds.assignment, spam_seeds=seeds
        )
        assert result.trace is not None
        assert result.trace.name == "pipeline"
        stage_names = [child.name for child in result.trace.children]
        assert stage_names == list(PIPELINE_STAGES)
        assert set(result.timings) == set(PIPELINE_STAGES)
        assert all(v >= 0.0 for v in result.timings.values())
        assert result.stage_seconds("rank") == result.timings["rank"]
        # Solver spans nest under their stages.
        rank_stage = result.trace.children[-1]
        assert any(s.name.startswith("solve:") for s in rank_stage.walk())

    def test_registry_records_run_and_iterations(
        self, tiny_dataset, fresh_registry
    ) -> None:
        ds = tiny_dataset
        SpamResilientPipeline().rank(
            ds.graph, ds.assignment, spam_seeds=ds.spam_sources[:4]
        )
        assert fresh_registry.counter("repro_pipeline_runs_total").value == 1.0
        stage_hist = fresh_registry.histogram(
            "repro_pipeline_stage_seconds", labelnames=("stage",)
        )
        for stage in PIPELINE_STAGES:
            assert stage_hist.labels(stage=stage).count == 1
        snapshot = fresh_registry.snapshot()
        assert snapshot['repro_solver_iterations{label="sr-sourcerank"}:count'] == 1.0
        assert snapshot['repro_solver_iterations{label="spam-proximity"}:count'] == 1.0

    def test_explicit_kappa_skips_proximity_but_keeps_spans(
        self, tiny_dataset, fresh_registry
    ) -> None:
        from repro.throttle import ThrottleVector

        ds = tiny_dataset
        kappa = ThrottleVector.zeros(ds.n_sources)
        result = SpamResilientPipeline().rank(ds.graph, ds.assignment, kappa=kappa)
        names = [child.name for child in result.trace.children]
        assert names == list(PIPELINE_STAGES)
        proximity_span = result.trace.children[2]
        assert proximity_span.meta.get("skipped")

    def test_pipeline_threads_progress_to_both_walks(
        self, tiny_dataset, fresh_registry
    ) -> None:
        ds = tiny_dataset
        telemetry = SolverTelemetry()
        pipe = SpamResilientPipeline(
            ranking=RankingParams(progress=telemetry),
            proximity=SpamProximityParams(progress=telemetry),
        )
        pipe.rank(ds.graph, ds.assignment, spam_seeds=ds.spam_sources[:4])
        labels = [run.label for run in telemetry.runs]
        assert "spam-proximity" in labels
        assert "sr-sourcerank" in labels


class TestExport:
    def test_payload_combines_all_sources(self, tiny_dataset, fresh_registry) -> None:
        ds = tiny_dataset
        telemetry = SolverTelemetry()
        pipe = SpamResilientPipeline(ranking=RankingParams(progress=telemetry))
        result = pipe.rank(ds.graph, ds.assignment, spam_seeds=ds.spam_sources[:4])
        payload = build_metrics_payload(
            trace=result.trace, telemetry=telemetry, meta={"k": "v"}
        )
        assert payload["meta"] == {"k": "v"}
        assert "repro_pipeline_runs_total" in payload["metrics"]
        assert payload["trace"]["name"] == "pipeline"
        assert payload["solvers"]["runs"]

    def test_write_metrics_json_and_prom(self, tmp_path, fresh_registry) -> None:
        get_registry().counter("repro_demo_total", "demo").inc()
        json_path = write_metrics(tmp_path / "m.json")
        payload = json.loads(json_path.read_text())
        assert payload["metrics"]["repro_demo_total"]["samples"][0]["value"] == 1.0
        prom_path = write_metrics(tmp_path / "m.prom")
        assert "repro_demo_total 1\n" in prom_path.read_text()

    def test_tracer_export_shape(self) -> None:
        tracer = Tracer()
        with tracer.span("a"):
            pass
        payload = build_metrics_payload(trace=tracer)
        assert payload["trace"]["spans"][0]["name"] == "a"


class TestConvergenceSummary:
    def test_summary_mentions_iterations_and_tail(self) -> None:
        info = ConvergenceInfo(True, 7, 5e-10, 1e-9, (1e-2, 1e-4, 1e-6, 1e-8, 2e-9, 5e-10))
        text = info.convergence_summary()
        assert "converged in 7 iterations" in text
        assert "5.00e-10" in text
        # Only the last five curve points are shown.
        assert "1.00e-02" not in text
        assert "1.00e-04" in text

    def test_non_converged_summary(self) -> None:
        info = ConvergenceInfo(False, 3, 0.5, 1e-9, (0.9, 0.7, 0.5))
        assert "did NOT converge" in info.convergence_summary()

    def test_ranking_result_delegates(self, triangle_graph) -> None:
        result = pagerank(triangle_graph)
        assert result.convergence_summary() == (
            result.convergence.convergence_summary()
        )
        assert "converged" in repr(result)

    def test_reporting_helpers(self, triangle_graph) -> None:
        result = pagerank(triangle_graph)
        row = convergence_row(result)
        assert row["label"] == "pagerank"
        assert row["converged"] == "yes"
        text = format_convergence([result], title="demo")
        assert text.startswith("demo")
        assert "pagerank:" in text


class TestCli:
    def test_rank_metrics_out_and_trace(
        self, tmp_path, capsys, fresh_registry
    ) -> None:
        out = tmp_path / "m.json"
        code = main(
            ["rank", "--dataset", "tiny", "--metrics-out", str(out), "--trace"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "trace:" in captured
        assert "pipeline:" in captured

        payload = json.loads(out.read_text())
        # Per-stage spans.
        trace = payload["trace"]
        assert trace["name"] == "pipeline"
        assert [c["name"] for c in trace["children"]] == list(PIPELINE_STAGES)
        # Per-solver iteration counts and residual curves.
        runs = payload["solvers"]["runs"]
        assert runs, "expected solver telemetry runs"
        for run in runs:
            assert run["iterations"] >= 1
            assert len(run["residuals"]) == run["iterations"]
        assert payload["solvers"]["iteration_counts"]
        # Registry metrics present.
        assert "repro_pipeline_runs_total" in payload["metrics"]

    def test_figures_fast_with_metrics_out(
        self, tmp_path, capsys, fresh_registry
    ) -> None:
        out = tmp_path / "figures.json"
        code = main(
            ["figures", "fig2", "--fast", "--metrics-out", str(out), "--trace"]
        )
        assert code == 0
        payload = json.loads(out.read_text())
        assert [s["name"] for s in payload["trace"]["spans"]] == ["fig2"]

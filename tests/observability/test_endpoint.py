"""Tests for the live telemetry scrape endpoint."""

from __future__ import annotations

import json
import threading
import urllib.error
from urllib.request import urlopen

import pytest

from repro.observability import (
    EventLog,
    MetricsRegistry,
    TelemetryServer,
    Tracer,
)


def get(server: TelemetryServer, path: str):
    with urlopen(server.url(path), timeout=5.0) as resp:
        return resp.status, resp.headers.get("Content-Type"), resp.read()


def get_json(server: TelemetryServer, path: str):
    status, _, body = get(server, path)
    assert status == 200
    return json.loads(body)


@pytest.fixture()
def registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("repro_runs_total", "Completed runs").inc(2)
    return reg


class TestRoutes:
    def test_metrics_exposition(self, registry) -> None:
        with TelemetryServer(registry=registry) as server:
            status, content_type, body = get(server, "/metrics")
        assert status == 200
        assert content_type.startswith("text/plain; version=0.0.4")
        assert b"repro_runs_total 2\n" in body

    def test_health_default_and_custom(self, registry) -> None:
        with TelemetryServer(registry=registry) as server:
            assert get_json(server, "/health") == {"ready": True}
        health_fn = lambda: {"state": "healthy", "staleness_updates": 0}  # noqa: E731
        with TelemetryServer(registry=registry, health_fn=health_fn) as server:
            assert get_json(server, "/health")["state"] == "healthy"

    def test_health_stamped_with_run_id(self, registry) -> None:
        events = EventLog(run_id="run-ep")
        events.emit("x")
        with TelemetryServer(registry=registry, event_log=events) as server:
            health = get_json(server, "/health")
        assert health["run_id"] == "run-ep"
        assert health["events_emitted"] == 1

    def test_trace_chrome_document(self, registry) -> None:
        tracer = Tracer()
        with tracer.activate(), tracer.span("pipeline"):
            with tracer.span("stage:rank"):
                pass
        with TelemetryServer(registry=registry, tracer=tracer) as server:
            doc = get_json(server, "/trace")
        names = {e["name"] for e in doc["traceEvents"]}
        assert {"pipeline", "stage:rank"} <= names
        with TelemetryServer(registry=registry) as server:
            assert get_json(server, "/trace")["traceEvents"] == []

    def test_events_tail_and_limit(self, registry) -> None:
        events = EventLog()
        for i in range(5):
            events.emit("tick", i=i)
        with TelemetryServer(registry=registry, event_log=events) as server:
            assert len(get_json(server, "/events")) == 5
            tail = get_json(server, "/events?limit=2")
        assert [e["i"] for e in tail] == [3, 4]

    def test_unknown_route_404(self, registry) -> None:
        with TelemetryServer(registry=registry) as server:
            with pytest.raises(urllib.error.HTTPError) as err:
                get(server, "/nope")
            assert err.value.code == 404


class TestLifecycle:
    def test_port_zero_picks_a_free_port(self, registry) -> None:
        with TelemetryServer(registry=registry) as server:
            host, port = server.address
            assert host == "127.0.0.1" and port > 0
            assert server.url("/health").endswith(f":{port}/health")

    def test_start_is_idempotent_and_stop_closes(self, registry) -> None:
        server = TelemetryServer(registry=registry).start()
        try:
            assert server.start() is server  # no rebind
            url = server.url("/metrics")
        finally:
            server.stop()
        server.stop()  # idempotent
        with pytest.raises(urllib.error.URLError):
            urlopen(url, timeout=1.0)

    def test_restart_after_stop(self, registry) -> None:
        server = TelemetryServer(registry=registry)
        server.start()
        server.stop()
        with server:  # second lifecycle on the same instance
            status, _, _ = get(server, "/metrics")
        assert status == 200

    def test_concurrent_scrapes_all_answered(self, registry) -> None:
        events = EventLog()
        events.emit("x")
        failures: list[str] = []
        with TelemetryServer(registry=registry, event_log=events) as server:

            def scraper() -> None:
                for path in ("/metrics", "/health", "/events") * 10:
                    try:
                        status, _, body = get(server, path)
                        if status != 200 or not body:
                            failures.append(f"{path}: {status}")
                    except Exception as exc:  # noqa: BLE001
                        failures.append(f"{path}: {exc}")

            threads = [threading.Thread(target=scraper) for _ in range(8)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        assert failures == []

"""Tests for the opt-in profiling hooks."""

from __future__ import annotations

import threading

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    Profiler,
    current_profiler,
    profile_block,
)


def burn(n: int = 20_000) -> int:
    return sum(range(n))


class TestProfiler:
    def test_outermost_block_gets_cprofile_top_table(self) -> None:
        profiler = Profiler(top=5)
        with profiler.profile("stage:rank"):
            burn()
        (record,) = profiler.records
        assert record.name == "stage:rank"
        assert record.calls is not None and record.calls > 0
        assert 0 < len(record.top) <= 5
        row = record.top[0]
        assert set(row) == {
            "function",
            "calls",
            "tottime_seconds",
            "cumtime_seconds",
        }
        # Rows are sorted by cumulative time, hottest first.
        cums = [r["cumtime_seconds"] for r in record.top]
        assert cums == sorted(cums, reverse=True)

    def test_nested_block_records_wall_and_cpu_only(self) -> None:
        profiler = Profiler()
        with profiler.profile("outer"):
            with profiler.profile("inner"):
                burn()
        inner, outer = profiler.records  # completion order
        assert inner.name == "inner" and outer.name == "outer"
        assert inner.calls is None and inner.top == []
        assert outer.calls is not None
        assert outer.wall_seconds >= inner.wall_seconds >= 0.0
        assert inner.cpu_seconds >= 0.0

    def test_exception_still_records_the_block(self) -> None:
        profiler = Profiler()
        with pytest.raises(RuntimeError):
            with profiler.profile("doomed"):
                raise RuntimeError("boom")
        (record,) = profiler.records
        assert record.name == "doomed"
        assert record.wall_seconds >= 0.0
        # The deterministic profiler slot is released for the next block.
        with profiler.profile("after"):
            pass
        assert profiler.records[-1].calls is not None

    def test_meta_and_find_and_as_dict(self) -> None:
        profiler = Profiler(top=2)
        with profiler.profile("update", seq=3):
            burn()
        assert profiler.find("update")[0].meta == {"seq": 3}
        assert profiler.find("absent") == []
        payload = profiler.as_dict()
        (entry,) = payload["profiles"]
        assert entry["name"] == "update"
        assert entry["meta"] == {"seq": 3}
        assert entry["cpu_fraction"] >= 0.0

    def test_top_must_be_positive(self) -> None:
        with pytest.raises(ObservabilityError, match="top"):
            Profiler(top=0)

    def test_each_thread_gets_its_own_outermost_cprofile(self) -> None:
        profiler = Profiler()

        def worker() -> None:
            with profiler.profile(f"t{threading.get_ident()}"):
                burn()

        threads = [threading.Thread(target=worker) for _ in range(3)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        records = profiler.records
        assert len(records) == 3
        # Every thread's block was outermost on its thread: all cProfile'd.
        assert all(r.calls is not None for r in records)


class TestAmbientProfileBlock:
    def test_noop_without_active_profiler(self) -> None:
        assert current_profiler() is None
        with profile_block("orphan") as record:
            assert record is None

    def test_activate_routes_profile_block(self) -> None:
        profiler = Profiler()
        with profiler.activate():
            assert current_profiler() is profiler
            with profile_block("solve:power", solver="power") as record:
                burn()
        assert current_profiler() is None
        assert record is not None and record.meta == {"solver": "power"}
        assert profiler.find("solve:power")[0].wall_seconds > 0.0

    def test_activation_does_not_leak_into_threads(self) -> None:
        profiler = Profiler()
        seen: list[object] = []

        def worker() -> None:
            seen.append(current_profiler())

        with profiler.activate():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        assert seen == [None]

"""Registry semantics: counters, gauges, histograms, exposition formats."""

from __future__ import annotations

import json
import math
import threading

import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    MetricsRegistry,
    diff_snapshots,
    get_registry,
    reset_registry,
)


class TestCounter:
    def test_starts_at_zero_and_accumulates(self) -> None:
        reg = MetricsRegistry()
        c = reg.counter("runs_total", "runs")
        assert c.value == 0.0
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_negative_increment_rejected(self) -> None:
        c = MetricsRegistry().counter("runs_total")
        with pytest.raises(ObservabilityError):
            c.inc(-1)

    def test_reregistration_returns_same_family(self) -> None:
        reg = MetricsRegistry()
        reg.counter("runs_total").inc()
        assert reg.counter("runs_total").value == 1.0

    def test_kind_conflict_rejected(self) -> None:
        reg = MetricsRegistry()
        reg.counter("x_total")
        with pytest.raises(ObservabilityError):
            reg.gauge("x_total")

    def test_invalid_name_rejected(self) -> None:
        with pytest.raises(ObservabilityError):
            MetricsRegistry().counter("bad name!")


class TestGauge:
    def test_set_inc_dec(self) -> None:
        g = MetricsRegistry().gauge("inflight")
        g.set(5)
        g.inc()
        g.dec(2)
        assert g.value == 4.0


class TestHistogram:
    def test_observations_land_in_cumulative_buckets(self) -> None:
        reg = MetricsRegistry()
        h = reg.histogram("latency", buckets=(0.1, 1.0, 10.0))
        for v in (0.05, 0.5, 0.5, 5.0, 50.0):
            h.observe(v)
        assert h.count == 5
        assert h.sum == pytest.approx(56.05)
        cumulative = dict(h.cumulative_buckets())
        assert cumulative[0.1] == 1
        assert cumulative[1.0] == 3
        assert cumulative[10.0] == 4
        assert cumulative[float("inf")] == 5

    def test_empty_bucket_list_rejected(self) -> None:
        with pytest.raises(ObservabilityError):
            MetricsRegistry().histogram("latency", buckets=())


class TestLabels:
    def test_labeled_children_are_independent(self) -> None:
        reg = MetricsRegistry()
        fam = reg.counter("stage_runs", labelnames=("stage",))
        fam.labels(stage="rank").inc(3)
        fam.labels(stage="kappa").inc(1)
        assert fam.labels(stage="rank").value == 3.0
        assert fam.labels(stage="kappa").value == 1.0

    def test_wrong_labelset_rejected(self) -> None:
        fam = MetricsRegistry().counter("stage_runs", labelnames=("stage",))
        with pytest.raises(ObservabilityError):
            fam.labels(phase="rank")

    def test_unlabeled_access_on_labeled_family_rejected(self) -> None:
        fam = MetricsRegistry().counter("stage_runs", labelnames=("stage",))
        with pytest.raises(ObservabilityError):
            fam.inc()


class TestExposition:
    def test_as_dict_round_trips_through_json(self) -> None:
        reg = MetricsRegistry()
        reg.counter("runs_total", "number of runs").inc(2)
        reg.histogram("seconds", buckets=(1.0,)).observe(0.5)
        payload = json.loads(reg.to_json())
        assert payload["runs_total"]["type"] == "counter"
        assert payload["runs_total"]["samples"][0]["value"] == 2.0
        hist = payload["seconds"]["samples"][0]
        assert hist["count"] == 1
        assert hist["buckets"][-1]["le"] == "+Inf"

    def test_prometheus_text_golden(self) -> None:
        reg = MetricsRegistry()
        reg.counter("repro_runs_total", "Completed runs").inc(3)
        h = reg.histogram(
            "repro_stage_seconds",
            "Stage wall time",
            labelnames=("stage",),
            buckets=(0.5, 2.5),
        )
        h.labels(stage="rank").observe(0.25)
        h.labels(stage="rank").observe(1.0)
        expected = (
            "# HELP repro_runs_total Completed runs\n"
            "# TYPE repro_runs_total counter\n"
            "repro_runs_total 3\n"
            "# HELP repro_stage_seconds Stage wall time\n"
            "# TYPE repro_stage_seconds histogram\n"
            'repro_stage_seconds_bucket{stage="rank",le="0.5"} 1\n'
            'repro_stage_seconds_bucket{stage="rank",le="2.5"} 2\n'
            'repro_stage_seconds_bucket{stage="rank",le="+Inf"} 2\n'
            'repro_stage_seconds_sum{stage="rank"} 1.25\n'
            'repro_stage_seconds_count{stage="rank"} 2\n'
        )
        assert reg.to_prometheus() == expected

    def test_prometheus_label_escaping(self) -> None:
        reg = MetricsRegistry()
        fam = reg.gauge("g", labelnames=("path",))
        fam.labels(path='a"b\\c\nd').set(1)
        text = reg.to_prometheus()
        assert '{path="a\\"b\\\\c\\nd"}' in text

    def test_prometheus_label_escaping_order(self) -> None:
        # Backslash must escape first: a value that already contains
        # an escape sequence must not be double-processed.
        reg = MetricsRegistry()
        fam = reg.gauge("g", labelnames=("v",))
        fam.labels(v="\\n").set(1)  # literal backslash + n, not a newline
        assert '{v="\\\\n"}' in reg.to_prometheus()

    def test_prometheus_help_escaping(self) -> None:
        # HELP lines escape backslash and newline; quotes are legal there.
        reg = MetricsRegistry()
        reg.counter("c_total", 'multi\nline "quoted" \\slash').inc()
        text = reg.to_prometheus()
        assert '# HELP c_total multi\\nline "quoted" \\\\slash\n' in text
        assert "\nline" not in text.replace("\\nline", "")

    def test_histogram_quantile_interpolation(self) -> None:
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        assert h.quantile(0.5) is None  # empty
        for v in (0.5, 1.5, 1.5, 3.0):
            h.observe(v)
        # p50 falls in the (1, 2] bucket; p100 clamps to the last bound.
        assert 1.0 <= h.quantile(0.5) <= 2.0
        assert h.quantile(1.0) <= 4.0
        with pytest.raises(ObservabilityError, match="quantile"):
            h.quantile(1.5)

    def test_histogram_quantile_overflow_bucket_clamps(self) -> None:
        # Observations beyond the last finite bound land in +Inf; every
        # quantile touching that bucket clamps to the last finite bound
        # rather than reporting infinity.
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", buckets=(1.0, 2.0))
        for v in (0.5, 5.0, 50.0, 500.0):
            h.observe(v)
        assert h.quantile(0.9) == 2.0
        assert h.quantile(1.0) == 2.0

    def test_histogram_quantile_all_mass_in_overflow(self) -> None:
        # Every observation beyond the last finite bound: the estimate
        # degrades to the last finite bound for any q, including q=0.
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", buckets=(1.0, 2.0))
        for _ in range(3):
            h.observe(10.0)
        assert h.quantile(0.0) == 2.0
        assert h.quantile(0.5) == 2.0
        assert h.quantile(1.0) == 2.0
        assert h.cumulative_buckets()[-1] == (math.inf, 3)

    def test_histogram_quantile_q1_within_finite_bucket(self) -> None:
        # q=1.0 with all mass in finite buckets interpolates to the
        # containing bucket's upper bound, never past it.
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", buckets=(1.0, 2.0, 4.0))
        h.observe(0.25)
        h.observe(0.75)
        assert h.quantile(1.0) == 1.0

    def test_histogram_quantile_boundary_observation(self) -> None:
        # A value exactly on the last finite bound is *inside* that
        # bucket (<= semantics), not overflow.
        reg = MetricsRegistry()
        h = reg.histogram("h_seconds", buckets=(1.0, 2.0))
        h.observe(2.0)
        assert h.cumulative_buckets()[-1] == (math.inf, 1)
        assert h.cumulative_buckets()[-2] == (2.0, 1)
        assert h.quantile(1.0) == 2.0


class TestSnapshots:
    def test_diff_reports_only_changes(self) -> None:
        reg = MetricsRegistry()
        c = reg.counter("runs_total")
        h = reg.histogram("seconds", buckets=(1.0,))
        c.inc()
        before = reg.snapshot()
        c.inc(2)
        h.observe(0.5)
        delta = diff_snapshots(before, reg.snapshot())
        assert delta["runs_total"] == 2.0
        assert delta["seconds:count"] == 1.0
        assert delta["seconds:sum"] == 0.5
        assert "untouched" not in delta


class TestGlobalRegistry:
    def test_singleton_and_reset(self) -> None:
        first = get_registry()
        assert get_registry() is first
        fresh = reset_registry()
        try:
            assert fresh is get_registry()
            assert fresh is not first
        finally:
            reset_registry()

    def test_concurrent_increments_are_not_lost(self) -> None:
        reg = MetricsRegistry()
        c = reg.counter("hits_total")

        def hammer() -> None:
            for _ in range(1000):
                c.inc()

        threads = [threading.Thread(target=hammer) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert c.value == 8000.0

"""Tests for the perf-trajectory ledger and its regression gate."""

from __future__ import annotations

import json

import pytest

from repro.cli import ledger_main
from repro.errors import ObservabilityError
from repro.observability.ledger import (
    BACKFILL_LABELS,
    LEDGER_SCHEMA_VERSION,
    TRACKED_METRICS,
    Finding,
    Ledger,
    LedgerEntry,
    TrackedMetric,
    backfill,
    compare_dir,
    compare_payload,
    discover_bench_files,
    flatten_metrics,
    format_findings,
    format_trend,
    ingest_file,
)

OPERATOR_PAYLOAD = {
    "quick": True,
    "single_solve": {"lazy_seconds": 0.1, "max_score_diff": 1e-12},
    "kappa_sweep": {
        "lazy_seconds": 0.5,
        "speedup": 1.5,
        "points": [0.0, 1.0],  # lists are not trendable
    },
    "equivalent": True,
    "label": "ignored",  # strings are not trendable
}


class TestFlatten:
    def test_dotted_paths_and_coercion(self) -> None:
        flat = flatten_metrics(OPERATOR_PAYLOAD)
        assert flat["single_solve.lazy_seconds"] == 0.1
        assert flat["kappa_sweep.speedup"] == 1.5
        assert flat["equivalent"] == 1.0  # bool → 1.0/0.0
        assert flat["quick"] == 1.0
        assert "kappa_sweep.points" not in flat
        assert "label" not in flat


class TestTrackedMetric:
    def test_direction_validated(self) -> None:
        with pytest.raises(ObservabilityError, match="direction"):
            TrackedMetric("operator", "x", "sideways")

    def test_negative_tolerance_rejected(self) -> None:
        with pytest.raises(ObservabilityError, match="tolerance"):
            TrackedMetric("operator", "x", "lower", -0.1)


class TestLedgerPersistence:
    def test_round_trip(self, tmp_path) -> None:
        path = tmp_path / "LEDGER.json"
        ledger = Ledger()
        ledger.ingest("operator", OPERATOR_PAYLOAD, label="PR2")
        ledger.save(path)
        loaded = Ledger.load(path)
        assert loaded.benches() == ["operator"]
        entry = loaded.latest("operator")
        assert entry.label == "PR2"
        assert entry.metrics["kappa_sweep.speedup"] == 1.5

    def test_schema_version_gates_load(self, tmp_path) -> None:
        path = tmp_path / "LEDGER.json"
        path.write_text(json.dumps({"schema_version": 99, "entries": []}))
        with pytest.raises(ObservabilityError, match="schema_version"):
            Ledger.load(path)
        assert LEDGER_SCHEMA_VERSION == 1

    def test_malformed_entries_rejected(self, tmp_path) -> None:
        path = tmp_path / "LEDGER.json"
        path.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "entries": [{"bench": "operator", "label": "PR2"}],
                }
            )
        )
        with pytest.raises(ObservabilityError, match="missing required key"):
            Ledger.load(path)
        path.write_text(
            json.dumps(
                {
                    "schema_version": 1,
                    "entries": [
                        {
                            "bench": "operator",
                            "label": "PR2",
                            "source": "x",
                            "metrics": {"t": "fast"},
                        }
                    ],
                }
            )
        )
        with pytest.raises(ObservabilityError, match="numeric"):
            Ledger.load(path)

    def test_load_or_empty(self, tmp_path) -> None:
        assert Ledger.load_or_empty(tmp_path / "absent.json").entries == []

    def test_reingest_same_label_replaces(self) -> None:
        ledger = Ledger()
        ledger.ingest("operator", OPERATOR_PAYLOAD, label="PR2")
        newer = dict(OPERATOR_PAYLOAD)
        newer["kappa_sweep"] = dict(OPERATOR_PAYLOAD["kappa_sweep"], speedup=2.0)
        ledger.ingest("operator", newer, label="PR2")
        assert len(ledger.history("operator")) == 1
        assert ledger.latest("operator").metrics["kappa_sweep.speedup"] == 2.0

    def test_latest_is_newest_entry(self) -> None:
        ledger = Ledger()
        ledger.ingest("operator", OPERATOR_PAYLOAD, label="PR2")
        ledger.ingest("operator", OPERATOR_PAYLOAD, label="PR6")
        assert ledger.latest("operator").label == "PR6"
        assert ledger.latest("unknown") is None


class TestCompare:
    def reference_ledger(self) -> Ledger:
        ledger = Ledger()
        ledger.ingest("operator", OPERATOR_PAYLOAD, label="PR2")
        return ledger

    def test_identical_payload_passes(self) -> None:
        findings = compare_payload(
            self.reference_ledger(), "operator", OPERATOR_PAYLOAD
        )
        assert findings and not any(f.failed for f in findings)

    def test_injected_20pct_regression_fails(self) -> None:
        # The tracked timing band is 50%; inject a clear 60% slowdown —
        # and separately check a 20% regression trips a 10%-band metric.
        slow = json.loads(json.dumps(OPERATOR_PAYLOAD))
        slow["single_solve"]["lazy_seconds"] = 0.1 * 1.6
        findings = compare_payload(self.reference_ledger(), "operator", slow)
        failed = [f for f in findings if f.failed]
        assert [f.metric for f in failed] == ["single_solve.lazy_seconds"]
        assert failed[0].status == "regression"
        assert "worse than reference" in failed[0].detail

        tight = (TrackedMetric("operator", "single_solve.lazy_seconds",
                               "lower", 0.1),)
        slow["single_solve"]["lazy_seconds"] = 0.1 * 1.2
        findings = compare_payload(
            self.reference_ledger(), "operator", slow, tracked=tight
        )
        assert [f.status for f in findings] == ["regression"]

    def test_higher_is_better_direction(self) -> None:
        worse = json.loads(json.dumps(OPERATOR_PAYLOAD))
        worse["kappa_sweep"]["speedup"] = 1.5 * 0.5
        findings = compare_payload(self.reference_ledger(), "operator", worse)
        assert any(
            f.metric == "kappa_sweep.speedup" and f.failed for f in findings
        )

    def test_absolute_limit_holds_without_history(self) -> None:
        bad = json.loads(json.dumps(OPERATOR_PAYLOAD))
        bad["equivalent"] = False
        findings = compare_payload(Ledger(), "operator", bad)
        equivalent = [f for f in findings if f.metric == "equivalent"]
        assert equivalent[0].status == "regression"

    def test_missing_required_metric_fails(self) -> None:
        tracked = (TrackedMetric("operator", "absent.metric", "lower",
                                 required=True),)
        findings = compare_payload(
            Ledger(), "operator", OPERATOR_PAYLOAD, tracked=tracked
        )
        assert [f.status for f in findings] == ["missing"]
        assert findings[0].failed

    def test_no_reference_is_not_a_failure(self) -> None:
        tracked = (TrackedMetric("operator", "single_solve.lazy_seconds",
                                 "lower", 0.5),)
        findings = compare_payload(
            Ledger(), "operator", OPERATOR_PAYLOAD, tracked=tracked
        )
        assert [f.status for f in findings] == ["no_reference"]
        assert not findings[0].failed

    def test_tracked_contract_covers_committed_benches(self) -> None:
        assert {tm.bench for tm in TRACKED_METRICS} == set(BACKFILL_LABELS)


class TestFileDrivers:
    def write_bench(self, results_dir, payload=OPERATOR_PAYLOAD) -> None:
        results_dir.mkdir(parents=True, exist_ok=True)
        (results_dir / "BENCH_operator.json").write_text(
            json.dumps(payload) + "\n"
        )

    def test_discover_and_backfill(self, tmp_path) -> None:
        self.write_bench(tmp_path / "results")
        found = discover_bench_files(tmp_path / "results")
        assert list(found) == ["operator"]
        ledger = backfill(tmp_path / "results", tmp_path / "LEDGER.json")
        entry = ledger.latest("operator")
        assert entry.label == BACKFILL_LABELS["operator"]
        assert entry.source == "BENCH_operator.json"
        # Idempotent: rerunning replaces, never duplicates.
        ledger = backfill(tmp_path / "results", tmp_path / "LEDGER.json")
        assert len(ledger.history("operator")) == 1

    def test_ingest_file_then_compare_dir(self, tmp_path) -> None:
        results = tmp_path / "results"
        self.write_bench(results)
        ingest_file(
            tmp_path / "LEDGER.json",
            "operator",
            results / "BENCH_operator.json",
            label="PR6",
        )
        findings = compare_dir(results, tmp_path / "LEDGER.json")
        assert findings and not any(f.failed for f in findings)

        slow = json.loads(json.dumps(OPERATOR_PAYLOAD))
        slow["single_solve"]["lazy_seconds"] = 0.1 * 1.6
        self.write_bench(results, slow)
        findings = compare_dir(results, tmp_path / "LEDGER.json")
        assert any(f.failed for f in findings)

    def test_formatting(self) -> None:
        findings = [
            Finding("operator", "a", "regression", 2.0, 1.0, "too slow"),
            Finding("operator", "b", "ok", 1.0, 1.0),
        ]
        text = format_findings(findings)
        assert text.splitlines()[0].startswith("FAIL")  # failures first
        ledger = Ledger()
        ledger.ingest("operator", OPERATOR_PAYLOAD, label="PR2")
        trend = format_trend(ledger)
        assert "PR2" in trend and "kappa_sweep.speedup" in trend


class TestLedgerCli:
    def test_ingest_compare_show_and_regression_exit(
        self, tmp_path, capsys
    ) -> None:
        results = tmp_path / "results"
        results.mkdir()
        (results / "BENCH_operator.json").write_text(
            json.dumps(OPERATOR_PAYLOAD) + "\n"
        )
        ledger_args = ["--results-dir", str(results)]
        assert ledger_main(["backfill", *ledger_args]) == 0
        assert ledger_main(["compare", *ledger_args]) == 0
        out = capsys.readouterr().out
        assert "within tolerance" in out

        slow = json.loads(json.dumps(OPERATOR_PAYLOAD))
        slow["single_solve"]["lazy_seconds"] = 0.1 * 1.6
        (results / "BENCH_operator.json").write_text(json.dumps(slow) + "\n")
        assert ledger_main(["compare", *ledger_args]) == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.err
        assert "single_solve.lazy_seconds" in captured.out

        assert ledger_main(["show", *ledger_args]) == 0
        assert "PR2" in capsys.readouterr().out

"""Tests for the correlated JSON-lines event log."""

from __future__ import annotations

import json
import threading

import numpy as np
import pytest

from repro.errors import ObservabilityError
from repro.observability import (
    EventLog,
    current_event_log,
    current_run_id,
    emit,
    new_run_id,
    read_events,
)


class TestEventLog:
    def test_every_event_carries_the_run_id(self) -> None:
        log = EventLog(run_id="run-test")
        log.emit("a")
        log.emit("b", x=1)
        assert [e["run_id"] for e in log.events()] == ["run-test", "run-test"]

    def test_run_id_generated_when_omitted(self) -> None:
        assert EventLog().run_id.startswith("run-")
        assert new_run_id() != new_run_id()

    def test_seq_is_monotonic_and_len_counts_all(self) -> None:
        log = EventLog(buffer=2)
        for _ in range(5):
            log.emit("tick")
        assert len(log) == 5
        assert [e["seq"] for e in log.events()] == [4, 5]  # ring kept tail

    def test_kind_filter_and_limit(self) -> None:
        log = EventLog()
        log.emit("a")
        log.emit("b")
        log.emit("a")
        assert [e["seq"] for e in log.events("a")] == [1, 3]
        assert [e["seq"] for e in log.events(limit=1)] == [3]

    def test_buffer_must_be_positive(self) -> None:
        with pytest.raises(ObservabilityError, match="buffer"):
            EventLog(buffer=0)

    def test_numpy_fields_serialize(self, tmp_path) -> None:
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("solve", residual=np.float64(0.5), n=np.int64(7))
        event = read_events(path)[0]
        assert event["residual"] == 0.5
        assert event["n"] == 7

    def test_jsonl_round_trip(self, tmp_path) -> None:
        path = tmp_path / "events.jsonl"
        with EventLog(path, run_id="run-rt") as log:
            log.emit("start", stage="rank")
            log.emit("end")
        events = read_events(path)
        assert [e["kind"] for e in events] == ["start", "end"]
        assert all(e["run_id"] == "run-rt" for e in events)

    def test_torn_trailing_line_is_skipped(self, tmp_path) -> None:
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log:
            log.emit("whole")
        with path.open("a", encoding="utf-8") as fh:
            fh.write('{"kind": "torn", "ru')  # crash mid-write
        events = read_events(path)
        assert [e["kind"] for e in events] == ["whole"]

    def test_close_is_idempotent(self, tmp_path) -> None:
        log = EventLog(tmp_path / "events.jsonl")
        log.close()
        log.close()


class TestAmbientEmit:
    def test_emit_is_noop_without_active_log(self) -> None:
        assert current_event_log() is None
        assert current_run_id() is None
        assert emit("orphan") is None

    def test_activate_routes_module_level_emit(self) -> None:
        log = EventLog(run_id="run-amb")
        with log.activate():
            assert current_event_log() is log
            assert current_run_id() == "run-amb"
            event = emit("inside", x=1)
        assert event is not None and event["run_id"] == "run-amb"
        assert current_event_log() is None
        assert [e["kind"] for e in log.events()] == ["inside"]

    def test_activation_nests_and_restores(self) -> None:
        outer, inner = EventLog(run_id="run-o"), EventLog(run_id="run-i")
        with outer.activate():
            with inner.activate():
                assert current_run_id() == "run-i"
            assert current_run_id() == "run-o"

    def test_activation_does_not_leak_into_threads(self) -> None:
        log = EventLog()
        seen: list[object] = []

        def worker() -> None:
            seen.append(current_event_log())
            with log.activate():
                emit("from-thread")

        with log.activate():
            thread = threading.Thread(target=worker)
            thread.start()
            thread.join()
        # Fresh threads start without the ambient log (contextvars do not
        # propagate) and must re-activate inside the thread body.
        assert seen == [None]
        assert [e["kind"] for e in log.events()] == ["from-thread"]

    def test_concurrent_emits_are_not_lost(self) -> None:
        log = EventLog(buffer=10_000)

        def hammer() -> None:
            with log.activate():
                for _ in range(200):
                    emit("tick")

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert len(log) == 800
        assert sorted(e["seq"] for e in log.events()) == list(range(1, 801))

    def test_file_lines_are_valid_json(self, tmp_path) -> None:
        path = tmp_path / "events.jsonl"
        with EventLog(path) as log, log.activate():
            emit("a", nested={"x": [1, 2]}, text='quo"te')
        for line in path.read_text(encoding="utf-8").splitlines():
            json.loads(line)


class TestAuditEvents:
    def test_violations_emit_on_the_active_log(self) -> None:
        from repro.audit.invariants import InvariantViolation, record_violations

        log = EventLog()
        violation = InvariantViolation(
            invariant="row_stochastic", subject="T'", message="row 3", value=0.1
        )
        with log.activate():
            record_violations([violation], strict=False, warn=False)
        (event,) = log.events("audit_violation")
        assert event["invariant"] == "row_stochastic"
        assert event["run_id"] == log.run_id
        assert event["strict"] is False

"""Unit tests for the attack models."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.graph import PageGraph
from repro.sources import SourceAssignment
from repro.spam import (
    CrossSourceAttack,
    HijackAttack,
    HoneypotAttack,
    IntraSourceAttack,
    LinkExchangeAttack,
    LinkFarmAttack,
)


@pytest.fixture()
def web():
    """Six pages in three sources; a small ring of inter-source links."""
    g = PageGraph.from_edges(
        np.array([0, 1, 2, 3, 4, 5]), np.array([2, 3, 4, 5, 0, 1]), 6
    )
    a = SourceAssignment(np.array([0, 0, 1, 1, 2, 2]))
    return g, a


class TestIntraSource:
    def test_pages_added_to_target_source(self, web):
        g, a = web
        out = IntraSourceAttack(target_page=0, n_pages=5).apply(g, a)
        assert out.graph.n_nodes == 11
        assert out.injected_pages.size == 5
        assert (out.assignment.page_to_source[6:] == 0).all()
        assert out.target_source == 0

    def test_each_injected_page_links_to_target(self, web):
        g, a = web
        out = IntraSourceAttack(0, 3).apply(g, a)
        for page in out.injected_pages:
            assert out.graph.has_edge(int(page), 0)

    def test_original_untouched(self, web):
        g, a = web
        IntraSourceAttack(0, 3).apply(g, a)
        assert g.n_nodes == 6

    def test_bad_target_rejected(self, web):
        g, a = web
        with pytest.raises(ScenarioError):
            IntraSourceAttack(99, 1).apply(g, a)

    def test_zero_pages_rejected(self):
        with pytest.raises(ScenarioError):
            IntraSourceAttack(0, 0)


class TestCrossSource:
    def test_pages_go_to_colluding_source(self, web):
        g, a = web
        out = CrossSourceAttack(0, colluding_sources=1, n_pages=4).apply(g, a)
        assert (out.assignment.page_to_source[6:] == 1).all()
        assert out.target_source == 0

    def test_round_robin_over_sources(self, web):
        g, a = web
        out = CrossSourceAttack(0, colluding_sources=[1, 2], n_pages=4).apply(g, a)
        hosts = out.assignment.page_to_source[6:]
        np.testing.assert_array_equal(hosts, [1, 2, 1, 2])

    def test_rejects_target_own_source(self, web):
        g, a = web
        with pytest.raises(ScenarioError, match="own source"):
            CrossSourceAttack(0, colluding_sources=0, n_pages=1).apply(g, a)

    def test_rejects_unknown_source(self, web):
        g, a = web
        with pytest.raises(ScenarioError, match="out of range"):
            CrossSourceAttack(0, colluding_sources=9, n_pages=1).apply(g, a)


class TestLinkFarm:
    def test_creates_fresh_sources(self, web):
        g, a = web
        out = LinkFarmAttack(0, n_pages=6, n_sources=3).apply(g, a)
        assert out.injected_sources.size == 3
        assert out.assignment.n_sources == 6
        # Every farm page links to the target.
        for page in out.injected_pages:
            assert out.graph.has_edge(int(page), 0)

    def test_sources_capped_by_pages(self, web):
        g, a = web
        attack = LinkFarmAttack(0, n_pages=2, n_sources=10)
        assert attack.n_sources == 2

    def test_interlink_ring(self, web):
        g, a = web
        out = LinkFarmAttack(0, n_pages=4, n_sources=2, interlink=True).apply(g, a)
        first = int(out.injected_pages[0])
        # Page 0 of the farm links to page 1 (first page of source 1).
        assert out.graph.has_edge(first, first + 1)


class TestLinkExchange:
    def test_ring_structure(self, web):
        g, a = web
        out = LinkExchangeAttack(0, n_members=3, pages_per_member=2).apply(g, a)
        assert out.injected_pages.size == 6
        assert out.injected_sources.size == 3
        base = int(out.injected_pages[0])
        hubs = [base, base + 2, base + 4]
        # Every hub promotes the target.
        for hub in hubs:
            assert out.graph.has_edge(hub, 0)
        # Ring: member 0's pages link to member 1's hub.
        assert out.graph.has_edge(base, hubs[1])
        assert out.graph.has_edge(base + 1, hubs[1])
        # And backwards to member 2's hub.
        assert out.graph.has_edge(base, hubs[2])

    def test_member_assignment(self, web):
        g, a = web
        out = LinkExchangeAttack(0, 2, 3).apply(g, a)
        hosts = out.assignment.page_to_source[6:]
        np.testing.assert_array_equal(hosts, [3, 3, 3, 4, 4, 4])


class TestHijack:
    def test_adds_links_no_pages(self, web):
        g, a = web
        out = HijackAttack(0, victim_pages=[2, 4]).apply(g, a)
        assert out.graph.n_nodes == 6
        assert out.injected_pages.size == 0
        np.testing.assert_array_equal(out.hijacked_pages, [2, 4])
        assert out.graph.has_edge(2, 0)
        assert out.graph.has_edge(4, 0)

    def test_rejects_self_victim(self):
        with pytest.raises(ScenarioError, match="own victim"):
            HijackAttack(0, victim_pages=[0, 1])

    def test_rejects_empty_victims(self):
        with pytest.raises(ScenarioError):
            HijackAttack(0, victim_pages=[])

    def test_rejects_out_of_range_victims(self, web):
        g, a = web
        with pytest.raises(ScenarioError, match="out of range"):
            HijackAttack(0, victim_pages=[50]).apply(g, a)


class TestHoneypot:
    def test_structure(self, web):
        g, a = web
        out = HoneypotAttack(0, n_honeypot_pages=2, inducer_pages=[2, 3, 4]).apply(
            g, a
        )
        assert out.injected_pages.size == 2
        assert out.injected_sources.size == 1
        pot = out.injected_pages
        # Inducers link into honeypot pages (round-robin).
        assert out.graph.has_edge(2, int(pot[0]))
        assert out.graph.has_edge(3, int(pot[1]))
        assert out.graph.has_edge(4, int(pot[0]))
        # Honeypot pages forward to the target.
        assert out.graph.has_edge(int(pot[0]), 0)
        assert out.graph.has_edge(int(pot[1]), 0)

    def test_rejects_target_as_inducer(self, web):
        g, a = web
        with pytest.raises(ScenarioError, match="induce"):
            HoneypotAttack(0, 1, inducer_pages=[0]).apply(g, a)


class TestSpammedWebValidation:
    def test_target_source_consistency_enforced(self, web):
        g, a = web
        from repro.spam.base import SpammedWeb

        with pytest.raises(ScenarioError):
            SpammedWeb(
                graph=g,
                assignment=a,
                target_page=0,
                target_source=2,  # page 0 lives in source 0
                injected_pages=np.empty(0, dtype=np.int64),
            )

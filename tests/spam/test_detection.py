"""Unit tests for the statistical spam detector."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.spam import OutlierSpamDetector, source_features
from repro.spam.detection import SourceFeatures


class TestSourceFeatures:
    def test_shape_and_names(self, tiny_dataset):
        ds = tiny_dataset
        feats = source_features(ds.graph, ds.assignment)
        assert feats.values.shape == (ds.n_sources, len(feats.names))
        assert "reciprocity" in feats.names

    def test_reciprocity_of_exchange(self, tiny_dataset):
        """Planted spam sources (a reciprocal exchange ring) must show
        higher reciprocity than the median legit source."""
        ds = tiny_dataset
        feats = source_features(ds.graph, ds.assignment)
        idx = feats.names.index("reciprocity")
        spam_rec = feats.values[ds.spam_sources, idx].mean()
        legit_rec = np.median(
            np.delete(feats.values[:, idx], ds.spam_sources)
        )
        assert spam_rec > legit_rec

    def test_values_finite(self, tiny_dataset):
        ds = tiny_dataset
        feats = source_features(ds.graph, ds.assignment)
        assert np.isfinite(feats.values).all()


class TestOutlierDetector:
    def test_scores_flag_planted_spam(self, tiny_dataset):
        """Unsupervised detection must beat chance clearly on the planted
        communities."""
        ds = tiny_dataset
        detector = OutlierSpamDetector()
        fraction = 2 * ds.spam_sources.size / ds.n_sources
        _, flagged = detector.detect(
            ds.graph, ds.assignment, top_fraction=fraction
        )
        hits = np.isin(ds.spam_sources, flagged).mean()
        chance = fraction
        assert hits > 3 * chance

    def test_scores_shape(self, tiny_dataset):
        ds = tiny_dataset
        scores = OutlierSpamDetector().score(
            source_features(ds.graph, ds.assignment)
        )
        assert scores.shape == (ds.n_sources,)
        assert (scores >= 0).all()

    def test_constant_feature_carries_no_signal(self):
        feats = SourceFeatures(
            names=("const", "varying"),
            values=np.column_stack(
                [np.ones(10), np.concatenate([np.zeros(9), [100.0]])]
            ),
        )
        scores = OutlierSpamDetector().score(feats)
        # Only the varying feature should matter; item 9 is the outlier.
        assert scores.argmax() == 9
        assert scores[:9].max() < scores[9]

    def test_clip_bounds_scores(self):
        feats = SourceFeatures(
            names=("f",),
            values=np.concatenate([np.zeros(20), [1e9]]).reshape(-1, 1),
        )
        scores = OutlierSpamDetector(clip=5.0).score(feats)
        assert scores.max() <= 5.0

    def test_validation(self, tiny_dataset):
        with pytest.raises(ScenarioError):
            OutlierSpamDetector(clip=0.0)
        ds = tiny_dataset
        with pytest.raises(ScenarioError):
            OutlierSpamDetector().detect(
                ds.graph, ds.assignment, top_fraction=0.0
            )

"""Unit tests for attack evaluation and target selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.errors import ScenarioError
from repro.ranking import sourcerank
from repro.sources import SourceGraph
from repro.spam import IntraSourceAttack, LinkFarmAttack, evaluate_attack, pick_targets
from repro.throttle import ThrottleVector


@pytest.fixture(scope="module")
def clean(tiny_dataset):
    return tiny_dataset


class TestEvaluateAttack:
    def test_records_cover_page_and_source(self, clean):
        ev = evaluate_attack(
            clean.graph,
            clean.assignment,
            IntraSourceAttack(0, 10),
        )
        assert ev.pagerank_record.target == 0
        assert ev.srsr_record.target == clean.assignment.source_of(0)
        assert ev.pagerank_after.n == clean.graph.n_nodes + 10

    def test_pagerank_boost_positive(self, clean):
        ev = evaluate_attack(clean.graph, clean.assignment, IntraSourceAttack(0, 50))
        assert ev.pagerank_record.amplification > 1.0

    def test_precomputed_baselines_reused(self, clean):
        from repro.ranking import pagerank, spam_resilient_sourcerank

        params = RankingParams()
        pr = pagerank(clean.graph, params)
        sg = SourceGraph.from_page_graph(clean.graph, clean.assignment)
        sr = spam_resilient_sourcerank(sg, None, params)
        ev = evaluate_attack(
            clean.graph,
            clean.assignment,
            IntraSourceAttack(0, 5),
            pagerank_before=pr,
            srsr_before=sr,
        )
        assert ev.pagerank_before is pr
        assert ev.srsr_before is sr

    def test_kappa_padded_for_new_sources(self, clean):
        kappa = ThrottleVector.zeros(clean.n_sources)
        ev = evaluate_attack(
            clean.graph,
            clean.assignment,
            LinkFarmAttack(0, n_pages=4, n_sources=2),
            kappa=kappa,
        )
        assert ev.srsr_after.n == clean.n_sources + 2

    def test_oversized_kappa_rejected(self, clean):
        kappa = ThrottleVector.zeros(clean.n_sources + 100)
        with pytest.raises(ScenarioError):
            evaluate_attack(
                clean.graph, clean.assignment, IntraSourceAttack(0, 1), kappa=kappa
            )


class TestPickTargets:
    def test_protocol(self, clean, rng):
        sg = SourceGraph.from_page_graph(clean.graph, clean.assignment)
        sr = sourcerank(sg)
        pairs = pick_targets(sr, clean.assignment, np.random.default_rng(1), n_targets=5)
        assert len(pairs) == 5
        pct = sr.percentiles()
        for source, page in pairs:
            assert clean.assignment.source_of(page) == source
            assert pct[source] <= 50.0 + 1e-9  # bottom half only

    def test_exclusions_respected(self, clean):
        sg = SourceGraph.from_page_graph(clean.graph, clean.assignment)
        sr = sourcerank(sg)
        excluded = sr.order()[sr.n // 2 :][:30]  # exclude most of the bottom
        pairs = pick_targets(
            sr,
            clean.assignment,
            np.random.default_rng(2),
            n_targets=3,
            exclude_sources=np.asarray(excluded),
        )
        chosen = {s for s, _ in pairs}
        assert not chosen & set(int(e) for e in excluded)

    def test_deterministic_given_seed(self, clean):
        sg = SourceGraph.from_page_graph(clean.graph, clean.assignment)
        sr = sourcerank(sg)
        a = pick_targets(sr, clean.assignment, np.random.default_rng(7), n_targets=4)
        b = pick_targets(sr, clean.assignment, np.random.default_rng(7), n_targets=4)
        assert a == b

    def test_insufficient_pool_rejected(self, clean):
        sg = SourceGraph.from_page_graph(clean.graph, clean.assignment)
        sr = sourcerank(sg)
        with pytest.raises(ScenarioError, match="eligible"):
            pick_targets(
                sr,
                clean.assignment,
                np.random.default_rng(3),
                n_targets=10,
                bottom_fraction=0.01,
            )

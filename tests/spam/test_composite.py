"""Unit tests for composite attacks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ScenarioError
from repro.graph import PageGraph
from repro.sources import SourceAssignment
from repro.spam import (
    CompositeAttack,
    HijackAttack,
    IntraSourceAttack,
    LinkFarmAttack,
    full_campaign,
)


@pytest.fixture()
def web():
    g = PageGraph.from_edges(
        np.array([0, 1, 2, 3]), np.array([1, 2, 3, 0]), 8
    )
    a = SourceAssignment(np.array([0, 0, 1, 1, 2, 2, 3, 3]))
    return g, a


class TestCompositeAttack:
    def test_stages_accumulate(self, web):
        g, a = web
        composite = CompositeAttack(
            IntraSourceAttack(0, 3),
            LinkFarmAttack(0, 4, n_sources=2),
        )
        out = composite.apply(g, a)
        assert out.injected_pages.size == 7
        assert out.injected_sources.size == 2
        assert out.graph.n_nodes == 8 + 7
        assert "intra-source" in out.description
        assert "link farm" in out.description

    def test_stage_sees_previous_stage_output(self, web):
        """A hijack can victimize pages created by an earlier stage."""
        g, a = web
        farm_first_page = g.n_nodes  # first page the farm will create
        composite = CompositeAttack(
            LinkFarmAttack(0, 3, n_sources=1),
            HijackAttack(0, [farm_first_page]),
        )
        out = composite.apply(g, a)
        assert out.graph.has_edge(farm_first_page, 0)
        assert farm_first_page in out.hijacked_pages

    def test_mismatched_targets_rejected(self, web):
        g, a = web
        composite = CompositeAttack(
            IntraSourceAttack(0, 1),
            IntraSourceAttack(5, 1),
        )
        with pytest.raises(ScenarioError, match="disagree"):
            composite.apply(g, a)

    def test_empty_rejected(self):
        with pytest.raises(ScenarioError):
            CompositeAttack()

    def test_composite_stronger_than_parts(self, tiny_dataset):
        """Combining vectors must promote the target at least as much as
        the strongest single vector (Section 2's 'more effective')."""
        from repro.spam import evaluate_attack

        ds = tiny_dataset
        target = int(ds.assignment.pages_of(3)[0])
        victims = ds.assignment.pages_of(5)[:3]
        victims = victims[victims != target]
        farm = LinkFarmAttack(target, 20, n_sources=2)
        hijack = HijackAttack(target, victims)
        both = CompositeAttack(farm, hijack)
        amp = {
            name: evaluate_attack(
                ds.graph, ds.assignment, attack
            ).pagerank_record.amplification
            for name, attack in (("farm", farm), ("hijack", hijack), ("both", both))
        }
        assert amp["both"] >= max(amp["farm"], amp["hijack"]) - 1e-9


class TestFullCampaign:
    def test_builds_three_stages(self, web):
        g, a = web
        campaign = full_campaign(
            0,
            farm_pages=6,
            farm_sources=2,
            victim_pages=[2, 3],
            honeypot_pages=2,
            inducer_pages=[4, 5],
        )
        out = campaign.apply(g, a)
        # farm: 6 pages/2 sources; honeypot: 2 pages/1 source.
        assert out.injected_pages.size == 8
        assert out.injected_sources.size == 3
        assert out.hijacked_pages.size == 4  # 2 victims + 2 inducers
        assert out.target_page == 0

"""Unit tests for :mod:`repro.sources.assignment`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SourceAssignmentError
from repro.sources import SourceAssignment


class TestConstruction:
    def test_basic(self):
        a = SourceAssignment(np.array([0, 1, 0, 2]))
        assert a.n_pages == 4
        assert a.n_sources == 3

    def test_dense_requirement(self):
        with pytest.raises(SourceAssignmentError, match="dense"):
            SourceAssignment(np.array([0, 2]))  # id 1 missing

    def test_negative_rejected(self):
        with pytest.raises(SourceAssignmentError):
            SourceAssignment(np.array([0, -1]))

    def test_float_rejected(self):
        with pytest.raises(SourceAssignmentError, match="integral"):
            SourceAssignment(np.array([0.0, 1.0]))

    def test_2d_rejected(self):
        with pytest.raises(SourceAssignmentError):
            SourceAssignment(np.zeros((2, 2), dtype=np.int64))

    def test_names_length_checked(self):
        with pytest.raises(SourceAssignmentError, match="source_names"):
            SourceAssignment(np.array([0, 1]), source_names=["only-one"])

    def test_empty_assignment(self):
        a = SourceAssignment(np.array([], dtype=np.int64))
        assert a.n_pages == 0
        assert a.n_sources == 0


class TestConstructors:
    def test_from_keys_first_seen_order(self):
        a = SourceAssignment.from_keys(["b.com", "a.com", "b.com"])
        assert list(a.page_to_source) == [0, 1, 0]
        assert a.name_of(0) == "b.com"

    def test_from_urls_host(self):
        urls = ["http://a.com/1", "http://a.com/2", "http://b.org/x"]
        a = SourceAssignment.from_urls(urls)
        assert a.n_sources == 2
        assert a.source_of(0) == a.source_of(1)

    def test_from_urls_domain(self):
        urls = ["http://x.a.com/1", "http://y.a.com/2"]
        by_host = SourceAssignment.from_urls(urls, key="host")
        by_domain = SourceAssignment.from_urls(urls, key="domain")
        assert by_host.n_sources == 2
        assert by_domain.n_sources == 1

    def test_from_urls_callable(self):
        a = SourceAssignment.from_urls(["u1", "u2"], key=lambda u: "same")
        assert a.n_sources == 1

    def test_from_urls_bad_key(self):
        with pytest.raises(SourceAssignmentError):
            SourceAssignment.from_urls(["u"], key="bogus")

    def test_identity(self):
        a = SourceAssignment.identity(5)
        assert a.n_sources == 5
        assert a.source_of(3) == 3

    def test_single_source(self):
        a = SourceAssignment.single_source(5)
        assert a.n_sources == 1


class TestAccessors:
    def test_source_sizes(self):
        a = SourceAssignment(np.array([0, 0, 1]))
        assert list(a.source_sizes) == [2, 1]

    def test_pages_of(self):
        a = SourceAssignment(np.array([0, 1, 0]))
        np.testing.assert_array_equal(a.pages_of(0), [0, 2])

    def test_pages_of_range_check(self):
        a = SourceAssignment(np.array([0]))
        with pytest.raises(SourceAssignmentError):
            a.pages_of(5)

    def test_source_of_range_check(self):
        a = SourceAssignment(np.array([0]))
        with pytest.raises(SourceAssignmentError):
            a.source_of(5)

    def test_name_of_without_names(self):
        a = SourceAssignment(np.array([0]))
        with pytest.raises(SourceAssignmentError, match="no source names"):
            a.name_of(0)

    def test_immutability(self):
        a = SourceAssignment(np.array([0, 1]))
        with pytest.raises(ValueError):
            a.page_to_source[0] = 1


class TestExtended:
    def test_extend_existing_sources(self):
        a = SourceAssignment(np.array([0, 1]))
        b = a.extended(2, [1, 0])
        assert b.n_pages == 4
        assert b.source_of(2) == 1

    def test_extend_new_sources(self):
        a = SourceAssignment(np.array([0, 1]))
        b = a.extended(1, [2])
        assert b.n_sources == 3

    def test_extend_names_propagate(self):
        a = SourceAssignment.from_keys(["x"])
        b = a.extended(1, [1])
        assert b.name_of(0) == "x"
        assert "spam" in b.name_of(1)

    def test_extend_shape_check(self):
        a = SourceAssignment(np.array([0]))
        with pytest.raises(SourceAssignmentError):
            a.extended(2, [0])

    def test_original_untouched(self):
        a = SourceAssignment(np.array([0]))
        a.extended(1, [0])
        assert a.n_pages == 1

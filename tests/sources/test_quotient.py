"""Unit + property tests for the quotient-graph kernels."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SourceAssignmentError
from repro.graph import PageGraph
from repro.sources import (
    SourceAssignment,
    quotient_edge_counts,
    quotient_unique_page_counts,
)


def _web(edges, n_pages, mapping):
    src = np.array([e[0] for e in edges], dtype=np.int64)
    dst = np.array([e[1] for e in edges], dtype=np.int64)
    return (
        PageGraph.from_edges(src, dst, n_pages),
        SourceAssignment(np.asarray(mapping, dtype=np.int64)),
    )


class TestEdgeCounts:
    def test_simple(self):
        # pages 0,1 in source 0; page 2 in source 1.
        g, a = _web([(0, 2), (1, 2), (0, 1)], 3, [0, 0, 1])
        m = quotient_edge_counts(g, a)
        assert m[0, 1] == 2
        assert m[0, 0] == 1  # intra edge 0->1

    def test_exclude_intra(self):
        g, a = _web([(0, 1), (0, 2)], 3, [0, 0, 1])
        m = quotient_edge_counts(g, a, include_intra=False)
        assert m[0, 0] == 0
        assert m[0, 1] == 1

    def test_empty_graph(self):
        g = PageGraph.empty(3)
        a = SourceAssignment(np.array([0, 0, 1]))
        m = quotient_edge_counts(g, a)
        assert m.nnz == 0

    def test_mismatched_sizes_rejected(self, small_graph):
        a = SourceAssignment(np.array([0, 1]))
        with pytest.raises(SourceAssignmentError):
            quotient_edge_counts(small_graph, a)

    def test_total_edges_conserved(self, small_graph, small_assignment):
        m = quotient_edge_counts(small_graph, small_assignment)
        assert m.sum() == small_graph.n_edges


class TestUniquePageCounts:
    def test_consensus_collapses_page_fanout(self):
        """One page linking to 3 pages of the same target counts once."""
        g, a = _web([(0, 2), (0, 3), (0, 4)], 5, [0, 0, 1, 1, 1])
        m = quotient_unique_page_counts(g, a)
        assert m[0, 1] == 1

    def test_distinct_pages_accumulate(self):
        """Section 3.2: many unique pages = stronger consensus."""
        g, a = _web([(0, 3), (1, 3), (2, 4)], 5, [0, 0, 0, 1, 1])
        m = quotient_unique_page_counts(g, a)
        assert m[0, 1] == 3

    def test_page_counts_multiple_targets(self):
        """A page linking to two *different* sources counts once per source."""
        g, a = _web([(0, 1), (0, 2)], 3, [0, 1, 2])
        m = quotient_unique_page_counts(g, a)
        assert m[0, 1] == 1
        assert m[0, 2] == 1

    def test_never_exceeds_edge_counts(self, small_graph, small_assignment):
        raw = quotient_edge_counts(small_graph, small_assignment)
        consensus = quotient_unique_page_counts(small_graph, small_assignment)
        diff = (raw - consensus).tocoo()
        assert (diff.data >= 0).all()

    def test_bounded_by_source_size(self, small_graph, small_assignment):
        """w(s_i, s_j) can never exceed the number of pages in s_i."""
        m = quotient_unique_page_counts(small_graph, small_assignment).tocoo()
        sizes = small_assignment.source_sizes
        assert (m.data <= sizes[m.row]).all()

    def test_exclude_intra(self):
        g, a = _web([(0, 1)], 2, [0, 0])
        m = quotient_unique_page_counts(g, a, include_intra=False)
        assert m.nnz == 0

    @given(st.data())
    @settings(max_examples=50, deadline=None)
    def test_identity_assignment_equals_binary_adjacency(self, data):
        """With one page per source, consensus quotient == page adjacency."""
        n = data.draw(st.integers(min_value=2, max_value=12))
        edges = data.draw(
            st.lists(
                st.tuples(
                    st.integers(min_value=0, max_value=n - 1),
                    st.integers(min_value=0, max_value=n - 1),
                ),
                max_size=40,
            )
        )
        src = np.array([e[0] for e in edges] or [], dtype=np.int64)
        dst = np.array([e[1] for e in edges] or [], dtype=np.int64)
        g = PageGraph.from_edges(src, dst, n)
        a = SourceAssignment.identity(n)
        m = quotient_unique_page_counts(g, a)
        adj = g.to_scipy()
        assert (m != adj).nnz == 0

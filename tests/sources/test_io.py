"""Unit tests for source-level persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import SourceAssignmentError
from repro.sources import (
    SourceAssignment,
    SourceGraph,
    load_assignment,
    load_source_graph,
    save_assignment,
    save_source_graph,
)


class TestAssignmentIO:
    def test_roundtrip_plain(self, small_assignment, tmp_path):
        path = tmp_path / "a.npz"
        save_assignment(small_assignment, path)
        assert load_assignment(path) == small_assignment

    def test_roundtrip_with_names(self, tmp_path):
        a = SourceAssignment.from_keys(["x.com", "y.org", "x.com"])
        path = tmp_path / "a.npz"
        save_assignment(a, path)
        loaded = load_assignment(path)
        assert loaded == a
        assert loaded.name_of(0) == "x.com"

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez_compressed(path, unrelated=np.arange(2))
        with pytest.raises(SourceAssignmentError, match="missing field"):
            load_assignment(path)

    def test_bad_version(self, tmp_path, small_assignment):
        path = tmp_path / "a.npz"
        np.savez_compressed(
            path,
            format_version=np.int64(99),
            page_to_source=small_assignment.page_to_source,
        )
        with pytest.raises(SourceAssignmentError, match="version"):
            load_assignment(path)


class TestSourceGraphIO:
    def test_roundtrip(self, small_source_graph, tmp_path):
        path = tmp_path / "sg.npz"
        save_source_graph(small_source_graph, path)
        loaded = load_source_graph(path)
        assert loaded.n_sources == small_source_graph.n_sources
        assert loaded.weighting == small_source_graph.weighting
        diff = (loaded.matrix - small_source_graph.matrix).tocoo()
        assert diff.nnz == 0 or np.abs(diff.data).max() < 1e-15

    def test_loaded_graph_ranks_identically(self, small_source_graph, tmp_path):
        from repro.ranking import sourcerank

        path = tmp_path / "sg.npz"
        save_source_graph(small_source_graph, path)
        loaded = load_source_graph(path)
        np.testing.assert_allclose(
            sourcerank(loaded).scores,
            sourcerank(small_source_graph).scores,
            atol=1e-12,
        )

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez_compressed(path, unrelated=np.arange(2))
        with pytest.raises(SourceAssignmentError, match="missing field"):
            load_source_graph(path)

"""Unit tests for the source-edge weighting schemes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.graph import PageGraph, is_row_stochastic
from repro.sources import SourceAssignment, consensus_weights, uniform_weights


def _hijack_web(n_captured: int):
    """A legitimate source (pages 0..9) plus a spam source (page 10).

    ``n_captured`` legit pages are hijacked to link to the spam page; the
    rest link to a second legit source (page 11).
    """
    src, dst = [], []
    for p in range(10):
        if p < n_captured:
            src.append(p)
            dst.append(10)
        src.append(p)
        dst.append(11)
    g = PageGraph.from_edges(np.array(src), np.array(dst), 12)
    a = SourceAssignment(np.array([0] * 10 + [1, 2]))
    return g, a


class TestUniformWeights:
    def test_rows_stochastic(self, small_graph, small_assignment):
        w = uniform_weights(small_graph, small_assignment)
        assert is_row_stochastic(w)

    def test_equal_weights_per_target(self):
        g, a = _hijack_web(5)
        w = uniform_weights(g, a)
        # Source 0 links to sources 1 and 2 (no intra edges): uniform = 1/2
        assert w[0, 1] == pytest.approx(0.5)
        assert w[0, 2] == pytest.approx(0.5)

    def test_uniform_ignores_page_multiplicity(self):
        """1 captured page or 9: uniform weight does not move."""
        w1 = uniform_weights(*_hijack_web(1))
        w9 = uniform_weights(*_hijack_web(9))
        assert w1[0, 1] == pytest.approx(w9[0, 1])


class TestConsensusWeights:
    def test_rows_stochastic(self, small_graph, small_assignment):
        w = consensus_weights(small_graph, small_assignment)
        assert is_row_stochastic(w)

    def test_hijack_resistance_scaling(self):
        """Section 3.2's core claim: capturing few pages moves w little."""
        w1 = consensus_weights(*_hijack_web(1))
        w5 = consensus_weights(*_hijack_web(5))
        w9 = consensus_weights(*_hijack_web(9))
        # 1 captured page of 10: w(legit, spam) = 1/11
        assert w1[0, 1] == pytest.approx(1 / 11)
        # Monotone in captured pages, far below 1 until most are captured.
        assert w1[0, 1] < w5[0, 1] < w9[0, 1]
        assert w1[0, 1] < 0.1

    def test_consensus_vs_uniform_on_hijack(self):
        """Consensus weighting gives the hijacker strictly less influence
        than uniform weighting when few pages are captured."""
        g, a = _hijack_web(1)
        wu = uniform_weights(g, a)
        wc = consensus_weights(g, a)
        assert wc[0, 1] < wu[0, 1]

    def test_intra_diagonal_present(self):
        g = PageGraph.from_edges([0, 1], [1, 2], 3)
        a = SourceAssignment(np.array([0, 0, 1]))
        w = consensus_weights(g, a)
        assert w[0, 0] > 0  # page 0 -> page 1 is intra-source

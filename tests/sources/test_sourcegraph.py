"""Unit tests for :class:`repro.sources.SourceGraph`."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError, SourceAssignmentError
from repro.graph import PageGraph
from repro.sources import SourceAssignment, SourceGraph


class TestFromPageGraph:
    def test_consensus_default(self, small_graph, small_assignment):
        sg = SourceGraph.from_page_graph(small_graph, small_assignment)
        assert sg.weighting == "consensus"
        assert sg.n_sources == small_assignment.n_sources

    def test_rows_sum_to_one(self, small_source_graph):
        np.testing.assert_allclose(
            small_source_graph.out_weight_sums(), 1.0, atol=1e-12
        )

    def test_uniform_weighting(self, small_graph, small_assignment):
        sg = SourceGraph.from_page_graph(
            small_graph, small_assignment, weighting="uniform"
        )
        assert sg.weighting == "uniform"
        np.testing.assert_allclose(sg.out_weight_sums(), 1.0, atol=1e-12)

    def test_unknown_weighting_rejected(self, small_graph, small_assignment):
        with pytest.raises(GraphError, match="weighting"):
            SourceGraph.from_page_graph(
                small_graph, small_assignment, weighting="bogus"
            )

    def test_isolated_source_gets_self_edge(self):
        """A source with no out-links at all keeps its walker (Section 3.3
        self-edge augmentation + dangling fix)."""
        g = PageGraph.from_edges([0], [1], 3)  # page 2 isolated
        a = SourceAssignment(np.array([0, 0, 1]))  # source 1 = {page 2}
        sg = SourceGraph.from_page_graph(g, a)
        assert sg.self_weights()[1] == pytest.approx(1.0)

    def test_assignment_attached(self, small_graph, small_assignment):
        sg = SourceGraph.from_page_graph(small_graph, small_assignment)
        assert sg.assignment is small_assignment


class TestFromWeightMatrix:
    def test_normalizes(self):
        w = np.array([[2.0, 2.0], [1.0, 0.0]])
        sg = SourceGraph.from_weight_matrix(w)
        assert sg.matrix[0, 0] == pytest.approx(0.5)

    def test_fixes_empty_rows(self):
        w = np.array([[0.0, 0.0], [1.0, 1.0]])
        sg = SourceGraph.from_weight_matrix(w)
        assert sg.matrix[0, 0] == pytest.approx(1.0)

    def test_sparse_input(self):
        sg = SourceGraph.from_weight_matrix(sp.eye(4, format="csr"))
        assert sg.n_sources == 4

    def test_weighting_label(self):
        sg = SourceGraph.from_weight_matrix(np.eye(2))
        assert sg.weighting == "custom"


class TestValidation:
    def test_rejects_non_square(self):
        with pytest.raises(GraphError, match="square"):
            SourceGraph(sp.csr_matrix((2, 3)))

    def test_rejects_substochastic(self):
        m = sp.csr_matrix(np.array([[0.5, 0.0], [0.0, 1.0]]))
        with pytest.raises(GraphError, match="row-stochastic"):
            SourceGraph(m)

    def test_rejects_assignment_mismatch(self):
        m = sp.csr_matrix(np.eye(2))
        with pytest.raises(SourceAssignmentError):
            SourceGraph(m, SourceAssignment(np.array([0, 1, 2])))


class TestEdgeCounting:
    def test_self_edges_excluded_from_table1_count(self):
        sg = SourceGraph.from_weight_matrix(np.array([[0.5, 0.5], [0.0, 1.0]]))
        assert sg.n_edges(count_self=True) == 3
        assert sg.n_edges(count_self=False) == 1

    def test_repr(self, small_source_graph):
        assert "SourceGraph" in repr(small_source_graph)

"""Unit tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    DEFAULT_ALPHA,
    DEFAULT_TOLERANCE,
    AuditParams,
    ExperimentParams,
    RankingParams,
    SpamProximityParams,
    ThrottleParams,
)
from repro.errors import ConfigError


class TestRankingParams:
    def test_paper_defaults(self):
        p = RankingParams()
        assert p.alpha == 0.85 == DEFAULT_ALPHA
        assert p.tolerance == 1e-9 == DEFAULT_TOLERANCE
        assert p.norm == "l2"
        assert p.strict

    def test_with_override(self):
        p = RankingParams().with_(alpha=0.5)
        assert p.alpha == 0.5
        assert p.tolerance == DEFAULT_TOLERANCE

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 1.0},
            {"alpha": -0.1},
            {"tolerance": 0.0},
            {"max_iter": 0},
            {"norm": "l7"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RankingParams(**kwargs)

    def test_frozen(self):
        p = RankingParams()
        with pytest.raises(AttributeError):
            p.alpha = 0.5  # type: ignore[misc]


class TestThrottleParams:
    def test_paper_default_fraction(self):
        p = ThrottleParams()
        assert p.top_fraction == pytest.approx(20_000 / 738_626)
        assert p.kappa_high == 1.0
        assert p.kappa_low == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"strategy": "bogus"},
            {"top_fraction": 1.5},
            {"kappa_high": 2.0},
            {"kappa_low": 0.9, "kappa_high": 0.5},
            {"threshold": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ThrottleParams(**kwargs)


class TestSpamProximityParams:
    def test_defaults_mirror_alpha(self):
        p = SpamProximityParams()
        assert p.beta == DEFAULT_ALPHA

    def test_as_ranking_params(self):
        p = SpamProximityParams(beta=0.7, tolerance=1e-6, max_iter=50)
        r = p.as_ranking_params()
        assert r.alpha == 0.7
        assert r.tolerance == 1e-6
        assert r.max_iter == 50

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpamProximityParams(beta=1.0)
        with pytest.raises(ConfigError):
            SpamProximityParams(max_iter=0)


class TestExperimentParams:
    def test_paper_protocol_defaults(self):
        p = ExperimentParams()
        assert p.cases == (1, 10, 100, 1000)
        assert p.n_targets == 5
        assert p.bottom_fraction == 0.5
        assert p.seed_fraction == pytest.approx(1_000 / 10_315)
        assert p.n_buckets == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_targets": 0},
            {"cases": ()},
            {"cases": (0,)},
            {"bottom_fraction": 2.0},
            {"seed_fraction": -0.1},
            {"n_buckets": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ExperimentParams(**kwargs)

    def test_nested_defaults(self):
        p = ExperimentParams()
        assert p.ranking.alpha == DEFAULT_ALPHA
        assert p.throttle.strategy == "top_k"


class TestAuditParams:
    def test_defaults(self):
        p = AuditParams()
        assert p.strict is True
        assert p.atol == 1e-8
        assert p.check_every == 1
        assert p.check_transition and p.check_scores

    def test_with_override(self):
        p = AuditParams().with_(strict=False, check_every=10)
        assert p.strict is False
        assert p.check_every == 10
        assert p.atol == 1e-8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"atol": 0.0},
            {"atol": -1e-9},
            {"check_every": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            AuditParams(**kwargs)

    def test_ranking_params_accepts_and_validates(self):
        p = RankingParams(audit=AuditParams(strict=False))
        assert p.audit.strict is False
        assert RankingParams().audit is None
        with pytest.raises(ConfigError):
            RankingParams(audit=object())

    def test_proximity_params_forward_audit(self):
        audit = AuditParams(check_every=3)
        p = SpamProximityParams(audit=audit)
        assert p.as_ranking_params().audit is audit
        with pytest.raises(ConfigError):
            SpamProximityParams(audit=42)

"""Unit tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    DEFAULT_ALPHA,
    DEFAULT_TOLERANCE,
    AuditParams,
    ExperimentParams,
    RankingParams,
    SpamProximityParams,
    ThrottleParams,
)
from repro.errors import ConfigError


class TestRankingParams:
    def test_paper_defaults(self):
        p = RankingParams()
        assert p.alpha == 0.85 == DEFAULT_ALPHA
        assert p.tolerance == 1e-9 == DEFAULT_TOLERANCE
        assert p.norm == "l2"
        assert p.strict

    def test_with_override(self):
        p = RankingParams().with_(alpha=0.5)
        assert p.alpha == 0.5
        assert p.tolerance == DEFAULT_TOLERANCE

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 1.0},
            {"alpha": -0.1},
            {"tolerance": 0.0},
            {"max_iter": 0},
            {"norm": "l7"},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            RankingParams(**kwargs)

    def test_frozen(self):
        p = RankingParams()
        with pytest.raises(AttributeError):
            p.alpha = 0.5  # type: ignore[misc]


class TestThrottleParams:
    def test_paper_default_fraction(self):
        p = ThrottleParams()
        assert p.top_fraction == pytest.approx(20_000 / 738_626)
        assert p.kappa_high == 1.0
        assert p.kappa_low == 0.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"strategy": "bogus"},
            {"top_fraction": 1.5},
            {"kappa_high": 2.0},
            {"kappa_low": 0.9, "kappa_high": 0.5},
            {"threshold": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ThrottleParams(**kwargs)


class TestSpamProximityParams:
    def test_defaults_mirror_alpha(self):
        p = SpamProximityParams()
        assert p.beta == DEFAULT_ALPHA

    def test_as_ranking_params(self):
        p = SpamProximityParams(beta=0.7, tolerance=1e-6, max_iter=50)
        r = p.as_ranking_params()
        assert r.alpha == 0.7
        assert r.tolerance == 1e-6
        assert r.max_iter == 50

    def test_validation(self):
        with pytest.raises(ConfigError):
            SpamProximityParams(beta=1.0)
        with pytest.raises(ConfigError):
            SpamProximityParams(max_iter=0)


class TestExperimentParams:
    def test_paper_protocol_defaults(self):
        p = ExperimentParams()
        assert p.cases == (1, 10, 100, 1000)
        assert p.n_targets == 5
        assert p.bottom_fraction == 0.5
        assert p.seed_fraction == pytest.approx(1_000 / 10_315)
        assert p.n_buckets == 20

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"n_targets": 0},
            {"cases": ()},
            {"cases": (0,)},
            {"bottom_fraction": 2.0},
            {"seed_fraction": -0.1},
            {"n_buckets": 1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            ExperimentParams(**kwargs)

    def test_nested_defaults(self):
        p = ExperimentParams()
        assert p.ranking.alpha == DEFAULT_ALPHA
        assert p.throttle.strategy == "top_k"


class TestAuditParams:
    def test_defaults(self):
        p = AuditParams()
        assert p.strict is True
        assert p.atol == 1e-8
        assert p.check_every == 1
        assert p.check_transition and p.check_scores

    def test_with_override(self):
        p = AuditParams().with_(strict=False, check_every=10)
        assert p.strict is False
        assert p.check_every == 10
        assert p.atol == 1e-8

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"atol": 0.0},
            {"atol": -1e-9},
            {"check_every": -1},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigError):
            AuditParams(**kwargs)

    def test_ranking_params_accepts_and_validates(self):
        p = RankingParams(audit=AuditParams(strict=False))
        assert p.audit.strict is False
        assert RankingParams().audit is None
        with pytest.raises(ConfigError):
            RankingParams(audit=object())

    def test_proximity_params_forward_audit(self):
        audit = AuditParams(check_every=3)
        p = SpamProximityParams(audit=audit)
        assert p.as_ranking_params().audit is audit
        with pytest.raises(ConfigError):
            SpamProximityParams(audit=42)


class TestSLOParams:
    def test_defaults_are_valid_and_generous(self):
        from repro.config import SLOParams

        slo = SLOParams()
        assert slo.deadline_seconds == 30.0
        assert slo.deadline_for("score") == 30.0
        assert slo.max_inflight >= 1

    def test_per_op_deadline_override(self):
        from repro.config import SLOParams

        slo = SLOParams(deadline_seconds=5.0, top_k_deadline_seconds=0.5)
        assert slo.deadline_for("top_k") == 0.5
        assert slo.deadline_for("score") == 5.0
        assert slo.deadline_for("percentile") == 5.0

    @pytest.mark.parametrize(
        "field, value",
        [
            ("deadline_seconds", 0.0),
            ("deadline_seconds", -1.0),
            ("score_deadline_seconds", 0.0),
            ("percentile_deadline_seconds", -2.0),
            ("top_k_deadline_seconds", 0.0),
            ("hedge_threshold_seconds", 0.0),
            ("retry_budget_per_second", -5.0),
            ("retry_budget_burst", 0.0),
            ("shed_retry_after_seconds", 0.0),
            ("eject_latency_seconds", -0.1),
            ("reinstate_backoff_seconds", 0.0),
            ("hedge_min_samples", 0),
            ("max_inflight", 0),
            ("eject_min_samples", -3),
        ],
    )
    def test_nonpositive_knobs_rejected_naming_the_field(self, field, value):
        from repro.config import SLOParams

        with pytest.raises(ConfigError, match=field):
            SLOParams(**{field: value})

    def test_hedge_quantile_must_be_a_proper_quantile(self):
        from repro.config import SLOParams

        with pytest.raises(ConfigError, match="hedge_quantile"):
            SLOParams(hedge_quantile=0.0)
        with pytest.raises(ConfigError, match="hedge_quantile"):
            SLOParams(hedge_quantile=1.0)

    def test_cross_field_constraints(self):
        from repro.config import SLOParams

        with pytest.raises(ConfigError, match="eject_window"):
            SLOParams(eject_min_samples=32, eject_window=8)
        with pytest.raises(ConfigError, match="reinstate_backoff_max"):
            SLOParams(
                reinstate_backoff_seconds=5.0,
                reinstate_backoff_max_seconds=1.0,
            )

    def test_with_revalidates(self):
        from repro.config import SLOParams

        slo = SLOParams().with_(deadline_seconds=2.0)
        assert slo.deadline_seconds == 2.0
        with pytest.raises(ConfigError, match="deadline_seconds"):
            SLOParams().with_(deadline_seconds=-1.0)


class TestChaosParams:
    def test_defaults_are_inert(self):
        from repro.config import ChaosParams

        chaos = ChaosParams()
        assert chaos.latency_seconds == 0.0
        assert chaos.reset_probability == 0.0

    @pytest.mark.parametrize(
        "field, value",
        [
            ("latency_seconds", -0.1),
            ("jitter_seconds", -1.0),
            ("stall_seconds", -0.5),
            ("adoption_delay_seconds", -0.01),
            ("reset_probability", -0.1),
            ("reset_probability", 1.5),
            ("torn_probability", 2.0),
            ("cut_fraction", 0.0),
            ("cut_fraction", 1.5),
        ],
    )
    def test_out_of_range_knobs_rejected_naming_the_field(self, field, value):
        from repro.config import ChaosParams

        with pytest.raises(ConfigError, match=field):
            ChaosParams(**{field: value})

    def test_feeds_fault_rules(self):
        from repro.config import ChaosParams
        from repro.resilience.faults import FaultRule

        chaos = ChaosParams(
            latency_seconds=0.05, jitter_seconds=0.02, reset_probability=0.3
        )
        lag = FaultRule.from_params("latency", chaos)
        assert lag.latency_seconds == 0.05 and lag.probability == 1.0
        reset = FaultRule.from_params("reset", chaos)
        assert reset.probability == 0.3

"""Unit tests for logging helpers and the error hierarchy."""

from __future__ import annotations

import logging

import pytest

from repro import errors
from repro.logging_utils import enable_console_logging, get_logger, log_duration


class TestGetLogger:
    def test_namespace_rooting(self):
        assert get_logger().name == "repro"
        assert get_logger("graph").name == "repro.graph"
        assert get_logger("repro.ranking.power").name == "repro.ranking.power"


class TestConsoleLogging:
    def test_idempotent(self):
        logger = logging.getLogger("repro")
        before = list(logger.handlers)
        try:
            h1 = enable_console_logging()
            h2 = enable_console_logging()
            assert h1 is h2
            added = [h for h in logger.handlers if h not in before]
            assert len(added) <= 1
        finally:
            for h in list(logger.handlers):
                if getattr(h, "_repro_console", False):
                    logger.removeHandler(h)

    def test_level_applied(self):
        logger = logging.getLogger("repro")
        try:
            enable_console_logging(logging.DEBUG)
            assert logger.level == logging.DEBUG
        finally:
            for h in list(logger.handlers):
                if getattr(h, "_repro_console", False):
                    logger.removeHandler(h)
            logger.setLevel(logging.NOTSET)


class TestLogDuration:
    def test_emits_debug_record(self, caplog):
        logger = get_logger("test")
        with caplog.at_level(logging.DEBUG, logger="repro.test"):
            with log_duration(logger, "unit-of-work"):
                pass
        assert any("unit-of-work took" in r.message for r in caplog.records)


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for name in errors.__all__:
            cls = getattr(errors, name)
            assert issubclass(cls, errors.ReproError)

    def test_convergence_error_fields(self):
        err = errors.ConvergenceError(10, 0.5, 1e-9)
        assert err.iterations == 10
        assert err.residual == 0.5
        assert err.tolerance == 1e-9
        assert "10 iterations" in str(err)

    def test_node_index_error_is_index_error(self):
        err = errors.NodeIndexError(5, 3)
        assert isinstance(err, IndexError)
        assert err.node == 5
        assert err.n_nodes == 3

    def test_config_error_is_value_error(self):
        assert issubclass(errors.ConfigError, ValueError)

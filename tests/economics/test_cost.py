"""Unit tests for the spammer cost model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.economics import AttackCost, CostModel
from repro.errors import ConfigError
from repro.graph import PageGraph
from repro.sources import SourceAssignment
from repro.spam import HijackAttack, IntraSourceAttack, LinkFarmAttack


@pytest.fixture()
def web():
    g = PageGraph.from_edges(np.array([0, 1]), np.array([1, 0]), 4)
    a = SourceAssignment(np.array([0, 0, 1, 1]))
    return g, a


class TestCostModel:
    def test_defaults_ordered(self):
        m = CostModel()
        assert m.page_cost < m.hijack_cost < m.source_cost < m.honeypot_link_cost

    def test_negative_rejected(self):
        with pytest.raises(ConfigError):
            CostModel(page_cost=-1)

    def test_price_intra_source_attack(self, web):
        g, a = web
        spammed = IntraSourceAttack(0, 10).apply(g, a)
        cost = CostModel().price(spammed)
        assert cost.pages == 10
        assert cost.sources == 0
        assert cost.hijacked == 0
        assert cost.total == pytest.approx(10 * CostModel().page_cost)

    def test_price_link_farm(self, web):
        g, a = web
        spammed = LinkFarmAttack(0, n_pages=6, n_sources=3).apply(g, a)
        m = CostModel()
        cost = m.price(spammed)
        assert cost.sources == 3
        assert cost.total == pytest.approx(6 * m.page_cost + 3 * m.source_cost)

    def test_price_hijack(self, web):
        g, a = web
        spammed = HijackAttack(0, [2, 3]).apply(g, a)
        m = CostModel()
        cost = m.price(spammed)
        assert cost.hijacked == 2
        assert cost.total == pytest.approx(2 * m.hijack_cost)

    def test_cost_addition(self):
        a = AttackCost(pages=1, sources=0, hijacked=2, total=41.0)
        b = AttackCost(pages=3, sources=1, hijacked=0, total=53.0)
        c = a + b
        assert c.pages == 4
        assert c.total == pytest.approx(94.0)

    def test_helper_formulas(self):
        m = CostModel(page_cost=2, source_cost=10, hijack_cost=5, honeypot_link_cost=20)
        assert m.collusion_cost(5, 2) == pytest.approx(30)
        assert m.hijack_campaign_cost(4) == pytest.approx(20)
        assert m.honeypot_cost(3, 2) == pytest.approx(60 + 4 + 10)

    def test_helper_validation(self):
        m = CostModel()
        with pytest.raises(ConfigError):
            m.collusion_cost(-1)
        with pytest.raises(ConfigError):
            m.hijack_campaign_cost(-1)
        with pytest.raises(ConfigError):
            m.honeypot_cost(-1, 0)

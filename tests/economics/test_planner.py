"""Unit tests for the closed-form attack planner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.economics import AttackPlanner, CostModel
from repro.errors import ConfigError


class TestPlanner:
    def test_pagerank_plan_buys_pages(self):
        planner = AttackPlanner(CostModel(page_cost=2.0))
        plan = planner.plan_against_pagerank(100.0)
        assert plan.n_pages == 50
        assert plan.n_sources == 0
        assert plan.score_gain > 0

    def test_pagerank_gain_linear_in_budget(self):
        planner = AttackPlanner()
        g1 = planner.plan_against_pagerank(1000.0).score_gain
        g2 = planner.plan_against_pagerank(2000.0).score_gain
        assert g2 == pytest.approx(2 * g1)

    def test_srsr_plan_buys_sources(self):
        m = CostModel(page_cost=1.0, source_cost=49.0)
        planner = AttackPlanner(m)
        plan = planner.plan_against_srsr(500.0)
        assert plan.n_sources == 10  # 500 / (49 + 1)
        assert plan.n_pages == plan.n_sources

    def test_throttling_cuts_srsr_gain(self):
        planner = AttackPlanner()
        open_ = planner.plan_against_srsr(1e5, kappa=0.0).score_gain
        # Per-source payoff shrinks by (1-k)/(1-ak): 0.425x at k=0.9,
        # 0.063x at k=0.99.
        assert planner.plan_against_srsr(1e5, kappa=0.9).score_gain < 0.5 * open_
        assert planner.plan_against_srsr(1e5, kappa=0.99).score_gain < 0.1 * open_

    def test_cost_ratio_exceeds_one(self):
        """SR-SourceRank must make score strictly dearer than PageRank
        even with no throttling (sources cost more than pages)."""
        planner = AttackPlanner()
        assert planner.cost_ratio(0.0) > 1.0

    def test_cost_ratio_grows_with_kappa(self):
        planner = AttackPlanner()
        ratios = [planner.cost_ratio(k) for k in (0.0, 0.5, 0.9, 0.99)]
        assert all(a < b for a, b in zip(ratios, ratios[1:]))

    def test_cost_ratio_matches_closed_form(self):
        """ratio = (source+page)/page * (1-a) * (1 - a k)/(1 - k).

        The (1-a) factor: a colluding source's contribution reaches the
        target through its optimal self-loop amplification a/(1-a)
        (Eq. 5), so per teleport quantum it delivers a/(1-a) * (1-k)/(1-ak)
        units, vs a flat alpha per colluding page under PageRank.
        """
        m = CostModel(page_cost=1.0, source_cost=49.0)
        planner = AttackPlanner(m, alpha=0.85)
        for kappa in (0.0, 0.5, 0.9):
            expected = 50.0 * 0.15 * (1 - 0.85 * kappa) / (1 - kappa)
            assert planner.cost_ratio(kappa) == pytest.approx(expected, rel=1e-2)

    def test_sweep(self):
        planner = AttackPlanner()
        plans = planner.sweep_kappa(np.array([0.0, 0.5, 0.9]))
        assert len(plans) == 3
        gains = [p.score_gain for p in plans]
        assert gains[0] > gains[1] > gains[2]

    def test_validation(self):
        planner = AttackPlanner()
        with pytest.raises(ConfigError):
            planner.plan_against_pagerank(-1.0)
        with pytest.raises(ConfigError):
            planner.plan_against_srsr(1.0, kappa=1.0)
        with pytest.raises(ConfigError):
            AttackPlanner(alpha=1.0)
        with pytest.raises(ConfigError):
            AttackPlanner(n_pages=0)

    def test_plan_as_dict(self):
        plan = AttackPlanner().plan_against_pagerank(10.0)
        d = plan.as_dict()
        assert d["ranking"] == "pagerank"
        assert d["pages"] == plan.n_pages

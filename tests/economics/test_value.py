"""Unit tests for portfolio-value metrics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.economics import portfolio_value, traffic_share
from repro.economics.value import rank_value
from repro.errors import ConfigError
from repro.ranking.base import ConvergenceInfo, RankingResult

_INFO = ConvergenceInfo(True, 1, 0.0, 1e-9)


def _result(scores):
    return RankingResult(np.asarray(scores, dtype=np.float64), _INFO)


class TestRankValue:
    def test_rank_zero_is_one(self):
        assert rank_value(np.array([0]))[0] == pytest.approx(1.0)

    def test_power_law_decay(self):
        v = rank_value(np.array([0, 1, 9]), gamma=1.0)
        assert v[1] == pytest.approx(0.5)
        assert v[2] == pytest.approx(0.1)

    def test_gamma_controls_steepness(self):
        shallow = rank_value(np.array([9]), gamma=0.5)
        steep = rank_value(np.array([9]), gamma=2.0)
        assert steep < shallow

    def test_validation(self):
        with pytest.raises(ConfigError):
            rank_value(np.array([-1]))
        with pytest.raises(ConfigError):
            rank_value(np.array([0]), gamma=0.0)


class TestTrafficShare:
    def test_top_item_dominates(self):
        r = _result(np.arange(1, 11, dtype=np.float64))
        top = traffic_share(r, np.array([9]))     # best-ranked item
        bottom = traffic_share(r, np.array([0]))  # worst-ranked item
        assert top > bottom
        assert top > 0.3  # rank 0 holds 1/H_10 ~ 0.34 of the value

    def test_full_membership_is_one(self):
        r = _result(np.arange(1, 6, dtype=np.float64))
        assert traffic_share(r, np.arange(5)) == pytest.approx(1.0)

    def test_empty_membership_is_zero(self):
        r = _result(np.arange(1, 6, dtype=np.float64))
        assert traffic_share(r, np.array([], dtype=np.int64)) == 0.0

    def test_range_check(self):
        r = _result(np.ones(3))
        with pytest.raises(ConfigError):
            traffic_share(r, np.array([5]))

    def test_demotion_reduces_share(self):
        """The paper's portfolio-value question: demoting a portfolio's
        members must cut its traffic share."""
        before = _result([10.0, 1.0, 1.0, 1.0])   # member 0 on top
        after = _result([0.1, 1.0, 1.0, 1.0])     # member 0 demoted
        assert traffic_share(after, np.array([0])) < traffic_share(
            before, np.array([0])
        )


class TestPortfolioValue:
    def test_market_scaling(self):
        r = _result(np.arange(1, 6, dtype=np.float64))
        share = traffic_share(r, np.array([4]))
        assert portfolio_value(r, np.array([4]), market_size=1000.0) == pytest.approx(
            1000.0 * share
        )

    def test_negative_market_rejected(self):
        r = _result(np.ones(2))
        with pytest.raises(ConfigError):
            portfolio_value(r, np.array([0]), market_size=-1.0)

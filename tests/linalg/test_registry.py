"""Solver-registry dispatch, registration, and validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.errors import ConfigError
from repro.linalg import (
    BUILTIN_SOLVERS,
    available_solvers,
    get_solver,
    register_solver,
    solver_registry,
)
from repro.ranking.gauss_seidel import gauss_seidel_solve
from repro.ranking.jacobi import jacobi_solve
from repro.ranking.power import power_iteration


class TestBuiltins:
    def test_builtins_resolve_to_ranking_solvers(self):
        assert get_solver("power") is power_iteration
        assert get_solver("jacobi") is jacobi_solve
        assert get_solver("gauss_seidel") is gauss_seidel_solve

    def test_names_include_builtins(self):
        names = available_solvers()
        assert set(BUILTIN_SOLVERS) <= set(names)
        assert names == tuple(sorted(names))

    def test_unknown_solver_raises(self):
        with pytest.raises(ConfigError, match="unknown solver"):
            get_solver("conjugate_gradient")

    def test_contains(self):
        assert "power" in solver_registry
        assert "nope" not in solver_registry


class TestRegistration:
    def test_register_and_dispatch_custom_solver(self, small_source_graph):
        calls = []

        def fake_solver(operand, params, *, label="", **kwargs):
            calls.append(label)
            return power_iteration(operand, params, label=label, **kwargs)

        register_solver("fake", fake_solver)
        try:
            params = RankingParams(solver="fake")
            result = solver_registry.solve(
                small_source_graph.matrix, params, label="via-params"
            )
            assert calls == ["via-params"]
            assert result.scores.sum() == pytest.approx(1.0)
        finally:
            del solver_registry._solvers["fake"]

    def test_duplicate_registration_raises(self):
        register_solver("dupe", lambda *a, **k: None)
        try:
            with pytest.raises(ConfigError, match="already registered"):
                register_solver("dupe", lambda *a, **k: None)
            register_solver("dupe", lambda *a, **k: 1, overwrite=True)
            assert get_solver("dupe")() == 1
        finally:
            del solver_registry._solvers["dupe"]

    def test_decorator_form(self):
        @register_solver("decorated")
        def my_solver(operand, params, **kwargs):
            return "ran"

        try:
            assert get_solver("decorated") is my_solver
        finally:
            del solver_registry._solvers["decorated"]


class TestParamsValidation:
    def test_params_reject_unknown_solver(self):
        with pytest.raises(ConfigError, match="unknown solver"):
            RankingParams(solver="magic")

    def test_params_reject_unknown_kernel(self):
        with pytest.raises(ConfigError, match="kernel"):
            RankingParams(kernel="gpu")

    def test_params_accept_builtins(self):
        for name in BUILTIN_SOLVERS:
            assert RankingParams(solver=name).solver == name

    def test_solve_explicit_solver_overrides_params(self, small_source_graph):
        params = RankingParams(solver="jacobi", tolerance=1e-10)
        via_power = solver_registry.solve(
            small_source_graph.matrix, params, solver="power"
        )
        via_params = solver_registry.solve(small_source_graph.matrix, params)
        np.testing.assert_allclose(
            via_power.scores, via_params.scores, atol=1e-8
        )

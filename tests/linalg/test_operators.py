"""Property tests: the lazy operators match their materialized matrices.

The acceptance bar for the operator layer is exactness, not speed:
``ThrottledOperator`` must agree with the explicit
:func:`repro.throttle.transform.throttle_transform` matrix and
``ReversedOperator`` with the explicit
:func:`repro.throttle.spam_proximity.inverse_transition_matrix`, on random
sparse graphs including dangling rows and the κ ∈ {0, 1} extremes.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RankingParams
from repro.errors import ConfigError, GraphError, ThrottleError
from repro.linalg import (
    CsrOperator,
    ReversedOperator,
    ThrottledOperator,
    TransitionOperator,
    as_matrix,
    as_operator,
)
from repro.ranking.power import power_iteration
from repro.throttle.spam_proximity import inverse_transition_matrix
from repro.throttle.transform import throttle_transform
from repro.throttle.vector import ThrottleVector


def random_stochastic(seed: int, *, n_dangling: int = 0) -> sp.csr_matrix:
    """Random row-stochastic CSR with self-edges; optional dangling rows."""
    gen = np.random.default_rng(seed)
    n = int(gen.integers(3, 25))
    dense = (gen.random((n, n)) < 0.35) * gen.random((n, n))
    np.fill_diagonal(dense, gen.random(n) * 0.5)
    dense[dense.sum(axis=1) == 0, 0] = 1.0  # no accidental dangling rows
    dense /= dense.sum(axis=1, keepdims=True)
    for i in range(min(n_dangling, n - 1)):
        dense[n - 1 - i, :] = 0.0
    return sp.csr_matrix(dense)


def random_kappa(seed: int, n: int) -> np.ndarray:
    """Random κ with a mix of interior values and the {0, 1} extremes."""
    gen = np.random.default_rng(seed + 1)
    kappa = gen.random(n)
    kappa[gen.random(n) < 0.25] = 0.0
    kappa[gen.random(n) < 0.25] = 1.0
    return kappa


class TestThrottledOperatorMatchesTransform:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["self", "dangling"]),
    )
    def test_rmatvec_matches_materialized(self, seed, full_throttle):
        matrix = random_stochastic(seed)
        n = matrix.shape[0]
        kappa = random_kappa(seed, n)
        explicit = throttle_transform(
            matrix, ThrottleVector(kappa), full_throttle=full_throttle
        )
        gen = np.random.default_rng(seed + 2)
        x = gen.random(n)
        with ThrottledOperator(
            matrix, kappa, full_throttle=full_throttle
        ) as op:
            np.testing.assert_allclose(
                op.rmatvec(x), explicit.T @ x, atol=1e-13, rtol=1e-13
            )

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["self", "dangling"]),
    )
    def test_materialize_matches_transform(self, seed, full_throttle):
        matrix = random_stochastic(seed)
        kappa = random_kappa(seed, matrix.shape[0])
        explicit = throttle_transform(
            matrix, ThrottleVector(kappa), full_throttle=full_throttle
        )
        with ThrottledOperator(
            matrix, kappa, full_throttle=full_throttle
        ) as op:
            assert (op.materialize() - explicit).nnz == 0 or np.allclose(
                op.materialize().toarray(), explicit.toarray(), atol=1e-14
            )

    @settings(max_examples=20, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["self", "dangling"]),
    )
    def test_dangling_mask_matches_materialized(self, seed, full_throttle):
        matrix = random_stochastic(seed)
        kappa = random_kappa(seed, matrix.shape[0])
        explicit = throttle_transform(
            matrix, ThrottleVector(kappa), full_throttle=full_throttle
        )
        explicit_mask = np.asarray(explicit.sum(axis=1)).ravel() <= 1e-12
        with ThrottledOperator(
            matrix, kappa, full_throttle=full_throttle
        ) as op:
            np.testing.assert_array_equal(op.dangling_mask, explicit_mask)

    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.sampled_from(["self", "dangling"]),
    )
    def test_solve_matches_materialized_path(self, seed, full_throttle):
        """The acceptance bound: lazy vs explicit score vectors <= 1e-12."""
        matrix = random_stochastic(seed)
        n = matrix.shape[0]
        kappa = random_kappa(seed, n)
        params = RankingParams(tolerance=1e-13, max_iter=5000, strict=False)
        explicit = throttle_transform(
            matrix, ThrottleVector(kappa), full_throttle=full_throttle
        )
        expected = power_iteration(explicit, params, label="explicit")
        with ThrottledOperator(
            matrix, kappa, full_throttle=full_throttle
        ) as op:
            lazy = power_iteration(op, params, label="lazy")
        np.testing.assert_allclose(
            lazy.scores, expected.scores, atol=1e-12, rtol=0
        )

    def test_kappa_zero_is_identity(self):
        matrix = random_stochastic(7)
        n = matrix.shape[0]
        x = np.random.default_rng(7).random(n)
        with ThrottledOperator(matrix, np.zeros(n)) as op:
            np.testing.assert_allclose(op.rmatvec(x), matrix.T @ x, atol=1e-14)

    def test_kappa_one_dangling_mutes_rows(self):
        matrix = random_stochastic(11)
        n = matrix.shape[0]
        kappa = np.zeros(n)
        kappa[0] = 1.0
        with ThrottledOperator(
            matrix, kappa, full_throttle="dangling"
        ) as op:
            assert op.dangling_mask[0]
            # Row 0 contributes nothing: T''^T x has no term from x[0].
            x = np.zeros(n)
            x[0] = 1.0
            np.testing.assert_allclose(op.rmatvec(x), np.zeros(n), atol=1e-14)

    def test_dangling_rows_with_zero_kappa_pass_through(self):
        matrix = random_stochastic(13, n_dangling=2)
        n = matrix.shape[0]
        x = np.random.default_rng(13).random(n)
        with ThrottledOperator(matrix, np.zeros(n)) as op:
            np.testing.assert_allclose(op.rmatvec(x), matrix.T @ x, atol=1e-14)
            assert op.dangling_mask.sum() == 2

    def test_throttling_a_dangling_row_raises(self):
        matrix = random_stochastic(17, n_dangling=1)
        n = matrix.shape[0]
        kappa = np.zeros(n)
        kappa[n - 1] = 0.5  # the dangling row: no off-mass to rescale
        with pytest.raises(ThrottleError, match="off-diagonal"):
            ThrottledOperator(matrix, kappa)

    def test_wrong_kappa_length_raises(self):
        matrix = random_stochastic(19)
        with pytest.raises(ThrottleError, match="covers"):
            ThrottledOperator(matrix, np.zeros(matrix.shape[0] + 1))

    def test_kappa_out_of_range_raises(self):
        matrix = random_stochastic(19)
        kappa = np.zeros(matrix.shape[0])
        kappa[0] = 1.5
        with pytest.raises(ThrottleError):
            ThrottledOperator(matrix, kappa)

    def test_bad_full_throttle_raises(self):
        matrix = random_stochastic(19)
        with pytest.raises(ThrottleError, match="full_throttle"):
            ThrottledOperator(matrix, None, full_throttle="explode")


class TestReversedOperatorMatchesInverse:
    @settings(max_examples=40, deadline=None)
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.booleans(),
    )
    def test_rmatvec_matches_materialized(self, seed, drop_self_edges):
        matrix = random_stochastic(seed, n_dangling=seed % 3)
        n = matrix.shape[0]
        explicit = inverse_transition_matrix(
            matrix, drop_self_edges=drop_self_edges
        )
        x = np.random.default_rng(seed + 3).random(n)
        with ReversedOperator(matrix, drop_self_edges=drop_self_edges) as op:
            np.testing.assert_allclose(
                op.rmatvec(x), explicit.T @ x, atol=1e-13, rtol=1e-13
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_materialize_matches_inverse(self, seed):
        matrix = random_stochastic(seed)
        explicit = inverse_transition_matrix(matrix)
        with ReversedOperator(matrix) as op:
            np.testing.assert_allclose(
                op.materialize().toarray(), explicit.toarray(), atol=1e-14
            )

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    def test_dangling_mask_matches(self, seed):
        matrix = random_stochastic(seed)
        explicit = inverse_transition_matrix(matrix)
        explicit_mask = np.asarray(explicit.sum(axis=1)).ravel() <= 1e-12
        with ReversedOperator(matrix) as op:
            np.testing.assert_array_equal(op.dangling_mask, explicit_mask)

    def test_rejects_dense(self):
        with pytest.raises(GraphError):
            ReversedOperator(np.eye(3))


class TestCsrOperator:
    def test_chunked_double_buffer_survives_one_call(self):
        matrix = random_stochastic(23)
        n = matrix.shape[0]
        gen = np.random.default_rng(23)
        x1, x2 = gen.random(n), gen.random(n)
        op = CsrOperator(matrix, kernel="chunked")
        y1 = op.rmatvec(x1)
        expected1 = matrix.T @ x1
        y2 = op.rmatvec(x2)
        # y1 was written to the other buffer: still intact after one call.
        np.testing.assert_allclose(y1, expected1, atol=1e-14)
        np.testing.assert_allclose(y2, matrix.T @ x2, atol=1e-14)
        assert y1 is not y2

    def test_chunked_no_per_call_allocation(self):
        matrix = random_stochastic(23)
        n = matrix.shape[0]
        op = CsrOperator(matrix, kernel="chunked")
        x = np.random.default_rng(0).random(n)
        outs = {id(op.rmatvec(x)) for _ in range(6)}
        assert len(outs) == 2  # exactly the two preallocated buffers

    def test_kernels_agree(self):
        matrix = random_stochastic(29)
        x = np.random.default_rng(29).random(matrix.shape[0])
        a = CsrOperator(matrix, kernel="scipy")
        b = CsrOperator(matrix, kernel="chunked")
        np.testing.assert_allclose(a.rmatvec(x), b.rmatvec(x), atol=1e-13)

    def test_rejects_bad_kernel(self):
        with pytest.raises(ConfigError):
            CsrOperator(random_stochastic(1), kernel="gpu")

    def test_rejects_dense_and_non_square(self):
        with pytest.raises(GraphError):
            CsrOperator(np.eye(3))
        with pytest.raises(GraphError):
            CsrOperator(sp.csr_matrix(np.ones((2, 3))))

    def test_satisfies_protocol(self):
        op = CsrOperator(random_stochastic(1))
        assert isinstance(op, TransitionOperator)
        assert isinstance(ThrottledOperator(op), TransitionOperator)
        assert isinstance(ReversedOperator(op), TransitionOperator)


class TestCoercions:
    def test_as_operator_passthrough_and_wrap(self):
        matrix = random_stochastic(31)
        op = CsrOperator(matrix)
        assert as_operator(op) is op
        assert isinstance(as_operator(matrix), CsrOperator)
        with pytest.raises(GraphError):
            as_operator(np.eye(3))

    def test_as_matrix(self):
        matrix = random_stochastic(31)
        assert as_matrix(matrix) is not None
        assert (as_matrix(CsrOperator(matrix)) != matrix).nnz == 0
        with pytest.raises(GraphError):
            as_matrix(np.eye(3))
        with pytest.raises(GraphError):
            as_matrix(sp.csr_matrix(np.ones((2, 3))))

"""The shared fixed-point engine: convergence contract and telemetry hooks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.errors import ConfigError, ConvergenceError
from repro.linalg import ConvergenceInfo, iterate_to_fixpoint, residual_norm


def halve_toward(target):
    """A contraction with fixed point ``target`` (rate 1/2)."""
    return lambda x: 0.5 * (x + target)


class TestIterateToFixpoint:
    def test_converges_to_fixed_point(self):
        target = np.array([1.0, 2.0, 3.0])
        params = RankingParams(tolerance=1e-12, max_iter=200)
        x, info = iterate_to_fixpoint(
            halve_toward(target), np.zeros(3), params, solver="power"
        )
        np.testing.assert_allclose(x, target, atol=1e-10)
        assert info.converged
        assert info.iterations == len(info.residual_history)
        assert info.residual < 1e-12

    def test_residual_history_is_monotone_for_contraction(self):
        params = RankingParams(tolerance=1e-10, max_iter=200)
        _, info = iterate_to_fixpoint(
            halve_toward(np.ones(4)), np.zeros(4), params, solver="power"
        )
        hist = np.array(info.residual_history)
        assert (np.diff(hist) <= 0).all()

    def test_strict_raises_on_max_iter(self):
        params = RankingParams(tolerance=1e-15, max_iter=3, strict=True)
        with pytest.raises(ConvergenceError):
            iterate_to_fixpoint(
                halve_toward(np.ones(2)), np.zeros(2), params, solver="power"
            )

    def test_lenient_returns_flagged(self):
        params = RankingParams(tolerance=1e-15, max_iter=3, strict=False)
        x, info = iterate_to_fixpoint(
            halve_toward(np.ones(2)), np.zeros(2), params, solver="power"
        )
        assert not info.converged
        assert info.iterations == 3

    def test_callback_sees_every_iteration(self):
        seen = []
        params = RankingParams(tolerance=1e-9, max_iter=100)
        iterate_to_fixpoint(
            halve_toward(np.ones(2)),
            np.zeros(2),
            params,
            solver="power",
            callback=lambda i, r: seen.append((i, r)),
        )
        assert [i for i, _ in seen] == list(range(1, len(seen) + 1))
        assert seen[-1][1] < 1e-9

    def test_progress_hooks_fire(self):
        from repro.observability import SolverTelemetry

        telemetry = SolverTelemetry()
        params = RankingParams(
            tolerance=1e-9, max_iter=100, progress=telemetry
        )
        iterate_to_fixpoint(
            halve_toward(np.ones(2)),
            np.zeros(2),
            params,
            solver="power",
            label="engine-test",
            kernel="scipy",
        )
        run = telemetry.runs[-1]
        assert run.label == "engine-test"
        assert run.kernel == "scipy"
        assert run.iterations

    def test_kernel_none_stays_none_in_telemetry(self):
        from repro.observability import SolverTelemetry

        telemetry = SolverTelemetry()
        params = RankingParams(
            tolerance=1e-9, max_iter=100, progress=telemetry
        )
        iterate_to_fixpoint(
            halve_toward(np.ones(2)), np.zeros(2), params, solver="jacobi"
        )
        assert telemetry.runs[-1].kernel is None


class TestResidualNorm:
    def test_norms(self):
        d = np.array([3.0, -4.0])
        assert residual_norm(d, "l1") == pytest.approx(7.0)
        assert residual_norm(d, "l2") == pytest.approx(5.0)
        assert residual_norm(d, "linf") == pytest.approx(4.0)

    def test_unknown_norm(self):
        with pytest.raises(ConfigError):
            residual_norm(np.ones(2), "l3")


class TestConvergenceInfoLocation:
    def test_reexported_from_ranking_base(self):
        from repro.ranking.base import ConvergenceInfo as FromBase

        assert FromBase is ConvergenceInfo

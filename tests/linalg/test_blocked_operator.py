"""Tests for the out-of-core :class:`~repro.linalg.BlockedOperator`."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import ConfigError, GraphError
from repro.linalg import BlockedOperator, CsrOperator, ThrottledOperator
from repro.linalg.registry import solve
from repro.config import RankingParams
from repro.throttle.transform import throttle_transform
from repro.webgraph.store import ShardedGraphStore


def _stochastic(n: int, density: float, seed: int) -> sp.csr_matrix:
    m = sp.random(n, n, density=density, random_state=seed, format="csr")
    sums = np.asarray(m.sum(axis=1)).ravel()
    scale = np.where(sums > 0, 1.0 / np.where(sums > 0, sums, 1.0), 0.0)
    return (sp.diags(scale) @ m).tocsr()


@pytest.fixture(scope="module")
def matrix() -> sp.csr_matrix:
    return _stochastic(120, 0.04, seed=13)


@pytest.fixture()
def store(matrix, tmp_path) -> ShardedGraphStore:
    return ShardedGraphStore.from_matrix(matrix, tmp_path / "store", block_size=32)


class TestBlockedMatvec:
    def test_matches_transpose_matvec(self, matrix, store, rng):
        x = rng.random(matrix.shape[0])
        with BlockedOperator(store) as op:
            np.testing.assert_allclose(op.rmatvec(x), matrix.T @ x, atol=1e-12)

    def test_tiny_cache_still_exact(self, matrix, store, rng):
        x = rng.random(matrix.shape[0])
        with BlockedOperator(store, cache_blocks=1) as op:
            np.testing.assert_allclose(op.rmatvec(x), matrix.T @ x, atol=1e-12)
            assert op.cached_blocks <= 1

    def test_cache_stays_bounded(self, store, rng):
        with BlockedOperator(store, cache_blocks=2) as op:
            assert store.n_blocks > 2
            for _ in range(3):
                op.rmatvec(rng.random(op.n))
            assert op.cached_blocks <= 2

    def test_open_by_path(self, matrix, store, rng):
        x = rng.random(matrix.shape[0])
        with BlockedOperator(store.directory) as op:
            np.testing.assert_allclose(op.rmatvec(x), matrix.T @ x, atol=1e-12)

    def test_metadata(self, matrix, store):
        with BlockedOperator(store) as op:
            assert op.n == matrix.shape[0]
            assert op.kernel == "blocked"
            sums = np.asarray(matrix.sum(axis=1)).ravel()
            np.testing.assert_array_equal(op.dangling_mask, sums <= 1e-12)
            np.testing.assert_allclose(op.row_sums(), sums, atol=1e-12)
            np.testing.assert_allclose(
                op.diagonal(), matrix.diagonal(), atol=1e-12
            )

    def test_materialize_matches(self, matrix, store):
        with BlockedOperator(store) as op:
            assert (op.materialize() != matrix).nnz == 0

    def test_closed_operator_rejects_calls(self, store):
        op = BlockedOperator(store)
        op.close()
        with pytest.raises(GraphError, match="closed"):
            op.rmatvec(np.zeros(op.n))

    def test_rejects_bad_vector(self, store):
        with BlockedOperator(store) as op:
            with pytest.raises(GraphError):
                op.rmatvec(np.zeros(7))

    def test_rejects_non_store(self):
        with pytest.raises(GraphError, match="ShardedGraphStore"):
            BlockedOperator(sp.eye(4, format="csr"))

    def test_rejects_bad_config(self, store):
        with pytest.raises(ConfigError):
            BlockedOperator(store, cache_blocks=0)
        with pytest.raises(ConfigError):
            BlockedOperator(store, workers=-1)


class TestThrottledComposition:
    @pytest.mark.parametrize("full_throttle", ["self", "dangling"])
    def test_matches_materialized_transform(
        self, matrix, store, rng, full_throttle
    ):
        n = matrix.shape[0]
        kappa = np.zeros(n)
        kappa[::7] = 1.0
        kappa[3::11] = 0.5
        explicit = throttle_transform(matrix, kappa, full_throttle=full_throttle)
        x = rng.random(n)
        with BlockedOperator(store, cache_blocks=2) as base:
            throttled = ThrottledOperator(base, kappa, full_throttle=full_throttle)
            try:
                np.testing.assert_allclose(
                    throttled.rmatvec(x), explicit.T @ x, atol=1e-12
                )
            finally:
                throttled.close()

    def test_solve_matches_in_memory_path(self, matrix, store):
        n = matrix.shape[0]
        kappa = np.zeros(n)
        kappa[::9] = 0.7
        params = RankingParams(tolerance=1e-12, max_iter=2000)
        with BlockedOperator(store, cache_blocks=2) as base:
            throttled = ThrottledOperator(base, kappa, full_throttle="dangling")
            try:
                blocked = solve(throttled, params, solver="power")
            finally:
                throttled.close()
        csr_base = CsrOperator(matrix)
        reference_op = ThrottledOperator(csr_base, kappa, full_throttle="dangling")
        try:
            reference = solve(reference_op, params, solver="power")
        finally:
            reference_op.close()
            csr_base.close()
        np.testing.assert_allclose(blocked.scores, reference.scores, atol=1e-9)

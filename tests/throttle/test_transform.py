"""Unit + property tests for the T' -> T'' influence-throttle transform."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ThrottleError
from repro.graph.matrix import is_row_stochastic, row_sums
from repro.throttle import ThrottleVector, throttle_transform


def _stochastic(rows: list[list[float]]) -> sp.csr_matrix:
    return sp.csr_matrix(np.asarray(rows, dtype=np.float64))


class TestTransform:
    def test_noop_when_thresholds_met(self):
        m = _stochastic([[0.6, 0.4], [0.0, 1.0]])
        out = throttle_transform(m, ThrottleVector([0.5, 0.5]))
        np.testing.assert_allclose(out.toarray(), m.toarray())

    def test_boosts_deficient_diagonal(self):
        m = _stochastic([[0.2, 0.8], [0.0, 1.0]])
        out = throttle_transform(m, ThrottleVector([0.5, 0.0]))
        assert out[0, 0] == pytest.approx(0.5)
        assert out[0, 1] == pytest.approx(0.5)

    def test_offdiagonal_rescaled_proportionally(self):
        m = _stochastic([[0.1, 0.6, 0.3], [0.0, 1.0, 0.0], [0.0, 0.0, 1.0]])
        out = throttle_transform(m, ThrottleVector([0.4, 0.0, 0.0]))
        # Off-diagonal mass (0.9) rescaled to 0.6 keeping the 2:1 ratio.
        assert out[0, 1] == pytest.approx(0.4)
        assert out[0, 2] == pytest.approx(0.2)

    def test_missing_diagonal_inserted(self):
        """Rows with no structural diagonal still get their kappa."""
        m = _stochastic([[0.0, 1.0], [0.0, 1.0]])
        m.eliminate_zeros()
        out = throttle_transform(m, ThrottleVector([0.7, 0.0]))
        assert out[0, 0] == pytest.approx(0.7)
        assert out[0, 1] == pytest.approx(0.3)

    def test_preserves_row_stochasticity(self, small_source_graph, rng):
        kappa = ThrottleVector(rng.random(small_source_graph.n_sources))
        out = throttle_transform(small_source_graph.matrix, kappa)
        assert is_row_stochastic(out, atol=1e-9, allow_zero_rows=False)

    def test_diagonal_at_least_kappa(self, small_source_graph, rng):
        kappa_arr = rng.random(small_source_graph.n_sources)
        out = throttle_transform(small_source_graph.matrix, ThrottleVector(kappa_arr))
        assert (out.diagonal() >= kappa_arr - 1e-12).all()

    def test_zero_kappa_is_identity(self, small_source_graph):
        out = throttle_transform(
            small_source_graph.matrix,
            ThrottleVector.zeros(small_source_graph.n_sources),
        )
        diff = (out - small_source_graph.matrix).tocoo()
        assert diff.nnz == 0 or np.abs(diff.data).max() < 1e-15

    def test_kappa_one_self_mode(self):
        m = _stochastic([[0.2, 0.8], [0.5, 0.5]])
        out = throttle_transform(m, ThrottleVector([1.0, 0.0]), full_throttle="self")
        assert out[0, 0] == pytest.approx(1.0)
        assert out[0, 1] == pytest.approx(0.0, abs=1e-15)

    def test_kappa_one_dangling_mode(self):
        m = _stochastic([[0.2, 0.8], [0.5, 0.5]])
        out = throttle_transform(
            m, ThrottleVector([1.0, 0.0]), full_throttle="dangling"
        )
        assert row_sums(out)[0] == pytest.approx(0.0, abs=1e-15)
        assert row_sums(out)[1] == pytest.approx(1.0)

    def test_dangling_mode_zeroes_pure_self_rows_too(self):
        m = _stochastic([[1.0, 0.0], [0.5, 0.5]])
        out = throttle_transform(
            m, ThrottleVector([1.0, 0.0]), full_throttle="dangling"
        )
        assert row_sums(out)[0] == pytest.approx(0.0, abs=1e-15)

    def test_partial_kappa_identical_across_modes(self, small_source_graph, rng):
        kappa = ThrottleVector(0.99 * rng.random(small_source_graph.n_sources))
        a = throttle_transform(
            small_source_graph.matrix, kappa, full_throttle="self"
        )
        b = throttle_transform(
            small_source_graph.matrix, kappa, full_throttle="dangling"
        )
        assert (a - b).nnz == 0

    def test_unknown_mode_rejected(self):
        m = _stochastic([[1.0]])
        with pytest.raises(ThrottleError, match="full_throttle"):
            throttle_transform(m, ThrottleVector([0.0]), full_throttle="bogus")

    def test_size_mismatch_rejected(self):
        m = _stochastic([[1.0]])
        with pytest.raises(ThrottleError, match="covers"):
            throttle_transform(m, ThrottleVector([0.0, 0.0]))

    def test_non_square_rejected(self):
        with pytest.raises(ThrottleError, match="square"):
            throttle_transform(sp.csr_matrix((2, 3)), ThrottleVector([0.0, 0.0]))

    def test_substochastic_deficient_row_rejected(self):
        """A row that needs boosting but has no off-diagonal mass means the
        input was not row-stochastic."""
        m = sp.csr_matrix(np.array([[0.3, 0.0], [0.0, 1.0]]))
        with pytest.raises(ThrottleError, match="off-diagonal"):
            throttle_transform(m, ThrottleVector([0.9, 0.0]))

    @given(st.data())
    @settings(max_examples=60, deadline=None)
    def test_invariants_property(self, data):
        """For random stochastic matrices and random kappa:
        rows sum to 1, diagonals >= kappa, off-diagonal ratios preserved."""
        n = data.draw(st.integers(min_value=2, max_value=8))
        gen = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        raw = gen.random((n, n)) + 0.01
        m = sp.csr_matrix(raw / raw.sum(axis=1, keepdims=True))
        kappa_arr = gen.random(n) * 0.99  # stay below full throttle
        out = throttle_transform(m, ThrottleVector(kappa_arr))
        sums = row_sums(out)
        np.testing.assert_allclose(sums, 1.0, atol=1e-9)
        assert (out.diagonal() >= kappa_arr - 1e-12).all()
        # Off-diagonal proportions preserved within each boosted row.
        dense_in = m.toarray()
        dense_out = out.toarray()
        for i in range(n):
            if dense_in[i, i] < kappa_arr[i]:
                off_in = np.delete(dense_in[i], i)
                off_out = np.delete(dense_out[i], i)
                ratio = off_out[off_in > 0] / off_in[off_in > 0]
                np.testing.assert_allclose(ratio, ratio[0], rtol=1e-9)


class TestEdgeCases:
    """The seams the correctness audit exists to pin down."""

    def test_diag_exactly_kappa_untouched(self):
        # diag == κ does not *need* boosting: the row must come through
        # byte-identical, not rescaled through the (1-κ)/off_mass path.
        m = _stochastic([[0.4, 0.6], [0.3, 0.7]])
        out = throttle_transform(m, ThrottleVector([0.4, 0.0]))
        np.testing.assert_array_equal(out.toarray(), m.toarray())

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_diag_equal_kappa_property(self, data):
        """Property: setting κ_i = T'_ii exactly is always the identity."""
        n = data.draw(st.integers(min_value=2, max_value=8))
        gen = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        raw = gen.random((n, n)) + 0.01
        m = sp.csr_matrix(raw / raw.sum(axis=1, keepdims=True))
        out = throttle_transform(m, ThrottleVector(m.diagonal().copy()))
        np.testing.assert_allclose(out.toarray(), m.toarray(), atol=0)

    def test_kappa_one_with_structurally_absent_diagonal(self):
        # κ=1 on a row whose diagonal slot holds no stored entry at all.
        m = sp.csr_matrix(
            (np.array([0.5, 0.5]), (np.array([0, 0]), np.array([1, 2]))),
            shape=(3, 3),
        )
        m = m.tolil()
        m[1] = [0.2, 0.3, 0.5]
        m[2] = [0.0, 1.0, 0.0]
        m = m.tocsr()
        assert m[0, 0] == 0.0  # structurally absent
        self_mode = throttle_transform(m, ThrottleVector([1.0, 0.0, 0.0]))
        assert self_mode[0, 0] == 1.0
        assert row_sums(self_mode)[0] == pytest.approx(1.0)
        dangling_mode = throttle_transform(
            m, ThrottleVector([1.0, 0.0, 0.0]), full_throttle="dangling"
        )
        assert row_sums(dangling_mode)[0] == 0.0

    @given(st.data())
    @settings(max_examples=40, deadline=None)
    def test_dangling_mode_with_renormalization_property(self, data):
        """Property: ``full_throttle="dangling"`` + the σ/||σ|| convention.

        κ=1 rows leak mass (the walk is substochastic), yet the ranking
        convention renormalizes σ to a distribution — so the solve must
        still produce a valid distribution with the throttled rows'
        *columns* starved relative to the self-loop reading.
        """
        from repro.config import RankingParams
        from repro.ranking.power import power_iteration

        n = data.draw(st.integers(min_value=3, max_value=8))
        gen = np.random.default_rng(data.draw(st.integers(0, 2**31 - 1)))
        raw = gen.random((n, n)) + 0.01
        m = sp.csr_matrix(raw / raw.sum(axis=1, keepdims=True))
        n_full = data.draw(st.integers(min_value=1, max_value=n - 1))
        kappa_arr = np.zeros(n)
        kappa_arr[gen.choice(n, size=n_full, replace=False)] = 1.0
        out = throttle_transform(
            m, ThrottleVector(kappa_arr), full_throttle="dangling"
        )
        # Structure: killed rows empty, the rest untouched.
        sums = row_sums(out)
        np.testing.assert_allclose(sums[kappa_arr == 1.0], 0.0, atol=0)
        np.testing.assert_allclose(sums[kappa_arr < 1.0], 1.0, atol=1e-12)
        assert is_row_stochastic(out, allow_zero_rows=True)
        # σ/||σ|| renormalization: scores remain a distribution and the
        # muted sources keep only teleport-sourced mass (strictly less
        # than under the self-loop reading, which traps mass on them).
        result = power_iteration(out, RankingParams(tolerance=1e-12))
        assert result.scores.sum() == pytest.approx(1.0)
        assert (result.scores >= 0).all()
        self_loop = power_iteration(
            throttle_transform(m, ThrottleVector(kappa_arr)),
            RankingParams(tolerance=1e-12),
        )
        muted = kappa_arr == 1.0
        assert result.scores[muted].sum() < self_loop.scores[muted].sum()

"""Unit tests for kappa-assignment strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ThrottleParams
from repro.errors import ThrottleError
from repro.throttle import assign_kappa
from repro.throttle.strategies import top_k_flags


class TestTopKFlags:
    def test_basic(self):
        flags = top_k_flags(np.array([0.1, 0.9, 0.5]), 2)
        np.testing.assert_array_equal(flags, [False, True, True])

    def test_zero_k(self):
        assert not top_k_flags(np.array([1.0, 2.0]), 0).any()

    def test_all_k(self):
        assert top_k_flags(np.array([1.0, 2.0]), 2).all()

    def test_ties_prefer_lower_id(self):
        flags = top_k_flags(np.array([0.5, 0.5, 0.5]), 1)
        np.testing.assert_array_equal(flags, [True, False, False])

    def test_range_check(self):
        with pytest.raises(ThrottleError):
            top_k_flags(np.array([1.0]), 5)


class TestAssignKappa:
    def test_paper_default_top_k(self):
        scores = np.linspace(0, 1, 1000)
        kappa = assign_kappa(scores)  # defaults: top 20000/738626 ~ 2.7 %
        assert kappa.fully_throttled().size == round(1000 * 20_000 / 738_626)
        # The throttled ones are the highest scores.
        assert scores[kappa.fully_throttled()].min() > 0.95

    def test_top_k_binary_values(self):
        scores = np.arange(10, dtype=np.float64)
        kappa = assign_kappa(scores, ThrottleParams(strategy="top_k", top_fraction=0.3))
        assert set(np.unique(kappa.kappa)) <= {0.0, 1.0}
        assert kappa.fully_throttled().size == 3

    def test_threshold(self):
        scores = np.array([0.0, 0.2, 0.8])
        kappa = assign_kappa(
            scores, ThrottleParams(strategy="threshold", threshold=0.5)
        )
        np.testing.assert_allclose(kappa.kappa, [0.0, 0.0, 1.0])

    def test_proportional(self):
        scores = np.array([0.0, 0.5, 1.0])
        kappa = assign_kappa(scores, ThrottleParams(strategy="proportional"))
        np.testing.assert_allclose(kappa.kappa, [0.0, 0.5, 1.0])

    def test_proportional_all_zero_scores(self):
        kappa = assign_kappa(
            np.zeros(4), ThrottleParams(strategy="proportional")
        )
        assert (kappa.kappa == 0).all()

    def test_linear_rank_based(self):
        scores = np.array([0.1, 0.9, 0.5, 0.0])
        kappa = assign_kappa(scores, ThrottleParams(strategy="linear"))
        # Highest score gets kappa_high; zero-score source pinned to low.
        assert kappa.kappa[1] == pytest.approx(1.0)
        assert kappa.kappa[3] == 0.0
        assert kappa.kappa[0] < kappa.kappa[2] < kappa.kappa[1]

    def test_custom_kappa_levels(self):
        scores = np.array([0.0, 1.0])
        kappa = assign_kappa(
            scores,
            ThrottleParams(
                strategy="top_k", top_fraction=0.5, kappa_high=0.8, kappa_low=0.1
            ),
        )
        np.testing.assert_allclose(sorted(kappa.kappa), [0.1, 0.8])

    def test_rejects_negative_scores(self):
        with pytest.raises(ThrottleError):
            assign_kappa(np.array([-1.0]))

    def test_rejects_empty(self):
        with pytest.raises(ThrottleError):
            assign_kappa(np.array([]))

"""Unit tests for :class:`repro.throttle.ThrottleVector`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ThrottleError
from repro.throttle import ThrottleVector


class TestConstruction:
    def test_basic(self):
        v = ThrottleVector([0.0, 0.5, 1.0])
        assert v.n == 3
        assert v[1] == 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ThrottleError):
            ThrottleVector([1.5])
        with pytest.raises(ThrottleError):
            ThrottleVector([-0.1])

    def test_rejects_nan(self):
        with pytest.raises(ThrottleError):
            ThrottleVector([np.nan])

    def test_rejects_empty(self):
        with pytest.raises(ThrottleError):
            ThrottleVector([])

    def test_zeros(self):
        v = ThrottleVector.zeros(4)
        assert (v.kappa == 0).all()

    def test_constant(self):
        v = ThrottleVector.constant(3, 0.7)
        assert (v.kappa == 0.7).all()

    def test_from_flags(self):
        v = ThrottleVector.from_flags([True, False], kappa_high=0.9, kappa_low=0.1)
        np.testing.assert_allclose(v.kappa, [0.9, 0.1])

    def test_immutability(self):
        v = ThrottleVector.zeros(2)
        with pytest.raises(ValueError):
            v.kappa[0] = 1.0

    def test_input_copy_not_aliased(self):
        arr = np.zeros(3)
        v = ThrottleVector(arr)
        arr[0] = 1.0
        assert v[0] == 0.0


class TestAccessors:
    def test_throttled_mask(self):
        v = ThrottleVector([0.0, 0.5, 1.0])
        np.testing.assert_array_equal(v.throttled_mask(), [False, True, True])
        np.testing.assert_array_equal(
            v.throttled_mask(above=0.6), [False, False, True]
        )

    def test_fully_throttled(self):
        v = ThrottleVector([0.0, 1.0, 0.99])
        np.testing.assert_array_equal(v.fully_throttled(), [1])

    def test_updated(self):
        v = ThrottleVector.zeros(3)
        w = v.updated([0, 2], 0.8)
        np.testing.assert_allclose(w.kappa, [0.8, 0.0, 0.8])
        assert (v.kappa == 0).all()  # original untouched

    def test_updated_range_check(self):
        v = ThrottleVector.zeros(3)
        with pytest.raises(ThrottleError):
            v.updated([5], 1.0)

    def test_equality(self):
        assert ThrottleVector.zeros(2) == ThrottleVector([0.0, 0.0])
        assert ThrottleVector.zeros(2) != ThrottleVector([0.0, 1.0])

    def test_repr_counts_throttled(self):
        v = ThrottleVector([0.0, 0.3, 0.9])
        assert "throttled=2" in repr(v)

"""Unit tests for spam proximity (Section 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import SpamProximityParams
from repro.errors import ThrottleError
from repro.graph import PageGraph
from repro.sources import SourceAssignment, SourceGraph
from repro.throttle import spam_proximity
from repro.throttle.spam_proximity import inverse_transition_matrix


def _chain_source_graph(n: int = 6) -> SourceGraph:
    """Source chain 0 -> 1 -> ... -> n-1 (one page per source)."""
    g = PageGraph.from_edges(np.arange(n - 1), np.arange(1, n), n)
    return SourceGraph.from_page_graph(g, SourceAssignment.identity(n))


class TestInverseMatrix:
    def test_reverses_edges(self, small_source_graph):
        inv = inverse_transition_matrix(small_source_graph.matrix)
        m = small_source_graph.matrix
        # An off-diagonal edge (i, j) in T' must appear as (j, i) in U.
        coo = m.tocoo()
        for i, j in zip(coo.row[:50], coo.col[:50]):
            if i != j:
                assert inv[j, i] > 0

    def test_self_edges_dropped(self, small_source_graph):
        inv = inverse_transition_matrix(small_source_graph.matrix)
        assert np.abs(inv.diagonal()).max() == 0.0

    def test_rows_normalized(self, small_source_graph):
        inv = inverse_transition_matrix(small_source_graph.matrix)
        sums = np.asarray(inv.sum(axis=1)).ravel()
        ok = (np.abs(sums - 1.0) < 1e-9) | (sums == 0.0)
        assert ok.all()

    def test_uniform_over_in_neighbours(self):
        sg = _chain_source_graph(4)
        inv = inverse_transition_matrix(sg.matrix)
        # Source 2's only in-neighbour is 1 -> reversed edge weight 1.
        assert inv[2, 1] == pytest.approx(1.0)


class TestSpamProximity:
    def test_seeds_score_highest_in_chain(self):
        """Proximity flows backwards along links *into* spam."""
        sg = _chain_source_graph(6)
        # Seed the end of the chain: 5. Its in-neighbour chain is 4,3,2,...
        result = spam_proximity(sg, [5])
        scores = result.scores
        assert scores[5] == scores.max()
        # Monotone decay walking away from the seed.
        assert scores[4] > scores[3] > scores[2] > scores[1] > scores[0] - 1e-15

    def test_sources_linking_to_spam_inherit_proximity(self, tiny_dataset):
        ds = tiny_dataset
        sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
        result = spam_proximity(sg, ds.spam_sources[:2])
        # All ground-truth spam interlinks, so unseeded spam scores must be
        # concentrated far above typical sources (individual members can
        # still dip near the median depending on ring position).
        unseeded = np.setdiff1d(ds.spam_sources, ds.spam_sources[:2])
        assert result.scores[unseeded].mean() > 3 * np.median(result.scores)
        assert (result.scores[unseeded] > np.median(result.scores)).mean() >= 0.5

    def test_disconnected_sources_score_zero(self):
        # Two disjoint chains; seed lives in the first one.
        g = PageGraph.from_edges([0, 2], [1, 3], 4)
        sg = SourceGraph.from_page_graph(g, SourceAssignment.identity(4))
        result = spam_proximity(sg, [1])
        assert result.scores[2] == pytest.approx(0.0, abs=1e-12)
        assert result.scores[3] == pytest.approx(0.0, abs=1e-12)

    def test_beta_controls_decay(self):
        sg = _chain_source_graph(8)
        fast = spam_proximity(sg, [7], SpamProximityParams(beta=0.5))
        slow = spam_proximity(sg, [7], SpamProximityParams(beta=0.95))
        # Higher beta propagates further: distant sources score more.
        assert slow.scores[1] > fast.scores[1]

    def test_accepts_raw_matrix(self, small_source_graph):
        result = spam_proximity(small_source_graph.matrix, [0])
        assert result.n == small_source_graph.n_sources

    def test_empty_seeds_rejected(self, small_source_graph):
        with pytest.raises(ThrottleError):
            spam_proximity(small_source_graph, [])

    def test_out_of_range_seeds_rejected(self, small_source_graph):
        with pytest.raises(ThrottleError):
            spam_proximity(small_source_graph, [10_000])

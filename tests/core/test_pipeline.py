"""Unit tests for the end-to-end pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ThrottleParams
from repro.core import SpamResilientPipeline
from repro.errors import ConfigError, ReproError
from repro.throttle import ThrottleVector


class TestPipeline:
    def test_rank_with_seeds(self, tiny_dataset, rng):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        seeds = ds.spam_sources[:2]
        result = pipe.rank(ds.graph, ds.assignment, spam_seeds=seeds)
        assert result.scores.n == ds.n_sources
        assert result.proximity is not None
        assert result.kappa.throttled_mask().any()

    def test_rank_without_seeds_is_baseline(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        result = pipe.rank(ds.graph, ds.assignment)
        baseline = pipe.baseline_sourcerank(ds.graph, ds.assignment)
        np.testing.assert_allclose(result.scores.scores, baseline.scores, atol=1e-12)
        assert result.proximity is None
        assert not result.kappa.throttled_mask().any()

    def test_explicit_kappa_bypasses_proximity(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        kappa = ThrottleVector.zeros(ds.n_sources).updated(ds.spam_sources, 1.0)
        result = pipe.rank(ds.graph, ds.assignment, kappa=kappa)
        assert result.proximity is None
        assert result.kappa is kappa

    def test_throttling_demotes_known_spam(self, tiny_dataset):
        """End-to-end claim: with a seed subsample, ground-truth spam ranks
        worse than under the unthrottled baseline."""
        ds = tiny_dataset
        pipe = SpamResilientPipeline(
            throttle=ThrottleParams(top_fraction=16 / ds.n_sources)
        )
        seeds = ds.spam_sources[:2]
        throttled = pipe.rank(ds.graph, ds.assignment, spam_seeds=seeds)
        baseline = pipe.baseline_sourcerank(ds.graph, ds.assignment)
        before = baseline.percentiles()[ds.spam_sources].mean()
        after = throttled.scores.percentiles()[ds.spam_sources].mean()
        assert after < before

    def test_top_sources(self, tiny_dataset):
        ds = tiny_dataset
        result = SpamResilientPipeline().rank(ds.graph, ds.assignment)
        top = result.top_sources(5)
        assert top.size == 5
        scores = result.scores.scores
        assert scores[top[0]] == scores.max()

    def test_baseline_pagerank(self, tiny_dataset):
        ds = tiny_dataset
        pr = SpamResilientPipeline().baseline_pagerank(ds.graph)
        assert pr.n == ds.graph.n_nodes

    def test_uniform_weighting_option(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline(weighting="uniform")
        sg = pipe.build_source_graph(ds.graph, ds.assignment)
        assert sg.weighting == "uniform"

    def test_bad_weighting_rejected(self):
        with pytest.raises(ConfigError):
            SpamResilientPipeline(weighting="bogus")

    def test_bad_full_throttle_rejected(self):
        with pytest.raises(ConfigError):
            SpamResilientPipeline(full_throttle="bogus")

    def test_baseline_reuses_rank_source_graph(self, tiny_dataset, monkeypatch):
        """rank + baseline on the same web quotient the page graph once."""
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        calls = []
        original = SpamResilientPipeline.build_source_graph

        def counted(self, graph, assignment):
            calls.append(1)
            return original(self, graph, assignment)

        monkeypatch.setattr(SpamResilientPipeline, "build_source_graph", counted)
        pipe.rank(ds.graph, ds.assignment, spam_seeds=ds.spam_sources[:2])
        pipe.baseline_sourcerank(ds.graph, ds.assignment)
        assert len(calls) == 1

    def test_baseline_accepts_prebuilt_source_graph(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        result = pipe.rank(ds.graph, ds.assignment)
        direct = pipe.baseline_sourcerank(source_graph=result.source_graph)
        indirect = pipe.baseline_sourcerank(ds.graph, ds.assignment)
        np.testing.assert_allclose(direct.scores, indirect.scores, atol=1e-12)

    def test_baseline_without_inputs_rejected(self):
        with pytest.raises(ConfigError):
            SpamResilientPipeline().baseline_sourcerank()

    def test_clear_cache_rebuilds(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        first = pipe._shared_operators(ds.graph, ds.assignment)
        assert pipe._shared_operators(ds.graph, ds.assignment) is first
        pipe.clear_cache()
        assert pipe._shared_operators(ds.graph, ds.assignment) is not first

    def test_full_throttle_mode_changes_result(self, tiny_dataset):
        ds = tiny_dataset
        seeds = ds.spam_sources[:3]
        a = SpamResilientPipeline(full_throttle="dangling").rank(
            ds.graph, ds.assignment, spam_seeds=seeds
        )
        b = SpamResilientPipeline(full_throttle="self").rank(
            ds.graph, ds.assignment, spam_seeds=seeds
        )
        assert not np.allclose(a.scores.scores, b.scores.scores)


class TestContextManager:
    def test_close_releases_on_error_path(self, tiny_dataset):
        """Resources must be released even when a stage raises mid-rank."""
        ds = tiny_dataset
        bad_kappa = ThrottleVector.zeros(ds.n_sources + 1)  # wrong length
        with pytest.raises(ReproError):
            with SpamResilientPipeline() as pipe:
                pipe.rank(ds.graph, ds.assignment, kappa=bad_kappa)
                pytest.fail("rank must raise on a mis-sized kappa")
        assert pipe._shared is None

    def test_clean_exit_also_releases(self, tiny_dataset):
        ds = tiny_dataset
        with SpamResilientPipeline() as pipe:
            pipe.rank(ds.graph, ds.assignment)
            assert pipe._shared is not None
        assert pipe._shared is None

    def test_close_is_clear_cache_alias(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        pipe._shared_operators(ds.graph, ds.assignment)
        pipe.close()
        assert pipe._shared is None
        pipe.close()  # idempotent


class TestPipelineAudit:
    def test_clean_run_passes_strict_audit(self, tiny_dataset):
        from repro.config import AuditParams, RankingParams, SpamProximityParams

        ds = tiny_dataset
        audit = AuditParams()
        with SpamResilientPipeline(
            ranking=RankingParams(audit=audit),
            proximity=SpamProximityParams(audit=audit),
        ) as pipe:
            result = pipe.rank(
                ds.graph, ds.assignment, spam_seeds=ds.spam_sources[:2]
            )
        assert result.scores.n == ds.n_sources
        assert "audit" in [c.name for c in result.trace.children]

    def test_audit_disabled_leaves_trace_unchanged(self, tiny_dataset):
        ds = tiny_dataset
        with SpamResilientPipeline() as pipe:
            result = pipe.rank(ds.graph, ds.assignment)
        assert "audit" not in [c.name for c in result.trace.children]

    def test_strict_audit_catches_corrupt_proximity(self, tiny_dataset, monkeypatch):
        """A stage emitting an invalid σ must abort the run with AuditError."""
        import numpy as np

        from repro.config import AuditParams, RankingParams
        from repro.core import pipeline as pipeline_mod
        from repro.errors import AuditError
        from repro.linalg.iterate import ConvergenceInfo
        from repro.ranking.base import RankingResult

        ds = tiny_dataset

        def corrupt_proximity(source_graph, seeds, params, *, operator=None):
            scores = np.full(source_graph.n_sources, 1.0)
            scores[0] = -0.5  # negative probability — a solver bug
            info = ConvergenceInfo(
                converged=True,
                iterations=1,
                residual=0.0,
                tolerance=1e-8,
                residual_history=(0.0,),
            )
            return RankingResult(scores, info, label="spam-proximity")

        monkeypatch.setattr(pipeline_mod, "spam_proximity", corrupt_proximity)
        with SpamResilientPipeline(
            ranking=RankingParams(audit=AuditParams())
        ) as pipe:
            with pytest.raises(AuditError, match="score_nonnegative"):
                pipe.rank(
                    ds.graph, ds.assignment, spam_seeds=ds.spam_sources[:2]
                )

    def test_lenient_audit_records_and_continues(self, tiny_dataset, monkeypatch):
        import numpy as np

        from repro.config import AuditParams, RankingParams
        from repro.core import pipeline as pipeline_mod
        from repro.linalg.iterate import ConvergenceInfo
        from repro.observability.metrics import get_registry
        from repro.ranking.base import RankingResult

        ds = tiny_dataset

        def corrupt_rank(source_graph, kappa, params, **kwargs):
            scores = np.full(source_graph.n_sources, 1.0)
            scores[0] = -0.5  # negative probability — a solver bug
            info = ConvergenceInfo(
                converged=True,
                iterations=1,
                residual=0.0,
                tolerance=1e-8,
                residual_history=(0.0,),
            )
            return RankingResult(scores, info, label="sr-sourcerank")

        monkeypatch.setattr(
            pipeline_mod, "spam_resilient_sourcerank", corrupt_rank
        )

        def violation_count() -> float:
            counter = get_registry().counter(
                "repro_audit_violations_total",
                "Correctness-audit invariant violations",
                labelnames=("invariant",),
            )
            return sum(
                c.value
                for c in counter.children()
                if c.label_values == {"invariant": "score_nonnegative"}
            )

        before = violation_count()
        with SpamResilientPipeline(
            ranking=RankingParams(audit=AuditParams(strict=False))
        ) as pipe:
            result = pipe.rank(
                ds.graph, ds.assignment, spam_seeds=ds.spam_sources[:2]
            )
        assert result.scores.n == ds.n_sources
        assert violation_count() == before + 1

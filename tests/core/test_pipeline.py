"""Unit tests for the end-to-end pipeline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ThrottleParams
from repro.core import SpamResilientPipeline
from repro.errors import ConfigError, ReproError
from repro.throttle import ThrottleVector


class TestPipeline:
    def test_rank_with_seeds(self, tiny_dataset, rng):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        seeds = ds.spam_sources[:2]
        result = pipe.rank(ds.graph, ds.assignment, spam_seeds=seeds)
        assert result.scores.n == ds.n_sources
        assert result.proximity is not None
        assert result.kappa.throttled_mask().any()

    def test_rank_without_seeds_is_baseline(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        result = pipe.rank(ds.graph, ds.assignment)
        baseline = pipe.baseline_sourcerank(ds.graph, ds.assignment)
        np.testing.assert_allclose(result.scores.scores, baseline.scores, atol=1e-12)
        assert result.proximity is None
        assert not result.kappa.throttled_mask().any()

    def test_explicit_kappa_bypasses_proximity(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        kappa = ThrottleVector.zeros(ds.n_sources).updated(ds.spam_sources, 1.0)
        result = pipe.rank(ds.graph, ds.assignment, kappa=kappa)
        assert result.proximity is None
        assert result.kappa is kappa

    def test_throttling_demotes_known_spam(self, tiny_dataset):
        """End-to-end claim: with a seed subsample, ground-truth spam ranks
        worse than under the unthrottled baseline."""
        ds = tiny_dataset
        pipe = SpamResilientPipeline(
            throttle=ThrottleParams(top_fraction=16 / ds.n_sources)
        )
        seeds = ds.spam_sources[:2]
        throttled = pipe.rank(ds.graph, ds.assignment, spam_seeds=seeds)
        baseline = pipe.baseline_sourcerank(ds.graph, ds.assignment)
        before = baseline.percentiles()[ds.spam_sources].mean()
        after = throttled.scores.percentiles()[ds.spam_sources].mean()
        assert after < before

    def test_top_sources(self, tiny_dataset):
        ds = tiny_dataset
        result = SpamResilientPipeline().rank(ds.graph, ds.assignment)
        top = result.top_sources(5)
        assert top.size == 5
        scores = result.scores.scores
        assert scores[top[0]] == scores.max()

    def test_baseline_pagerank(self, tiny_dataset):
        ds = tiny_dataset
        pr = SpamResilientPipeline().baseline_pagerank(ds.graph)
        assert pr.n == ds.graph.n_nodes

    def test_uniform_weighting_option(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline(weighting="uniform")
        sg = pipe.build_source_graph(ds.graph, ds.assignment)
        assert sg.weighting == "uniform"

    def test_bad_weighting_rejected(self):
        with pytest.raises(ConfigError):
            SpamResilientPipeline(weighting="bogus")

    def test_bad_full_throttle_rejected(self):
        with pytest.raises(ConfigError):
            SpamResilientPipeline(full_throttle="bogus")

    def test_baseline_reuses_rank_source_graph(self, tiny_dataset, monkeypatch):
        """rank + baseline on the same web quotient the page graph once."""
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        calls = []
        original = SpamResilientPipeline.build_source_graph

        def counted(self, graph, assignment):
            calls.append(1)
            return original(self, graph, assignment)

        monkeypatch.setattr(SpamResilientPipeline, "build_source_graph", counted)
        pipe.rank(ds.graph, ds.assignment, spam_seeds=ds.spam_sources[:2])
        pipe.baseline_sourcerank(ds.graph, ds.assignment)
        assert len(calls) == 1

    def test_baseline_accepts_prebuilt_source_graph(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        result = pipe.rank(ds.graph, ds.assignment)
        direct = pipe.baseline_sourcerank(source_graph=result.source_graph)
        indirect = pipe.baseline_sourcerank(ds.graph, ds.assignment)
        np.testing.assert_allclose(direct.scores, indirect.scores, atol=1e-12)

    def test_baseline_without_inputs_rejected(self):
        with pytest.raises(ConfigError):
            SpamResilientPipeline().baseline_sourcerank()

    def test_clear_cache_rebuilds(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        first = pipe._shared_operators(ds.graph, ds.assignment)
        assert pipe._shared_operators(ds.graph, ds.assignment) is first
        pipe.clear_cache()
        assert pipe._shared_operators(ds.graph, ds.assignment) is not first

    def test_full_throttle_mode_changes_result(self, tiny_dataset):
        ds = tiny_dataset
        seeds = ds.spam_sources[:3]
        a = SpamResilientPipeline(full_throttle="dangling").rank(
            ds.graph, ds.assignment, spam_seeds=seeds
        )
        b = SpamResilientPipeline(full_throttle="self").rank(
            ds.graph, ds.assignment, spam_seeds=seeds
        )
        assert not np.allclose(a.scores.scores, b.scores.scores)


class TestContextManager:
    def test_close_releases_on_error_path(self, tiny_dataset):
        """Resources must be released even when a stage raises mid-rank."""
        ds = tiny_dataset
        bad_kappa = ThrottleVector.zeros(ds.n_sources + 1)  # wrong length
        with pytest.raises(ReproError):
            with SpamResilientPipeline() as pipe:
                pipe.rank(ds.graph, ds.assignment, kappa=bad_kappa)
                pytest.fail("rank must raise on a mis-sized kappa")
        assert pipe._shared is None

    def test_clean_exit_also_releases(self, tiny_dataset):
        ds = tiny_dataset
        with SpamResilientPipeline() as pipe:
            pipe.rank(ds.graph, ds.assignment)
            assert pipe._shared is not None
        assert pipe._shared is None

    def test_close_is_clear_cache_alias(self, tiny_dataset):
        ds = tiny_dataset
        pipe = SpamResilientPipeline()
        pipe._shared_operators(ds.graph, ds.assignment)
        pipe.close()
        assert pipe._shared is None
        pipe.close()  # idempotent

"""Tests for the ``python -m repro`` command-line interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import build_parser, main


@pytest.fixture()
def crawl_file(tmp_path):
    path = tmp_path / "crawl.tsv"
    path.write_text(
        "http://a.com/1\thttp://b.org/1\n"
        "http://a.com/2\thttp://b.org/1\n"
        "http://b.org/1\thttp://a.com/1\n"
        "http://spam.test/x\thttp://spam.test/y\n"
        "http://spam.test/y\thttp://spam.test/x\n"
        "http://a.com/1\thttp://spam.test/x\n"
    )
    return path


@pytest.fixture()
def edge_file(tmp_path):
    path = tmp_path / "edges.tsv"
    path.write_text("0 1\n1 2\n2 0\n3 0\n")
    return path


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rank_requires_input(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["rank"])

    def test_rank_inputs_exclusive(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["rank", "--edges", "x", "--dataset", "tiny"]
            )


class TestRankCommand:
    def test_rank_crawl(self, crawl_file, capsys):
        code = main(["rank", "--edges", str(crawl_file), "--top", "3"])
        assert code == 0
        out = capsys.readouterr().out
        assert "top 3 sources" in out

    def test_rank_with_blocklist(self, crawl_file, tmp_path, capsys):
        blocklist = tmp_path / "bad.txt"
        blocklist.write_text("spam.test\n# comment\n")
        code = main(
            ["rank", "--edges", str(crawl_file), "--blocklist", str(blocklist)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "1 blocklisted" in out
        assert "throttled sources" in out

    def test_rank_blocklist_warns_on_missing_host(self, crawl_file, tmp_path, capsys):
        blocklist = tmp_path / "bad.txt"
        blocklist.write_text("not-in-crawl.example\nspam.test\n")
        main(["rank", "--edges", str(crawl_file), "--blocklist", str(blocklist)])
        err = capsys.readouterr().err
        assert "not-in-crawl.example" in err

    def test_rank_with_audit(self, crawl_file, capsys):
        assert main(["rank", "--edges", str(crawl_file), "--audit"]) == 0
        out = capsys.readouterr().out
        assert "top" in out

    def test_audit_flags_parse(self):
        args = build_parser().parse_args(
            ["rank", "--dataset", "tiny", "--audit", "--audit-lenient"]
        )
        assert args.audit and args.audit_lenient
        args = build_parser().parse_args(["rank", "--dataset", "tiny"])
        assert not args.audit

    def test_rank_dataset(self, capsys):
        code = main(["rank", "--dataset", "tiny", "--top", "5"])
        assert code == 0
        assert "dataset tiny" in capsys.readouterr().out


class TestFiguresCommand:
    def test_fast_subset(self, capsys):
        code = main(["figures", "fig2", "fig3", "--fast"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Fig 2" in out
        assert "Fig 3" in out
        assert "Fig 5" not in out


class TestDatasetCommand:
    def test_writes_artifacts(self, tmp_path, capsys):
        out_dir = tmp_path / "ds"
        code = main(["dataset", "tiny", str(out_dir)])
        assert code == 0
        assert (out_dir / "edges.tsv").exists()
        assert (out_dir / "page_to_source.txt").exists()
        spam = np.loadtxt(out_dir / "spam_sources.txt", dtype=np.int64)
        assert spam.size == 8


class TestStatsCommand:
    def test_prints_stats(self, edge_file, capsys):
        code = main(["stats", str(edge_file)])
        assert code == 0
        out = capsys.readouterr().out
        assert "n_nodes" in out
        assert "weak components" in out


class TestCompressCommand:
    def test_writes_container(self, edge_file, tmp_path, capsys):
        out = tmp_path / "g.npz"
        code = main(["compress", str(edge_file), str(out)])
        assert code == 0
        assert out.exists()
        text = capsys.readouterr().out
        assert "bits/edge" in text

        from repro.graph import read_edge_list
        from repro.webgraph import CompressedGraph

        assert CompressedGraph.load(out).to_pagegraph() == read_edge_list(edge_file)

    def test_interval_codec_reports(self, edge_file, tmp_path, capsys):
        out = tmp_path / "g.npz"
        code = main(
            ["compress", str(edge_file), str(out), "--codec", "intervals"]
        )
        assert code == 0
        assert "interval codec" in capsys.readouterr().out


class TestResumeValidation:
    def test_resume_without_checkpoint_dir_is_parse_error(self, capsys):
        # Satellite regression: this used to be a soft runtime check that
        # only fired after the dataset was loaded; it must be a hard
        # argparse error before any work happens.
        with pytest.raises(SystemExit) as excinfo:
            main(["rank", "--dataset", "tiny", "--resume"])
        assert excinfo.value.code == 2
        err = capsys.readouterr().err
        assert "--resume requires --checkpoint-dir" in err

    def test_resume_with_checkpoint_dir_accepted(self, tmp_path, capsys):
        rc = main(
            [
                "rank",
                "--dataset",
                "tiny",
                "--resume",
                "--checkpoint-dir",
                str(tmp_path / "ckpt"),
            ]
        )
        assert rc == 0
        assert "top" in capsys.readouterr().out


class TestServeCommand:
    def test_serve_demo_and_restart_recovery(self, tmp_path, capsys):
        store = tmp_path / "snapshots"
        rc = main(
            [
                "serve",
                "--snapshot-dir",
                str(store),
                "--updates",
                "2",
                "--queries",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "bootstrapping" in out
        assert "state=healthy" in out
        assert "top 5 sources" in out

        rc = main(
            [
                "serve",
                "--snapshot-dir",
                str(store),
                "--updates",
                "1",
                "--queries",
                "1",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "recovered from snapshot store" in out

    def test_serve_with_crash_injection_degrades(self, tmp_path, capsys):
        rc = main(
            [
                "serve",
                "--snapshot-dir",
                str(tmp_path / "snapshots"),
                "--updates",
                "2",
                "--queries",
                "1",
                "--inject",
                "crash",
            ]
        )
        out = capsys.readouterr().out
        assert rc == 0
        assert "state=stale" in out

    def test_serve_requires_snapshot_dir(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["serve"])


class TestShard:
    def test_create_synthetic_and_info(self, tmp_path, capsys):
        out = tmp_path / "store"
        main(
            [
                "shard", "create", str(out),
                "--synthetic-sources", "300",
                "--block-size", "64",
            ]
        )
        created = capsys.readouterr().out
        assert "sources" in created
        main(["shard", "info", str(out), "--verify"])
        info = capsys.readouterr().out
        assert "n_sources: 300" in info
        assert "digests OK" in info

    def test_create_from_edges(self, edge_file, tmp_path, capsys):
        out = tmp_path / "store"
        main(["shard", "create", str(out), "--edges", str(edge_file)])
        main(["shard", "info", str(out)])
        info = capsys.readouterr().out
        assert "n_sources: 4" in info

    def test_rank_graph_store(self, tmp_path, capsys):
        out = tmp_path / "store"
        main(
            [
                "shard", "create", str(out),
                "--synthetic-sources", "300",
                "--block-size", "64",
            ]
        )
        capsys.readouterr()
        main(["rank", "--graph-store", str(out), "--top", "3"])
        ranked = capsys.readouterr().out
        assert "source-" in ranked

    def test_rank_graph_store_integer_blocklist(self, tmp_path, capsys):
        out = tmp_path / "store"
        main(
            [
                "shard", "create", str(out),
                "--synthetic-sources", "300",
                "--block-size", "64",
            ]
        )
        blocklist = tmp_path / "bad.txt"
        blocklist.write_text("3\n17\n")
        main(
            [
                "rank", "--graph-store", str(out),
                "--blocklist", str(blocklist), "--top", "3",
            ]
        )
        assert "throttling 2 blocklisted" in capsys.readouterr().out

    def test_rank_graph_store_rejects_host_blocklist(self, tmp_path):
        from repro.errors import ConfigError

        out = tmp_path / "store"
        main(
            [
                "shard", "create", str(out),
                "--synthetic-sources", "300",
                "--block-size", "64",
            ]
        )
        blocklist = tmp_path / "bad.txt"
        blocklist.write_text("spam.example\n")
        with pytest.raises(ConfigError, match="integer source ids"):
            main(
                [
                    "rank", "--graph-store", str(out),
                    "--blocklist", str(blocklist),
                ]
            )

"""Pipeline entry points over the sharded graph store."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.config import GraphStoreParams, RankingParams
from repro.core import SpamResilientPipeline, operator_from_store
from repro.errors import ConfigError
from repro.linalg import CsrOperator, ThrottledOperator
from repro.linalg.registry import solve
from repro.webgraph.store import ShardedGraphStore


def _stochastic(n: int, density: float, seed: int) -> sp.csr_matrix:
    m = sp.random(n, n, density=density, random_state=seed, format="csr")
    sums = np.asarray(m.sum(axis=1)).ravel()
    scale = np.where(sums > 0, 1.0 / np.where(sums > 0, sums, 1.0), 0.0)
    return (sp.diags(scale) @ m).tocsr()


@pytest.fixture(scope="module")
def matrix() -> sp.csr_matrix:
    return _stochastic(80, 0.06, seed=23)


@pytest.fixture()
def store(matrix, tmp_path) -> ShardedGraphStore:
    return ShardedGraphStore.from_matrix(matrix, tmp_path / "store", block_size=32)


class TestOperatorFromStore:
    def test_defaults(self, store):
        with operator_from_store(store) as op:
            assert op.kernel == "blocked"
            assert op.cache_blocks == GraphStoreParams().cache_blocks

    def test_params_respected(self, store):
        params = GraphStoreParams(cache_blocks=2)
        with operator_from_store(store, params) as op:
            assert op.cache_blocks == 2

    def test_param_validation(self):
        with pytest.raises(ConfigError):
            GraphStoreParams(cache_blocks=0)
        with pytest.raises(ConfigError):
            GraphStoreParams(block_size=0)
        with pytest.raises(ConfigError):
            GraphStoreParams(workers=-1)
        assert GraphStoreParams().with_(workers=2).workers == 2


class TestRankStore:
    def test_matches_in_memory_solve(self, matrix, store):
        n = matrix.shape[0]
        kappa = np.zeros(n)
        nonzero = np.asarray(matrix.sum(axis=1)).ravel() > 0
        kappa[nonzero & (np.arange(n) % 7 == 0)] = 0.8
        ranking = RankingParams(tolerance=1e-12, max_iter=2000)
        with SpamResilientPipeline(ranking=ranking) as pipe:
            result = pipe.rank_store(store, kappa=kappa)

        base = CsrOperator(matrix)
        reference_op = ThrottledOperator(base, kappa, full_throttle="dangling")
        try:
            reference = solve(reference_op, ranking, solver="power")
        finally:
            reference_op.close()
            base.close()
        np.testing.assert_allclose(result.scores, reference.scores, atol=1e-9)

    def test_none_kappa_is_baseline(self, matrix, store):
        ranking = RankingParams(tolerance=1e-12, max_iter=2000)
        with SpamResilientPipeline(ranking=ranking) as pipe:
            result = pipe.rank_store(store)

        base = CsrOperator(matrix)
        try:
            reference = solve(base, ranking, solver="power")
        finally:
            base.close()
        np.testing.assert_allclose(result.scores, reference.scores, atol=1e-9)

    def test_accepts_path(self, store):
        with SpamResilientPipeline(
            ranking=RankingParams(tolerance=1e-10, max_iter=1000)
        ) as pipe:
            result = pipe.rank_store(store.directory)
        assert result.scores.size == store.n_sources

"""Failure injection: corrupted inputs must raise clean errors, never
crash, hang, or silently decode garbage as valid graphs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError, GraphError, ReproError
from repro.graph import PageGraph, load_npz, save_npz
from repro.webgraph import CompressedGraph, decode_varints, encode_varints


@pytest.fixture(scope="module")
def graph():
    gen = np.random.default_rng(13)
    n = 200
    return PageGraph.from_edges(gen.integers(0, n, 1500), gen.integers(0, n, 1500), n)


class TestVarintCorruption:
    @given(st.data())
    @settings(max_examples=150, deadline=None)
    def test_random_byte_flip_never_crashes(self, data):
        """Flipping any byte either still decodes (to possibly different
        values) or raises CodecError — nothing else."""
        values = np.asarray(
            data.draw(
                st.lists(
                    st.integers(min_value=0, max_value=2**40),
                    min_size=1,
                    max_size=30,
                )
            ),
            dtype=np.int64,
        )
        payload = bytearray(encode_varints(values))
        pos = data.draw(st.integers(min_value=0, max_value=len(payload) - 1))
        bit = data.draw(st.integers(min_value=0, max_value=7))
        payload[pos] ^= 1 << bit
        try:
            decoded = decode_varints(bytes(payload))
        except CodecError:
            return
        assert (decoded >= 0).all()

    @given(st.binary(max_size=64))
    @settings(max_examples=150, deadline=None)
    def test_arbitrary_bytes_never_crash(self, blob):
        try:
            decoded = decode_varints(blob)
        except CodecError:
            return
        assert (decoded >= 0).all()

    def test_truncation_every_position(self):
        values = np.asarray([1, 300, 2**20, 2**40])
        payload = encode_varints(values)
        for cut in range(len(payload)):
            try:
                decode_varints(payload[:cut], count=values.size)
            except CodecError:
                continue
            pytest.fail(f"truncation at {cut} decoded with full count")


class TestCompressedGraphCorruption:
    def test_wrong_counts_rejected(self, graph):
        c = CompressedGraph.from_pagegraph(graph)
        bad_counts = c._counts.copy()
        bad_counts = np.append(bad_counts[:-1], bad_counts[-1] + 1)
        with pytest.raises(ReproError):
            CompressedGraph(
                c._payload, c._offsets, bad_counts, graph.n_nodes
            ).to_pagegraph()

    def test_payload_truncation_rejected(self, graph):
        c = CompressedGraph.from_pagegraph(graph)
        with pytest.raises(CodecError):
            CompressedGraph(
                c._payload[:-1], c._offsets, c._counts, graph.n_nodes
            )

    def test_save_corrupt_load(self, graph, tmp_path):
        """Corrupting a saved container raises a library error (zip CRC
        failures surface as CodecError via missing/garbled fields or as a
        zlib/OS error — never a silent wrong graph)."""
        path = tmp_path / "c.npz"
        CompressedGraph.from_pagegraph(graph).save(path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(Exception):
            loaded = CompressedGraph.load(path)
            assert loaded.to_pagegraph() == graph


class TestNpzGraphCorruption:
    def test_indices_out_of_range_rejected(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        np.savez_compressed(
            path,
            format_version=np.int64(1),
            n_nodes=np.int64(graph.n_nodes),
            indptr=graph.indptr,
            indices=graph.indices + graph.n_nodes,  # all out of range
        )
        with pytest.raises(GraphError):
            load_npz(path)

    def test_inconsistent_indptr_rejected(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        bad_indptr = graph.indptr.copy()
        bad_indptr[-1] += 1
        np.savez_compressed(
            path,
            format_version=np.int64(1),
            n_nodes=np.int64(graph.n_nodes),
            indptr=bad_indptr,
            indices=graph.indices,
        )
        with pytest.raises(GraphError):
            load_npz(path)

    def test_roundtrip_still_clean(self, graph, tmp_path):
        path = tmp_path / "g.npz"
        save_npz(graph, path)
        assert load_npz(path) == graph

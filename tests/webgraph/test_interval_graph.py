"""Unit tests for the interval-coded compressed graph."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CodecError, NodeIndexError
from repro.graph import PageGraph
from repro.webgraph import CompressedGraph, IntervalCompressedGraph, compare_codecs


@pytest.fixture(scope="module")
def diffuse_graph() -> PageGraph:
    gen = np.random.default_rng(17)
    n = 300
    return PageGraph.from_edges(
        gen.integers(0, n, 3000), gen.integers(0, n, 3000), n
    )


@pytest.fixture(scope="module")
def runny_graph() -> PageGraph:
    """A graph dominated by consecutive runs (navigation-bar pattern)."""
    src, dst = [], []
    n = 400
    for hub in range(0, n, 40):
        for offset in range(1, 31):  # hub -> hub+1 .. hub+30 (a run)
            src.append(hub)
            dst.append(hub + offset)
    return PageGraph.from_edges(np.array(src), np.array(dst), n + 31)


class TestRoundtrip:
    def test_exact_roundtrip_diffuse(self, diffuse_graph):
        c = IntervalCompressedGraph.from_pagegraph(diffuse_graph)
        assert c.to_pagegraph() == diffuse_graph

    def test_exact_roundtrip_runny(self, runny_graph):
        c = IntervalCompressedGraph.from_pagegraph(runny_graph)
        assert c.to_pagegraph() == runny_graph

    def test_empty_graph(self):
        g = PageGraph.empty(5)
        c = IntervalCompressedGraph.from_pagegraph(g)
        assert c.to_pagegraph() == g

    def test_random_access_matches(self, diffuse_graph):
        c = IntervalCompressedGraph.from_pagegraph(diffuse_graph)
        for node in (0, 7, 150, diffuse_graph.n_nodes - 1):
            np.testing.assert_array_equal(
                c.successors(node), diffuse_graph.successors(node)
            )

    def test_out_of_range(self, diffuse_graph):
        c = IntervalCompressedGraph.from_pagegraph(diffuse_graph)
        with pytest.raises(NodeIndexError):
            c.successors(10_000)

    def test_offsets_validated(self):
        with pytest.raises(CodecError):
            IntervalCompressedGraph(b"xx", np.array([0, 1]), 1, 0)


class TestCodecComparison:
    def test_intervals_win_on_runs(self, runny_graph):
        comparison = compare_codecs(runny_graph)
        assert comparison.interval_wins
        assert comparison.interval_bits_per_edge < 0.5 * comparison.gap_bits_per_edge

    def test_both_beat_csr(self, diffuse_graph):
        gap = CompressedGraph.from_pagegraph(diffuse_graph).stats()
        interval = IntervalCompressedGraph.from_pagegraph(diffuse_graph).stats()
        assert gap.ratio < 1.0
        assert interval.ratio < 1.0

    def test_repr(self, runny_graph):
        c = IntervalCompressedGraph.from_pagegraph(runny_graph)
        assert "bits_per_edge" in repr(c)

"""Unit + property tests for interval-augmented successor coding."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.webgraph.gaps import to_gaps
from repro.webgraph.intervals import (
    decode_row,
    encode_row,
    merge_intervals,
    split_intervals,
)
from repro.webgraph.varint import encode_varints


class TestSplitIntervals:
    def test_pure_run(self):
        starts, lengths, residuals = split_intervals(np.arange(10, 20))
        np.testing.assert_array_equal(starts, [10])
        np.testing.assert_array_equal(lengths, [10])
        assert residuals.size == 0

    def test_no_runs(self):
        values = np.array([1, 5, 9, 20])
        starts, lengths, residuals = split_intervals(values)
        assert starts.size == 0
        np.testing.assert_array_equal(residuals, values)

    def test_mixed(self):
        values = np.array([1, 2, 3, 4, 10, 20, 21, 22, 23, 24, 40])
        starts, lengths, residuals = split_intervals(values)
        np.testing.assert_array_equal(starts, [1, 20])
        np.testing.assert_array_equal(lengths, [4, 5])
        np.testing.assert_array_equal(residuals, [10, 40])

    def test_min_interval_threshold(self):
        values = np.array([1, 2, 3, 10])
        starts, _, residuals = split_intervals(values, min_interval=4)
        assert starts.size == 0
        starts, lengths, residuals = split_intervals(values, min_interval=3)
        np.testing.assert_array_equal(starts, [1])
        np.testing.assert_array_equal(residuals, [10])

    def test_empty(self):
        starts, lengths, residuals = split_intervals(np.empty(0, dtype=np.int64))
        assert starts.size == lengths.size == residuals.size == 0

    def test_unsorted_rejected(self):
        with pytest.raises(CodecError):
            split_intervals(np.array([3, 1]))

    def test_bad_min_interval(self):
        with pytest.raises(CodecError):
            split_intervals(np.array([1]), min_interval=1)


class TestMergeIntervals:
    def test_roundtrip(self):
        values = np.array([1, 2, 3, 4, 10, 20, 21, 22, 23, 40])
        assert np.array_equal(
            merge_intervals(*split_intervals(values)), values
        )

    def test_overlap_rejected(self):
        with pytest.raises(CodecError, match="overlap"):
            merge_intervals(np.array([5]), np.array([4]), np.array([6]))

    @given(st.sets(st.integers(min_value=0, max_value=300), max_size=80))
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property(self, members):
        values = np.asarray(sorted(members), dtype=np.int64)
        starts, lengths, residuals = split_intervals(values)
        np.testing.assert_array_equal(
            merge_intervals(starts, lengths, residuals), values
        )


class TestRowCodec:
    @given(
        st.integers(min_value=0, max_value=500),
        st.sets(st.integers(min_value=0, max_value=500), max_size=60),
    )
    @settings(max_examples=150, deadline=None)
    def test_roundtrip_property(self, node, members):
        values = np.asarray(sorted(members), dtype=np.int64)
        payload = encode_row(node, values)
        np.testing.assert_array_equal(decode_row(node, payload), values)

    def test_interval_beats_plain_gaps_on_runs(self):
        """The whole point: long runs compress far better with intervals."""
        node = 1000
        successors = np.concatenate(
            [np.arange(1100, 1200), np.array([5000, 9000])]
        )
        with_intervals = encode_row(node, successors)
        indptr = np.array([0, successors.size])
        # Plain scheme: first zigzag-relative, then gap-1 — row-local, so
        # emulate with to_gaps on a single row anchored at `node`.
        gaps = to_gaps(indptr, successors)
        gaps[0] = int(
            np.int64((successors[0] - node) << 1)
        )  # zigzag of positive value
        plain = encode_varints(gaps)
        assert len(with_intervals) < 0.25 * len(plain)

    def test_truncated_payload_rejected(self):
        payload = encode_row(0, np.arange(10, 30))
        with pytest.raises(CodecError):
            decode_row(0, payload[:-1])

    def test_trailing_bytes_rejected(self):
        payload = encode_row(0, np.arange(10, 30))
        with pytest.raises(CodecError):
            decode_row(0, payload + encode_varints(np.array([7])))

    def test_empty_row(self):
        payload = encode_row(3, np.empty(0, dtype=np.int64))
        assert decode_row(3, payload).size == 0

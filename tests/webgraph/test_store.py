"""Tests for the sharded on-disk graph store."""

from __future__ import annotations

import json

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import CodecError, GraphError
from repro.graph import PageGraph
from repro.webgraph.store import (
    MANIFEST_NAME,
    ShardedGraphStore,
    ShardedStoreWriter,
)


def _stochastic(n: int, density: float, seed: int) -> sp.csr_matrix:
    """A row-(sub)stochastic random CSR with some dangling rows."""
    m = sp.random(n, n, density=density, random_state=seed, format="csr")
    sums = np.asarray(m.sum(axis=1)).ravel()
    scale = np.where(sums > 0, 1.0 / np.where(sums > 0, sums, 1.0), 0.0)
    out = (sp.diags(scale) @ m).tocsr()
    out.sort_indices()
    return out


@pytest.fixture(scope="module")
def matrix() -> sp.csr_matrix:
    return _stochastic(97, 0.05, seed=11)


@pytest.fixture()
def store(matrix, tmp_path) -> ShardedGraphStore:
    return ShardedGraphStore.from_matrix(
        matrix, tmp_path / "store", block_size=16, meta={"origin": "test"}
    )


class TestRoundtrip:
    def test_materialize_is_exact(self, matrix, store):
        back = store.materialize()
        assert (back != matrix).nnz == 0
        np.testing.assert_array_equal(back.indices, matrix.indices)
        np.testing.assert_array_equal(back.data, matrix.data)

    def test_blocks_partition_rows(self, matrix, store):
        cursor = 0
        for info in store.shards:
            assert info.row_start == cursor
            cursor = info.row_stop
        assert cursor == matrix.shape[0]

    def test_each_block_decodes_independently(self, matrix, store):
        for info in store.shards:
            block = store.load_block(info.block_id)
            expected = matrix[info.row_start : info.row_stop]
            assert (block != expected).nnz == 0

    def test_streamed_stats_match(self, matrix, store):
        np.testing.assert_allclose(
            store.row_sums(), np.asarray(matrix.sum(axis=1)).ravel(), atol=1e-12
        )
        np.testing.assert_allclose(
            store.diagonal(), matrix.diagonal(), atol=1e-12
        )

    def test_describe_and_meta(self, matrix, store):
        desc = store.describe()
        assert desc["n_sources"] == matrix.shape[0]
        assert desc["n_edges"] == matrix.nnz
        assert desc["weighted"] is True
        assert desc["bits_per_edge"] > 0
        assert store.meta == {"origin": "test"}

    def test_verify_clean_store(self, store):
        store.verify()

    def test_unweighted_pagegraph_store(self, tmp_path):
        gen = np.random.default_rng(5)
        n = 60
        graph = PageGraph.from_edges(
            gen.integers(0, n, 400), gen.integers(0, n, 400), n
        )
        st = ShardedGraphStore.from_pagegraph(
            graph, tmp_path / "pg", block_size=13
        )
        assert not st.weighted
        back = st.materialize()
        # Uniform 1/outdeg rows; dangling rows stay all-zero.
        outdeg = np.diff(graph.indptr)
        sums = np.asarray(back.sum(axis=1)).ravel()
        np.testing.assert_allclose(sums[outdeg > 0], 1.0, atol=1e-12)
        np.testing.assert_array_equal(sums[outdeg == 0], 0.0)
        np.testing.assert_array_equal(back.indices, graph.indices)


class TestIntegrity:
    def test_tampered_weights_fail_digest(self, store):
        info = store.shards[0]
        path = store.directory / info.filename
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        arrays["data"] = arrays["data"] * 1.01
        np.savez(path, **arrays)
        with pytest.raises(CodecError, match="digest"):
            store.load_block(0)
        # verify=False skips the digest check (content is still decodable).
        store.load_block(0, verify=False)

    def test_tampered_payload_fails_digest(self, store):
        info = store.shards[1]
        path = store.directory / info.filename
        with np.load(path) as archive:
            arrays = {name: archive[name] for name in archive.files}
        payload = arrays["payload"].copy()
        payload[0] ^= 0x01
        arrays["payload"] = payload
        np.savez(path, **arrays)
        with pytest.raises(CodecError):
            store.load_block(1)

    def test_missing_shard_file(self, store):
        (store.directory / store.shards[0].filename).unlink()
        with pytest.raises(CodecError, match="unreadable"):
            store.load_block(0)

    def test_bad_manifest_version(self, store):
        path = store.directory / MANIFEST_NAME
        manifest = json.loads(path.read_text())
        manifest["format_version"] = 999
        path.write_text(json.dumps(manifest))
        with pytest.raises(CodecError, match="format_version"):
            ShardedGraphStore.open(store.directory)

    def test_open_missing_directory(self, tmp_path):
        with pytest.raises(GraphError, match="manifest"):
            ShardedGraphStore.open(tmp_path / "nope")

    def test_block_id_out_of_range(self, store):
        with pytest.raises(GraphError, match="out of range"):
            store.load_block(store.n_blocks)


class TestWriterValidation:
    def test_indptr_must_be_local(self, tmp_path):
        w = ShardedStoreWriter(tmp_path / "s", 10, block_size=4)
        with pytest.raises(GraphError, match="local"):
            w.append_block(np.array([3, 5]), np.array([1, 2]))

    def test_indptr_must_be_nondecreasing(self, tmp_path):
        w = ShardedStoreWriter(tmp_path / "s", 10, block_size=4)
        with pytest.raises(GraphError, match="non-decreasing"):
            w.append_block(np.array([0, 2, 1]), np.array([1, 2]))

    def test_edge_count_mismatch(self, tmp_path):
        w = ShardedStoreWriter(tmp_path / "s", 10, block_size=4)
        with pytest.raises(GraphError, match="edges"):
            w.append_block(np.array([0, 3]), np.array([1, 2]))

    def test_columns_out_of_range(self, tmp_path):
        w = ShardedStoreWriter(tmp_path / "s", 10, block_size=4)
        with pytest.raises(GraphError, match="column"):
            w.append_block(np.array([0, 1]), np.array([10]))

    def test_row_overflow(self, tmp_path):
        w = ShardedStoreWriter(tmp_path / "s", 2, block_size=4)
        with pytest.raises(GraphError, match="overflow"):
            w.append_block(np.array([0, 0, 0, 0]), np.array([], dtype=np.int64))

    def test_cannot_mix_weighted_and_unweighted(self, tmp_path):
        w = ShardedStoreWriter(tmp_path / "s", 10, block_size=4)
        w.append_block(np.array([0, 1]), np.array([1]), np.array([1.0]))
        with pytest.raises(GraphError, match="mix"):
            w.append_block(np.array([0, 1]), np.array([2]))

    def test_data_length_mismatch(self, tmp_path):
        w = ShardedStoreWriter(tmp_path / "s", 10, block_size=4)
        with pytest.raises(GraphError, match="data length"):
            w.append_block(np.array([0, 2]), np.array([1, 2]), np.array([1.0]))

    def test_finalize_requires_full_coverage(self, tmp_path):
        w = ShardedStoreWriter(tmp_path / "s", 10, block_size=4)
        w.append_block(np.array([0, 1]), np.array([1]))
        with pytest.raises(GraphError, match="declares"):
            w.finalize()

    def test_finalized_writer_rejects_appends(self, tmp_path, matrix):
        n = matrix.shape[0]
        w = ShardedStoreWriter(tmp_path / "s", n, block_size=n)
        w.append_matrix(matrix)
        w.finalize()
        with pytest.raises(GraphError, match="finalized"):
            w.append_matrix(matrix)
        with pytest.raises(GraphError, match="finalized"):
            w.finalize()

    def test_from_matrix_rejects_nonsquare(self, tmp_path):
        with pytest.raises(GraphError, match="square"):
            ShardedGraphStore.from_matrix(
                sp.random(4, 5, format="csr"), tmp_path / "s"
            )

    def test_bad_construction(self, tmp_path):
        with pytest.raises(GraphError):
            ShardedStoreWriter(tmp_path / "s", 0)
        with pytest.raises(GraphError):
            ShardedStoreWriter(tmp_path / "s", 5, block_size=0)

"""Unit tests for :class:`repro.webgraph.CompressedGraph`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import CodecError, NodeIndexError
from repro.graph import PageGraph
from repro.webgraph import CompressedGraph


@pytest.fixture(scope="module")
def graph() -> PageGraph:
    gen = np.random.default_rng(7)
    n = 800
    return PageGraph.from_edges(
        gen.integers(0, n, 8000), gen.integers(0, n, 8000), n
    )


@pytest.fixture(scope="module")
def compressed(graph: PageGraph) -> CompressedGraph:
    return CompressedGraph.from_pagegraph(graph)


class TestRoundtrip:
    def test_exact_roundtrip(self, graph, compressed):
        assert compressed.to_pagegraph() == graph

    def test_counts_match(self, graph, compressed):
        assert compressed.n_nodes == graph.n_nodes
        assert compressed.n_edges == graph.n_edges

    def test_empty_graph(self):
        g = PageGraph.empty(10)
        c = CompressedGraph.from_pagegraph(g)
        assert c.n_edges == 0
        assert c.to_pagegraph() == g

    def test_single_edge(self):
        g = PageGraph.from_edges([3], [7], 10)
        c = CompressedGraph.from_pagegraph(g)
        assert c.to_pagegraph() == g


class TestRandomAccess:
    def test_successors_match(self, graph, compressed):
        for node in [0, 1, 100, 250, graph.n_nodes - 1]:
            np.testing.assert_array_equal(
                compressed.successors(node), graph.successors(node)
            )

    def test_all_nodes_match(self, graph, compressed):
        for node in range(graph.n_nodes):
            np.testing.assert_array_equal(
                compressed.successors(node), graph.successors(node)
            )

    def test_out_degree(self, graph, compressed):
        np.testing.assert_array_equal(
            [compressed.out_degree(i) for i in range(graph.n_nodes)],
            graph.out_degrees,
        )

    def test_out_of_range(self, compressed):
        with pytest.raises(NodeIndexError):
            compressed.successors(10_000)
        with pytest.raises(NodeIndexError):
            compressed.out_degree(-1)

    def test_empty_row(self):
        g = PageGraph.from_edges([0], [1], 3)
        c = CompressedGraph.from_pagegraph(g)
        assert c.successors(2).size == 0


class TestStatsAndPersistence:
    def test_compression_beats_csr(self, compressed):
        stats = compressed.stats()
        assert stats.ratio < 0.6  # gap+varint should clearly beat int64 CSR
        assert 0 < stats.bits_per_edge < 64

    def test_stats_fields(self, graph, compressed):
        stats = compressed.stats()
        assert stats.n_edges == graph.n_edges
        assert stats.total_bytes == stats.payload_bytes + stats.offset_bytes

    def test_save_load(self, compressed, tmp_path):
        path = tmp_path / "c.npz"
        compressed.save(path)
        again = CompressedGraph.load(path)
        assert again.to_pagegraph() == compressed.to_pagegraph()

    def test_load_rejects_bad_version(self, compressed, tmp_path, graph):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            format_version=np.int64(99),
            n_nodes=np.int64(1),
            payload=np.zeros(0, dtype=np.uint8),
            offsets=np.array([0, 0]),
            counts=np.array([0]),
        )
        with pytest.raises(CodecError, match="version"):
            CompressedGraph.load(path)

    def test_constructor_validates_offsets(self):
        with pytest.raises(CodecError):
            CompressedGraph(b"", np.array([0, 5]), np.array([0]), 1)

    def test_repr_mentions_bits_per_edge(self, compressed):
        assert "bits_per_edge" in repr(compressed)

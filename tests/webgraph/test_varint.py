"""Unit + property tests for the varint codec."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import CodecError
from repro.webgraph import decode_varints, encode_varints, varint_length


class TestVarintLength:
    def test_boundaries(self):
        values = np.array([0, 1, 127, 128, 16383, 16384, 2**21 - 1, 2**21])
        expected = np.array([1, 1, 1, 2, 2, 3, 3, 4])
        np.testing.assert_array_equal(varint_length(values), expected)

    def test_max_value(self):
        assert varint_length(np.array([2**62]))[0] == 9

    def test_rejects_negative(self):
        with pytest.raises(CodecError):
            varint_length(np.array([-1]))

    def test_rejects_floats(self):
        with pytest.raises(CodecError):
            varint_length(np.array([1.5]))

    def test_rejects_2d(self):
        with pytest.raises(CodecError):
            varint_length(np.zeros((2, 2), dtype=np.int64))


class TestRoundtrip:
    def test_empty(self):
        assert encode_varints(np.array([], dtype=np.int64)) == b""
        assert decode_varints(b"").size == 0

    def test_known_bytes(self):
        # 300 = 0b100101100 -> low7=0101100|cont, high=10
        assert encode_varints(np.array([300])) == bytes([0xAC, 0x02])

    def test_single_small(self):
        assert decode_varints(encode_varints(np.array([5])))[0] == 5

    def test_mixed_magnitudes(self):
        values = np.array([0, 1, 127, 128, 300, 2**20, 2**40, 2**62])
        out = decode_varints(encode_varints(values))
        np.testing.assert_array_equal(out, values)

    def test_large_batch(self, rng):
        values = rng.integers(0, 2**31, size=100_000)
        out = decode_varints(encode_varints(values), count=values.size)
        np.testing.assert_array_equal(out, values)

    def test_count_mismatch_rejected(self):
        data = encode_varints(np.array([1, 2, 3]))
        with pytest.raises(CodecError, match="expected 2"):
            decode_varints(data, count=2)

    def test_truncated_stream_rejected(self):
        data = encode_varints(np.array([300]))
        with pytest.raises(CodecError, match="truncated"):
            decode_varints(data[:-1])

    def test_empty_with_nonzero_count_rejected(self):
        with pytest.raises(CodecError):
            decode_varints(b"", count=3)

    @given(
        st.lists(st.integers(min_value=0, max_value=2**62), max_size=200)
    )
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, values):
        arr = np.asarray(values, dtype=np.int64)
        out = decode_varints(encode_varints(arr), count=arr.size)
        np.testing.assert_array_equal(out, arr)

    @given(st.lists(st.integers(min_value=0, max_value=2**62), min_size=1, max_size=50))
    @settings(max_examples=100, deadline=None)
    def test_stream_length_matches_varint_length(self, values):
        arr = np.asarray(values, dtype=np.int64)
        assert len(encode_varints(arr)) == int(varint_length(arr).sum())

"""Unit + property tests for the gap transform."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import PageGraph
from repro.webgraph import from_gaps, to_gaps
from repro.webgraph.gaps import zigzag_decode, zigzag_encode


class TestZigzag:
    def test_known_values(self):
        values = np.array([0, -1, 1, -2, 2, -64, 64])
        expected = np.array([0, 1, 2, 3, 4, 127, 128])
        np.testing.assert_array_equal(zigzag_encode(values), expected)

    def test_roundtrip(self, rng):
        values = rng.integers(-(2**40), 2**40, size=10_000)
        np.testing.assert_array_equal(zigzag_decode(zigzag_encode(values)), values)

    @given(st.integers(min_value=-(2**61), max_value=2**61))
    @settings(max_examples=200, deadline=None)
    def test_roundtrip_property(self, v):
        arr = np.array([v], dtype=np.int64)
        assert zigzag_decode(zigzag_encode(arr))[0] == v

    def test_encoding_is_non_negative(self, rng):
        values = rng.integers(-(2**40), 2**40, size=1000)
        assert zigzag_encode(values).min() >= 0


class TestGapTransform:
    def test_empty(self):
        indptr = np.array([0, 0, 0])
        assert to_gaps(indptr, np.array([], dtype=np.int64)).size == 0
        assert from_gaps(indptr, np.array([], dtype=np.int64)).size == 0

    def test_single_row(self):
        indptr = np.array([0, 3])
        indices = np.array([2, 5, 9])
        gaps = to_gaps(indptr, indices)
        # first: zigzag(2 - 0) = 4; then 5-2-1=2; 9-5-1=3
        np.testing.assert_array_equal(gaps, [4, 2, 3])
        np.testing.assert_array_equal(from_gaps(indptr, gaps), indices)

    def test_backward_first_successor(self):
        # node 5 links to node 2: first gap is negative, zigzagged.
        indptr = np.array([0, 0, 0, 0, 0, 0, 1])
        indices = np.array([2])
        gaps = to_gaps(indptr, indices)
        assert gaps[0] == zigzag_encode(np.array([2 - 5]))[0]
        np.testing.assert_array_equal(from_gaps(indptr, gaps), indices)

    def test_multi_row_with_empty_rows(self):
        indptr = np.array([0, 2, 2, 5])
        indices = np.array([1, 3, 0, 1, 2])
        gaps = to_gaps(indptr, indices)
        np.testing.assert_array_equal(from_gaps(indptr, gaps), indices)

    def test_roundtrip_on_graph(self, small_graph):
        gaps = to_gaps(small_graph.indptr, small_graph.indices)
        out = from_gaps(small_graph.indptr, gaps)
        np.testing.assert_array_equal(out, small_graph.indices)

    def test_gaps_are_small_for_clustered_lists(self):
        """The whole point: clustered successors give tiny gaps."""
        indptr = np.array([0, 5])
        indices = np.array([100, 101, 102, 103, 104])
        gaps = to_gaps(indptr, indices)
        assert (gaps[1:] == 0).all()

    @given(st.data())
    @settings(max_examples=100, deadline=None)
    def test_roundtrip_property(self, data):
        n = data.draw(st.integers(min_value=1, max_value=30))
        rows = [
            sorted(
                data.draw(
                    st.sets(st.integers(min_value=0, max_value=n - 1), max_size=n)
                )
            )
            for _ in range(n)
        ]
        indptr = np.zeros(n + 1, dtype=np.int64)
        indptr[1:] = np.cumsum([len(r) for r in rows])
        indices = np.array(
            [v for r in rows for v in r], dtype=np.int64
        )
        gaps = to_gaps(indptr, indices)
        np.testing.assert_array_equal(from_gaps(indptr, gaps), indices)

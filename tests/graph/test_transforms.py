"""Unit tests for :mod:`repro.graph.transforms`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    PageGraph,
    add_edges,
    induced_subgraph,
    relabel_graph,
    remove_self_loops,
    reverse_graph,
)


class TestReverse:
    def test_reverse_small(self):
        g = PageGraph.from_edges([0, 1], [1, 2], 3)
        r = reverse_graph(g)
        assert r.has_edge(1, 0)
        assert r.has_edge(2, 1)
        assert not r.has_edge(0, 1)

    def test_double_reverse_is_identity(self, small_graph):
        assert reverse_graph(reverse_graph(small_graph)) == small_graph

    def test_reverse_preserves_edge_count(self, small_graph):
        assert reverse_graph(small_graph).n_edges == small_graph.n_edges

    def test_in_degrees_become_out_degrees(self, small_graph):
        r = reverse_graph(small_graph)
        np.testing.assert_array_equal(r.out_degrees, small_graph.in_degrees())


class TestInducedSubgraph:
    def test_basic(self):
        g = PageGraph.from_edges([0, 1, 2], [1, 2, 0], 3)
        sub, kept = induced_subgraph(g, [0, 1])
        assert sub.n_nodes == 2
        assert sub.n_edges == 1  # only 0->1 survives
        np.testing.assert_array_equal(kept, [0, 1])

    def test_relabeling_is_dense(self):
        g = PageGraph.from_edges([5, 7], [7, 9], 10)
        sub, kept = induced_subgraph(g, [5, 7, 9])
        assert sub.n_nodes == 3
        assert sub.has_edge(0, 1)
        assert sub.has_edge(1, 2)

    def test_out_of_range_rejected(self):
        g = PageGraph.empty(3)
        with pytest.raises(GraphError):
            induced_subgraph(g, [5])

    def test_duplicate_nodes_collapsed(self):
        g = PageGraph.from_edges([0], [1], 2)
        sub, kept = induced_subgraph(g, [0, 0, 1])
        assert sub.n_nodes == 2


class TestRelabel:
    def test_identity_permutation(self, small_graph):
        mapping = np.arange(small_graph.n_nodes)
        assert relabel_graph(small_graph, mapping) == small_graph

    def test_swap(self):
        g = PageGraph.from_edges([0], [1], 2)
        r = relabel_graph(g, np.array([1, 0]))
        assert r.has_edge(1, 0)

    def test_rejects_non_permutation(self):
        g = PageGraph.empty(3)
        with pytest.raises(GraphError, match="permutation"):
            relabel_graph(g, np.array([0, 0, 1]))

    def test_rejects_wrong_shape(self):
        g = PageGraph.empty(3)
        with pytest.raises(GraphError):
            relabel_graph(g, np.array([0, 1]))

    def test_degree_multiset_invariant(self, small_graph, rng):
        mapping = rng.permutation(small_graph.n_nodes)
        r = relabel_graph(small_graph, mapping)
        assert sorted(r.out_degrees) == sorted(small_graph.out_degrees)


class TestAddEdges:
    def test_overlay_existing_nodes(self):
        g = PageGraph.from_edges([0], [1], 3)
        g2 = add_edges(g, [1], [2])
        assert g2.has_edge(0, 1)
        assert g2.has_edge(1, 2)
        assert g.n_edges == 1  # original untouched

    def test_overlay_new_nodes(self):
        g = PageGraph.from_edges([0], [1], 2)
        g2 = add_edges(g, [5], [0])
        assert g2.n_nodes == 6
        assert g2.has_edge(5, 0)

    def test_explicit_n_nodes(self):
        g = PageGraph.empty(2)
        g2 = add_edges(g, [0], [1], n_nodes=10)
        assert g2.n_nodes == 10

    def test_duplicate_overlay_collapses(self):
        g = PageGraph.from_edges([0], [1], 2)
        g2 = add_edges(g, [0], [1])
        assert g2.n_edges == 1

    def test_mismatched_arrays_rejected(self):
        g = PageGraph.empty(2)
        with pytest.raises(GraphError):
            add_edges(g, [0, 1], [0])


class TestRemoveSelfLoops:
    def test_removes_loops_only(self):
        g = PageGraph.from_edges([0, 1, 1], [0, 1, 2], 3)
        clean = remove_self_loops(g)
        assert clean.n_edges == 1
        assert clean.has_edge(1, 2)

    def test_noop_without_loops(self, small_graph):
        src, dst = small_graph.edge_arrays()
        if (src == dst).any():  # pragma: no cover - generator may emit loops
            small_graph = remove_self_loops(small_graph)
        assert remove_self_loops(small_graph) == small_graph

"""Unit tests for the two-pass streaming builder."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import PageGraph
from repro.graph.streaming import StreamingBuilder, stream_edge_chunks


def _build_from_text(text: str, chunk_edges: int = 4) -> PageGraph:
    builder = StreamingBuilder()
    for src, dst in stream_edge_chunks(io.StringIO(text), chunk_edges=chunk_edges):
        builder.count(src, dst)
    builder.finish_counting()
    for src, dst in stream_edge_chunks(io.StringIO(text), chunk_edges=chunk_edges):
        builder.fill(src, dst)
    return builder.build()


class TestStreamChunks:
    def test_chunking(self):
        text = "\n".join(f"{i} {i + 1}" for i in range(10))
        chunks = list(stream_edge_chunks(io.StringIO(text), chunk_edges=3))
        assert [c[0].size for c in chunks] == [3, 3, 3, 1]

    def test_comments_skipped(self):
        chunks = list(stream_edge_chunks(io.StringIO("# x\n\n0 1\n")))
        assert chunks[0][0].size == 1

    def test_malformed_line(self):
        with pytest.raises(GraphError, match="line 2"):
            list(stream_edge_chunks(io.StringIO("0 1\nbad\n")))

    def test_negative_id_reports_line_number(self):
        # Regression: negative ids used to slip through parsing and fail
        # only in StreamingBuilder.count, with no line context —
        # read_edge_list parity requires the lineno at parse time.
        with pytest.raises(GraphError, match="line 3.*negative"):
            list(stream_edge_chunks(io.StringIO("0 1\n1 2\n2 -7\n")))

    def test_negative_source_id_also_rejected(self):
        with pytest.raises(GraphError, match="line 1"):
            list(stream_edge_chunks(io.StringIO("-1 0\n")))

    def test_bad_chunk_size(self):
        with pytest.raises(GraphError):
            list(stream_edge_chunks(io.StringIO("0 1\n"), chunk_edges=0))

    def test_file_path_input(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 2\n")
        chunks = list(stream_edge_chunks(path))
        assert chunks[0][0].size == 2


class TestStreamingBuilder:
    def test_matches_direct_construction(self, rng):
        n = 300
        src = rng.integers(0, n, 5000)
        dst = rng.integers(0, n, 5000)
        text = "\n".join(f"{s} {d}" for s, d in zip(src, dst))
        streamed = _build_from_text(text, chunk_edges=137)
        direct = PageGraph.from_edges(src, dst, n)
        # Node count may differ if the top ids were never drawn; compare
        # on the common prefix.
        assert streamed.n_nodes == direct.n_nodes or streamed.n_nodes == int(max(src.max(), dst.max())) + 1
        assert streamed == direct

    def test_deduplicates(self):
        g = _build_from_text("0 1\n0 1\n0 1\n")
        assert g.n_edges == 1

    def test_rows_sorted(self):
        g = _build_from_text("0 9\n0 2\n0 5\n")
        np.testing.assert_array_equal(g.successors(0), [2, 5, 9])

    def test_protocol_enforced(self):
        b = StreamingBuilder()
        with pytest.raises(GraphError, match="finish_counting"):
            b.fill(np.array([0]), np.array([1]))
        b.count(np.array([0]), np.array([1]))
        b.finish_counting()
        with pytest.raises(GraphError, match="after finish_counting"):
            b.count(np.array([0]), np.array([1]))
        with pytest.raises(GraphError, match="twice"):
            b.finish_counting()

    def test_incomplete_fill_rejected(self):
        b = StreamingBuilder()
        b.count(np.array([0, 1]), np.array([1, 0]))
        b.finish_counting()
        b.fill(np.array([0]), np.array([1]))
        with pytest.raises(GraphError, match="incomplete"):
            b.build()

    def test_overflow_fill_rejected(self):
        b = StreamingBuilder()
        b.count(np.array([0]), np.array([1]))
        b.finish_counting()
        b.fill(np.array([0]), np.array([1]))
        with pytest.raises(GraphError, match="overflow|never seen"):
            b.fill(np.array([0]), np.array([1]))

    def test_unseen_node_rejected(self):
        b = StreamingBuilder()
        b.count(np.array([0]), np.array([1]))
        b.finish_counting()
        with pytest.raises(GraphError, match="never seen"):
            b.fill(np.array([7]), np.array([0]))

    def test_negative_ids_rejected(self):
        b = StreamingBuilder()
        with pytest.raises(GraphError):
            b.count(np.array([-1]), np.array([0]))

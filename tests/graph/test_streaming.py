"""Unit tests for the two-pass streaming builder."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import PageGraph
from repro.graph.streaming import StreamingBuilder, stream_edge_chunks


def _build_from_text(text: str, chunk_edges: int = 4) -> PageGraph:
    builder = StreamingBuilder()
    for src, dst in stream_edge_chunks(io.StringIO(text), chunk_edges=chunk_edges):
        builder.count(src, dst)
    builder.finish_counting()
    for src, dst in stream_edge_chunks(io.StringIO(text), chunk_edges=chunk_edges):
        builder.fill(src, dst)
    return builder.build()


class TestStreamChunks:
    def test_chunking(self):
        text = "\n".join(f"{i} {i + 1}" for i in range(10))
        chunks = list(stream_edge_chunks(io.StringIO(text), chunk_edges=3))
        assert [c[0].size for c in chunks] == [3, 3, 3, 1]

    def test_comments_skipped(self):
        chunks = list(stream_edge_chunks(io.StringIO("# x\n\n0 1\n")))
        assert chunks[0][0].size == 1

    def test_malformed_line(self):
        with pytest.raises(GraphError, match="line 2"):
            list(stream_edge_chunks(io.StringIO("0 1\nbad\n")))

    def test_negative_id_reports_line_number(self):
        # Regression: negative ids used to slip through parsing and fail
        # only in StreamingBuilder.count, with no line context —
        # read_edge_list parity requires the lineno at parse time.
        with pytest.raises(GraphError, match="line 3.*negative"):
            list(stream_edge_chunks(io.StringIO("0 1\n1 2\n2 -7\n")))

    def test_negative_source_id_also_rejected(self):
        with pytest.raises(GraphError, match="line 1"):
            list(stream_edge_chunks(io.StringIO("-1 0\n")))

    def test_bad_chunk_size(self):
        with pytest.raises(GraphError):
            list(stream_edge_chunks(io.StringIO("0 1\n"), chunk_edges=0))

    def test_file_path_input(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_text("0 1\n1 2\n")
        chunks = list(stream_edge_chunks(path))
        assert chunks[0][0].size == 2


class TestStreamingBuilder:
    def test_matches_direct_construction(self, rng):
        n = 300
        src = rng.integers(0, n, 5000)
        dst = rng.integers(0, n, 5000)
        text = "\n".join(f"{s} {d}" for s, d in zip(src, dst))
        streamed = _build_from_text(text, chunk_edges=137)
        direct = PageGraph.from_edges(src, dst, n)
        # Node count may differ if the top ids were never drawn; compare
        # on the common prefix.
        assert streamed.n_nodes == direct.n_nodes or streamed.n_nodes == int(max(src.max(), dst.max())) + 1
        assert streamed == direct

    def test_deduplicates(self):
        g = _build_from_text("0 1\n0 1\n0 1\n")
        assert g.n_edges == 1

    def test_rows_sorted(self):
        g = _build_from_text("0 9\n0 2\n0 5\n")
        np.testing.assert_array_equal(g.successors(0), [2, 5, 9])

    def test_protocol_enforced(self):
        b = StreamingBuilder()
        with pytest.raises(GraphError, match="finish_counting"):
            b.fill(np.array([0]), np.array([1]))
        b.count(np.array([0]), np.array([1]))
        b.finish_counting()
        with pytest.raises(GraphError, match="after finish_counting"):
            b.count(np.array([0]), np.array([1]))
        with pytest.raises(GraphError, match="twice"):
            b.finish_counting()

    def test_incomplete_fill_rejected(self):
        b = StreamingBuilder()
        b.count(np.array([0, 1]), np.array([1, 0]))
        b.finish_counting()
        b.fill(np.array([0]), np.array([1]))
        with pytest.raises(GraphError, match="incomplete"):
            b.build()

    def test_overflow_fill_rejected(self):
        b = StreamingBuilder()
        b.count(np.array([0]), np.array([1]))
        b.finish_counting()
        b.fill(np.array([0]), np.array([1]))
        with pytest.raises(GraphError, match="overflow|never seen"):
            b.fill(np.array([0]), np.array([1]))

    def test_unseen_node_rejected(self):
        b = StreamingBuilder()
        b.count(np.array([0]), np.array([1]))
        b.finish_counting()
        with pytest.raises(GraphError, match="never seen"):
            b.fill(np.array([7]), np.array([0]))

    def test_negative_ids_rejected(self):
        b = StreamingBuilder()
        with pytest.raises(GraphError):
            b.count(np.array([-1]), np.array([0]))


class TestHintValidation:
    def test_non_integer_hint_rejected(self):
        with pytest.raises(GraphError, match="integer"):
            StreamingBuilder(n_nodes_hint=2.5)

    def test_negative_hint_rejected(self):
        with pytest.raises(GraphError, match="non-negative"):
            StreamingBuilder(n_nodes_hint=-1)

    def test_oversized_hint_rejected(self):
        with pytest.raises(GraphError, match="maximum"):
            StreamingBuilder(n_nodes_hint=2**62)

    def test_bool_like_integer_hint_accepted(self):
        # Anything operator.index accepts (numpy ints included) is fine.
        StreamingBuilder(n_nodes_hint=np.int64(16))


class TestBuildStore:
    def _feed(self, text: str) -> StreamingBuilder:
        builder = StreamingBuilder()
        for src, dst in stream_edge_chunks(io.StringIO(text), chunk_edges=4):
            builder.count(src, dst)
        builder.finish_counting()
        for src, dst in stream_edge_chunks(io.StringIO(text), chunk_edges=4):
            builder.fill(src, dst)
        return builder

    def test_store_matches_build(self, tmp_path):
        gen = np.random.default_rng(21)
        edges = "\n".join(
            f"{int(s)} {int(d)}"
            for s, d in zip(gen.integers(0, 50, 300), gen.integers(0, 50, 300))
        )
        graph = _build_from_text(edges)
        store = self._feed(edges).build_store(tmp_path / "store", block_size=7)
        assert not store.weighted
        assert store.n_sources == graph.n_nodes
        assert store.n_edges == graph.n_edges
        back = store.materialize()
        np.testing.assert_array_equal(
            back.indptr.astype(np.int64), graph.indptr.astype(np.int64)
        )
        np.testing.assert_array_equal(back.indices, graph.indices)

    def test_store_deduplicates_like_build(self, tmp_path):
        text = "0 2\n0 2\n0 1\n1 0\n"
        graph = _build_from_text(text)
        store = self._feed(text).build_store(tmp_path / "store", block_size=2)
        assert store.n_edges == graph.n_edges
        np.testing.assert_array_equal(store.materialize().indices, graph.indices)

    def test_store_requires_both_passes(self, tmp_path):
        builder = StreamingBuilder()
        builder.count(np.array([0]), np.array([1]))
        with pytest.raises(GraphError, match="both passes"):
            builder.build_store(tmp_path / "store")

    def test_store_rejects_incomplete_fill(self, tmp_path):
        builder = StreamingBuilder()
        builder.count(np.array([0, 1]), np.array([1, 0]))
        builder.finish_counting()
        builder.fill(np.array([0]), np.array([1]))
        with pytest.raises(GraphError, match="incomplete"):
            builder.build_store(tmp_path / "store")

    def test_store_meta_preserved(self, tmp_path):
        store = self._feed("0 1\n1 0\n").build_store(
            tmp_path / "store", meta={"origin": "unit"}
        )
        assert store.meta == {"origin": "unit"}

"""Unit tests for connectivity analysis."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EmptyGraphError, NodeIndexError
from repro.graph import (
    PageGraph,
    component_summary,
    reachable_from,
    strongly_connected_components,
    weakly_connected_components,
)


class TestComponents:
    def test_weak_two_islands(self):
        g = PageGraph.from_edges([0, 2], [1, 3], 4)
        n, labels = weakly_connected_components(g)
        assert n == 2
        assert labels[0] == labels[1]
        assert labels[2] == labels[3]
        assert labels[0] != labels[2]

    def test_strong_vs_weak(self):
        # 0 -> 1 -> 2 (a path): weakly one component, strongly three.
        g = PageGraph.from_edges([0, 1], [1, 2], 3)
        assert weakly_connected_components(g)[0] == 1
        assert strongly_connected_components(g)[0] == 3

    def test_cycle_is_strongly_connected(self, triangle_graph):
        assert strongly_connected_components(triangle_graph)[0] == 1

    def test_summary(self):
        g = PageGraph.from_edges([0, 1, 3], [1, 0, 4], 6)  # {0,1}, {3,4}, {2}, {5}
        s = component_summary(g)
        assert s.n_components == 4
        assert s.giant_size == 2
        assert s.giant_fraction == pytest.approx(2 / 6)
        np.testing.assert_array_equal(s.sizes, [2, 2, 1, 1])

    def test_synthetic_webs_have_giant_component(self, tiny_dataset):
        s = component_summary(tiny_dataset.graph)
        assert s.giant_fraction > 0.95

    def test_empty_rejected(self):
        with pytest.raises(EmptyGraphError):
            component_summary(PageGraph.empty(0))


class TestReachability:
    def test_chain(self):
        g = PageGraph.from_edges([0, 1], [1, 2], 4)
        np.testing.assert_array_equal(
            reachable_from(g, [0]), [True, True, True, False]
        )

    def test_multi_source(self):
        g = PageGraph.from_edges([0, 2], [1, 3], 4)
        np.testing.assert_array_equal(
            reachable_from(g, [0, 2]), [True, True, True, True]
        )

    def test_direction_respected(self):
        g = PageGraph.from_edges([0], [1], 2)
        np.testing.assert_array_equal(reachable_from(g, [1]), [False, True])

    def test_matches_proximity_support(self, tiny_dataset):
        """Exactly the sources reaching a seed (reversed) carry nonzero
        spam proximity."""
        from repro.graph.transforms import reverse_graph
        from repro.sources import SourceGraph
        from repro.throttle import spam_proximity
        from repro.throttle.spam_proximity import inverse_transition_matrix

        ds = tiny_dataset
        sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
        seeds = ds.spam_sources[:1]
        prox = spam_proximity(sg, seeds)
        inv = inverse_transition_matrix(sg.matrix)
        inv_graph = PageGraph.from_scipy(inv)
        support = reachable_from(inv_graph, seeds)
        nonzero = prox.scores > 1e-15
        np.testing.assert_array_equal(nonzero, support)

    def test_validation(self):
        g = PageGraph.from_edges([0], [1], 2)
        with pytest.raises(EmptyGraphError):
            reachable_from(g, [])
        with pytest.raises(NodeIndexError):
            reachable_from(g, [9])

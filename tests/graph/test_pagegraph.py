"""Unit tests for :mod:`repro.graph.pagegraph`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import EmptyGraphError, GraphError, NodeIndexError
from repro.graph import PageGraph


class TestConstruction:
    def test_from_edges_basic(self):
        g = PageGraph.from_edges([0, 1, 2], [1, 2, 0], 3)
        assert g.n_nodes == 3
        assert g.n_edges == 3
        assert list(g.successors(0)) == [1]

    def test_from_edges_deduplicates(self):
        g = PageGraph.from_edges([0, 0, 0], [1, 1, 1], 2)
        assert g.n_edges == 1

    def test_from_edges_sorts_successors(self):
        g = PageGraph.from_edges([0, 0, 0], [5, 2, 9], 10)
        assert list(g.successors(0)) == [2, 5, 9]

    def test_from_edges_isolated_trailing_nodes(self):
        g = PageGraph.from_edges([0], [1], 10)
        assert g.n_nodes == 10
        assert g.out_degrees[9] == 0

    def test_from_edges_infers_n_nodes(self):
        g = PageGraph.from_edges([0, 7], [3, 1])
        assert g.n_nodes == 8

    def test_from_edges_rejects_mismatched_lengths(self):
        with pytest.raises(GraphError, match="equal length"):
            PageGraph.from_edges([0, 1], [2])

    def test_from_edges_rejects_negative_ids(self):
        with pytest.raises(GraphError, match="non-negative"):
            PageGraph.from_edges([-1], [0])

    def test_from_edges_rejects_small_n_nodes(self):
        with pytest.raises(GraphError, match="smaller than max"):
            PageGraph.from_edges([0], [5], n_nodes=3)

    def test_empty_graph(self):
        g = PageGraph.empty(5)
        assert g.n_nodes == 5
        assert g.n_edges == 0

    def test_empty_zero_nodes(self):
        g = PageGraph.empty(0)
        assert g.n_nodes == 0
        with pytest.raises(EmptyGraphError):
            g.require_nonempty()

    def test_csr_validation_rejects_bad_indptr(self):
        with pytest.raises(GraphError):
            PageGraph(np.array([1, 2]), np.array([0, 1]), 1)

    def test_csr_validation_rejects_unsorted_rows(self):
        # Row 0 has successors [2, 1] — not sorted.
        with pytest.raises(GraphError, match="sorted"):
            PageGraph(np.array([0, 2, 2, 2]), np.array([2, 1]), 3)

    def test_csr_validation_rejects_duplicate_in_row(self):
        with pytest.raises(GraphError, match="sorted"):
            PageGraph(np.array([0, 2, 2]), np.array([1, 1]), 2)

    def test_csr_validation_rejects_out_of_range_targets(self):
        with pytest.raises(GraphError, match="edge targets"):
            PageGraph(np.array([0, 1]), np.array([5]), 1)

    def test_from_scipy_roundtrip(self, small_graph):
        again = PageGraph.from_scipy(small_graph.to_scipy())
        assert again == small_graph

    def test_from_scipy_rejects_rectangular(self):
        import scipy.sparse as sp

        with pytest.raises(GraphError, match="square"):
            PageGraph.from_scipy(sp.csr_matrix((2, 3)))

    def test_non_integer_arrays_rejected(self):
        with pytest.raises(GraphError, match="integer"):
            PageGraph.from_edges(np.array([0.5]), np.array([1.0]))


class TestAccessors:
    def test_out_degrees(self):
        g = PageGraph.from_edges([0, 0, 1], [1, 2, 2], 3)
        assert list(g.out_degrees) == [2, 1, 0]

    def test_in_degrees(self):
        g = PageGraph.from_edges([0, 0, 1], [1, 2, 2], 3)
        assert list(g.in_degrees()) == [0, 1, 2]

    def test_dangling_mask(self):
        g = PageGraph.from_edges([0], [1], 3)
        assert list(g.dangling_mask()) == [False, True, True]

    def test_has_edge(self):
        g = PageGraph.from_edges([0, 1], [1, 2], 3)
        assert g.has_edge(0, 1)
        assert not g.has_edge(1, 0)

    def test_has_edge_range_check(self):
        g = PageGraph.from_edges([0], [1], 2)
        with pytest.raises(NodeIndexError):
            g.has_edge(0, 99)

    def test_successors_range_check(self):
        g = PageGraph.empty(2)
        with pytest.raises(NodeIndexError):
            g.successors(2)

    def test_edge_arrays_roundtrip(self, small_graph):
        src, dst = small_graph.edge_arrays()
        again = PageGraph.from_edges(src, dst, small_graph.n_nodes)
        assert again == small_graph

    def test_iter_edges_matches_edge_arrays(self):
        g = PageGraph.from_edges([0, 1, 2], [1, 2, 0], 3)
        assert sorted(g.iter_edges()) == [(0, 1), (1, 2), (2, 0)]

    def test_len_is_node_count(self, small_graph):
        assert len(small_graph) == small_graph.n_nodes

    def test_immutability(self, small_graph):
        with pytest.raises(ValueError):
            small_graph.indices[0] = 99
        with pytest.raises(ValueError):
            small_graph.out_degrees[0] = 99

    def test_equality_and_repr(self):
        a = PageGraph.from_edges([0], [1], 2)
        b = PageGraph.from_edges([0], [1], 2)
        c = PageGraph.from_edges([1], [0], 2)
        assert a == b
        assert a != c
        assert "n_nodes=2" in repr(a)

    def test_to_scipy_values_are_ones(self, small_graph):
        m = small_graph.to_scipy()
        assert m.nnz == small_graph.n_edges
        assert (m.data == 1.0).all()

"""Unit tests for :mod:`repro.graph.matrix`."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import GraphError
from repro.graph import (
    PageGraph,
    is_row_stochastic,
    row_normalize,
    row_sums,
    transition_matrix,
)


class TestTransitionMatrix:
    def test_uniform_rows(self):
        g = PageGraph.from_edges([0, 0, 1], [1, 2, 0], 3)
        m = transition_matrix(g)
        assert m[0, 1] == pytest.approx(0.5)
        assert m[0, 2] == pytest.approx(0.5)
        assert m[1, 0] == pytest.approx(1.0)

    def test_dangling_rows_are_zero(self):
        g = PageGraph.from_edges([0], [1], 3)
        m = transition_matrix(g)
        assert row_sums(m)[1] == 0.0
        assert row_sums(m)[2] == 0.0

    def test_is_row_stochastic_with_dangling(self, small_graph):
        m = transition_matrix(small_graph)
        assert is_row_stochastic(m)

    def test_paper_definition_matches(self, small_graph):
        """M_ij = 1/o(p_i) exactly for every edge."""
        m = transition_matrix(small_graph).tocoo()
        out = small_graph.out_degrees
        np.testing.assert_allclose(m.data, 1.0 / out[m.row])

    def test_dtype_option(self, small_graph):
        m = transition_matrix(small_graph, dtype=np.float32)
        assert m.dtype == np.float32


class TestRowNormalize:
    def test_basic(self):
        m = sp.csr_matrix(np.array([[2.0, 2.0], [0.0, 5.0]]))
        r = row_normalize(m)
        np.testing.assert_allclose(row_sums(r), [1.0, 1.0])

    def test_zero_rows_stay_zero(self):
        m = sp.csr_matrix(np.array([[0.0, 0.0], [1.0, 1.0]]))
        r = row_normalize(m)
        assert row_sums(r)[0] == 0.0

    def test_rejects_negative(self):
        m = sp.csr_matrix(np.array([[1.0, -1.0]]))
        with pytest.raises(GraphError, match="non-negative"):
            row_normalize(m)

    def test_does_not_mutate_input_by_default(self):
        m = sp.csr_matrix(np.array([[2.0, 2.0]]))
        row_normalize(m)
        assert m[0, 0] == 2.0

    def test_dense_input_accepted(self):
        r = row_normalize(sp.csr_matrix(np.array([[3.0, 1.0]])))
        assert r[0, 0] == pytest.approx(0.75)

    def test_integer_input_promoted(self):
        # Regression: integer edge counts used to survive into the
        # in-place ``data *= scale``, which numpy rejects with a raw
        # UFuncTypeError (float scale into an int array).
        m = sp.csr_matrix(np.array([[2, 2], [0, 5]], dtype=np.int64))
        r = row_normalize(m)
        assert np.issubdtype(r.dtype, np.floating)
        np.testing.assert_allclose(r.toarray(), [[0.5, 0.5], [0.0, 1.0]])

    def test_integer_input_promoted_with_copy_false(self):
        m = sp.csr_matrix(np.array([[3, 1]], dtype=np.int32))
        r = row_normalize(m, copy=False)
        np.testing.assert_allclose(r.toarray(), [[0.75, 0.25]])
        # Documented caveat: non-float input reallocates, so the original
        # integer matrix is left untouched even with copy=False.
        assert m[0, 0] == 3

    def test_copy_false_still_in_place_for_float(self):
        m = sp.csr_matrix(np.array([[2.0, 2.0]]))
        r = row_normalize(m, copy=False)
        assert r is m
        assert m[0, 0] == 0.5


class TestIsRowStochastic:
    def test_accepts_stochastic(self):
        m = sp.csr_matrix(np.array([[0.5, 0.5], [1.0, 0.0]]))
        assert is_row_stochastic(m)

    def test_rejects_superstochastic(self):
        m = sp.csr_matrix(np.array([[0.7, 0.7]]))
        assert not is_row_stochastic(m)

    def test_zero_rows_toggle(self):
        m = sp.csr_matrix(np.array([[0.0, 0.0], [0.5, 0.5]]))
        assert is_row_stochastic(m, allow_zero_rows=True)
        assert not is_row_stochastic(m, allow_zero_rows=False)

    def test_rejects_negative_entries(self):
        m = sp.csr_matrix(np.array([[1.5, -0.5]]))
        assert not is_row_stochastic(m)

"""Unit tests for :mod:`repro.graph.builder`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import GraphBuilder


class TestGraphBuilder:
    def test_single_edges(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        b.add_edge(1, 2)
        g = b.build()
        assert g.n_nodes == 3
        assert g.n_edges == 2

    def test_batch_edges(self):
        b = GraphBuilder()
        b.add_edges([0, 1, 2], [1, 2, 0])
        assert b.n_pending_edges == 3
        assert b.build().n_edges == 3

    def test_empty_batch_is_noop(self):
        b = GraphBuilder()
        b.add_edges([], [])
        assert b.n_pending_edges == 0

    def test_growth_beyond_initial_capacity(self):
        b = GraphBuilder(n_nodes_hint=4)
        n = 5000
        b.add_edges(np.arange(n), np.arange(n)[::-1])
        assert b.build().n_edges == n  # permutation edges, no dups

    def test_duplicates_collapse_on_build(self):
        b = GraphBuilder()
        for _ in range(10):
            b.add_edge(3, 4)
        assert b.build().n_edges == 1

    def test_build_with_explicit_n_nodes(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        g = b.build(n_nodes=10)
        assert g.n_nodes == 10

    def test_build_rejects_too_small_n_nodes(self):
        b = GraphBuilder()
        b.add_edge(0, 9)
        with pytest.raises(GraphError):
            b.build(n_nodes=5)

    def test_builder_reusable_after_build(self):
        b = GraphBuilder()
        b.add_edge(0, 1)
        g1 = b.build()
        b.add_edge(1, 0)
        g2 = b.build()
        assert g1.n_edges == 1
        assert g2.n_edges == 2

    def test_negative_ids_rejected(self):
        b = GraphBuilder()
        with pytest.raises(GraphError):
            b.add_edge(-1, 0)
        with pytest.raises(GraphError):
            b.add_edges([0], [-2])

    def test_mismatched_batch_rejected(self):
        b = GraphBuilder()
        with pytest.raises(GraphError):
            b.add_edges([0, 1], [2])


class TestNamedNodes:
    def test_intern_is_stable(self):
        b = GraphBuilder()
        assert b.intern("a") == 0
        assert b.intern("b") == 1
        assert b.intern("a") == 0

    def test_named_edges(self):
        b = GraphBuilder()
        b.add_named_edge("x.com", "y.org")
        b.add_named_edge("y.org", "x.com")
        g = b.build()
        assert g.n_nodes == 2
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)

    def test_named_edges_batch(self):
        b = GraphBuilder()
        b.add_named_edges([("a", "b"), ("b", "c")])
        assert b.build().n_nodes == 3

    def test_name_of_roundtrip(self):
        b = GraphBuilder()
        b.add_named_edge("u", "v")
        assert b.name_of(0) == "u"
        assert b.name_of(1) == "v"

    def test_name_of_unknown_raises(self):
        b = GraphBuilder()
        with pytest.raises(GraphError):
            b.name_of(0)

    def test_mixed_named_and_numeric(self):
        b = GraphBuilder()
        name_id = b.intern("home")
        b.add_edge(name_id, 5)
        g = b.build()
        assert g.has_edge(0, 5)
        assert b.max_node == 5

"""Unit tests for :mod:`repro.graph.urls`."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph import extract_host, extract_registered_domain, normalize_url


class TestNormalizeUrl:
    def test_lowercases_scheme_and_host(self):
        assert normalize_url("HTTP://Example.COM/Path") == "http://example.com/Path"

    def test_preserves_path_case(self):
        assert normalize_url("http://a.com/CaseSensitive") == "http://a.com/CaseSensitive"

    def test_strips_default_port(self):
        assert normalize_url("http://a.com:80/x") == "http://a.com/x"
        assert normalize_url("https://a.com:443/x") == "https://a.com/x"

    def test_keeps_nonstandard_port(self):
        assert normalize_url("http://a.com:8080/x") == "http://a.com:8080/x"

    def test_strips_fragment(self):
        assert normalize_url("http://a.com/x#section") == "http://a.com/x"

    def test_adds_scheme_when_missing(self):
        assert normalize_url("a.com/x") == "http://a.com/x"

    def test_ensures_root_path(self):
        assert normalize_url("http://a.com") == "http://a.com/"

    def test_strips_trailing_slash_on_paths(self):
        assert normalize_url("http://a.com/x/") == "http://a.com/x"

    def test_strips_userinfo(self):
        assert normalize_url("http://user:pw@a.com/x") == "http://a.com/x"

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            normalize_url("   ")


class TestExtractHost:
    def test_basic(self):
        assert extract_host("http://www.example.com/p.html") == "www.example.com"

    def test_case_insensitive(self):
        assert extract_host("http://WWW.EXAMPLE.com/") == "www.example.com"

    def test_drops_port(self):
        assert extract_host("http://a.com:8080/x") == "a.com"

    def test_schemeless(self):
        assert extract_host("example.org/page") == "example.org"

    def test_no_host_rejected(self):
        with pytest.raises(GraphError):
            extract_host("http:///path-only")


class TestRegisteredDomain:
    def test_simple_com(self):
        assert extract_registered_domain("http://www.example.com/x") == "example.com"

    def test_deep_subdomains(self):
        assert extract_registered_domain("http://a.b.c.example.com/") == "example.com"

    def test_co_uk(self):
        assert extract_registered_domain("http://news.bbc.co.uk/x") == "bbc.co.uk"

    def test_gov_it(self):
        assert extract_registered_domain("http://www.roma.gov.it/") == "roma.gov.it"

    def test_bare_domain_unchanged(self):
        assert extract_registered_domain("http://example.com/") == "example.com"

    def test_single_label_host(self):
        assert extract_registered_domain("http://localhost/") == "localhost"

    def test_ip_address_unchanged(self):
        assert extract_registered_domain("http://192.168.10.1/x") == "192.168.10.1"

"""Unit tests for :mod:`repro.graph.io`."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.errors import CodecError, GraphError
from repro.graph import (
    PageGraph,
    load_npz,
    read_edge_list,
    read_labeled_edges,
    save_npz,
    write_edge_list,
)


class TestEdgeListIO:
    def test_roundtrip_via_file(self, small_graph, tmp_path):
        path = tmp_path / "graph.tsv"
        write_edge_list(small_graph, path)
        again = read_edge_list(path, n_nodes=small_graph.n_nodes)
        assert again == small_graph

    def test_roundtrip_via_handle(self, small_graph):
        buf = io.StringIO()
        write_edge_list(small_graph, buf)
        buf.seek(0)
        again = read_edge_list(buf, n_nodes=small_graph.n_nodes)
        assert again == small_graph

    def test_comments_and_blanks_skipped(self):
        text = "# header\n\n0 1\n1 2\n"
        g = read_edge_list(io.StringIO(text))
        assert g.n_edges == 2

    def test_custom_separator(self):
        g = read_edge_list(io.StringIO("0,1\n1,2\n"), sep=",")
        assert g.n_edges == 2

    def test_malformed_line_reports_lineno(self):
        with pytest.raises(GraphError, match="line 2"):
            read_edge_list(io.StringIO("0 1\nbroken\n"))

    def test_non_integer_rejected(self):
        with pytest.raises(GraphError, match="non-integer"):
            read_edge_list(io.StringIO("a b\n"))

    def test_negative_id_rejected_with_lineno(self):
        with pytest.raises(GraphError, match="line 2.*negative node id"):
            read_edge_list(io.StringIO("0 1\n-3 2\n"))

    def test_negative_dst_rejected(self):
        with pytest.raises(GraphError, match="line 1.*negative node id"):
            read_edge_list(io.StringIO("0 -1\n"))

    def test_header_contains_counts(self, tmp_path):
        g = PageGraph.from_edges([0], [1], 2)
        path = tmp_path / "g.tsv"
        write_edge_list(g, path)
        first = path.read_text().splitlines()[0]
        assert "nodes=2" in first and "edges=1" in first


class TestLabeledEdges:
    def test_urls_interned(self):
        text = "http://a.com/1\thttp://b.com/2\nhttp://b.com/2\thttp://a.com/1\n"
        g, names = read_labeled_edges(io.StringIO(text))
        assert g.n_nodes == 2
        assert names["http://a.com/1"] == 0

    def test_malformed_rejected(self):
        with pytest.raises(GraphError, match="line 1"):
            read_labeled_edges(io.StringIO("only-one-field\n"))


class TestNpzIO:
    def test_roundtrip(self, small_graph, tmp_path):
        path = tmp_path / "graph.npz"
        save_npz(small_graph, path)
        assert load_npz(path) == small_graph

    def test_missing_field_rejected(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez_compressed(path, unrelated=np.arange(3))
        with pytest.raises(CodecError, match="missing field"):
            load_npz(path)

    def test_wrong_version_rejected(self, small_graph, tmp_path):
        path = tmp_path / "graph.npz"
        np.savez_compressed(
            path,
            format_version=np.int64(999),
            n_nodes=np.int64(small_graph.n_nodes),
            indptr=small_graph.indptr,
            indices=small_graph.indices,
        )
        with pytest.raises(CodecError, match="version"):
            load_npz(path)

    def test_tampered_archive_roundtrip(self, small_graph, tmp_path):
        # A valid archive with one payload key dropped must raise
        # CodecError, and a freshly re-saved archive must load again.
        path = tmp_path / "graph.npz"
        save_npz(small_graph, path)
        with np.load(path) as data:
            kept = {k: data[k] for k in data.files if k != "indices"}
        np.savez_compressed(path, **kept)
        with pytest.raises(CodecError, match="missing field"):
            load_npz(path)
        save_npz(small_graph, path)
        assert load_npz(path) == small_graph

"""Unit tests for :mod:`repro.graph.stats`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphError
from repro.graph import (
    GraphStats,
    PageGraph,
    compute_stats,
    degree_histogram,
    intra_host_locality,
)
from repro.graph.stats import gini_coefficient


class TestComputeStats:
    def test_counts(self):
        g = PageGraph.from_edges([0, 0, 1], [1, 1, 1], 4)  # dup collapses
        s = compute_stats(g)
        assert s.n_nodes == 4
        assert s.n_edges == 2
        assert s.n_dangling == 2  # nodes 2, 3 (node 1 keeps its self-loop)
        assert s.n_isolated == 2  # nodes 2, 3
        assert s.max_out_degree == 1
        assert s.max_in_degree == 2

    def test_self_loops_counted(self):
        g = PageGraph.from_edges([0, 1], [0, 2], 3)
        assert compute_stats(g).self_loops == 1

    def test_as_dict_keys(self, small_graph):
        d = compute_stats(small_graph).as_dict()
        assert set(d) >= {"n_nodes", "n_edges", "mean_degree", "in_degree_gini"}

    def test_is_dataclass_record(self, small_graph):
        assert isinstance(compute_stats(small_graph), GraphStats)


class TestGini:
    def test_uniform_is_zero(self):
        assert gini_coefficient(np.full(100, 7.0)) == pytest.approx(0.0, abs=1e-12)

    def test_concentrated_is_high(self):
        values = np.zeros(100)
        values[0] = 1.0
        assert gini_coefficient(values) == pytest.approx(0.99, abs=0.001)

    def test_all_zero_is_zero(self):
        assert gini_coefficient(np.zeros(5)) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(GraphError):
            gini_coefficient(np.array([-1.0, 1.0]))

    def test_rejects_empty(self):
        with pytest.raises(GraphError):
            gini_coefficient(np.array([]))

    def test_scale_invariant(self, rng):
        x = rng.random(500)
        assert gini_coefficient(x) == pytest.approx(gini_coefficient(10 * x))


class TestDegreeHistogram:
    def test_linear_bins_count_everything(self, small_graph):
        edges, counts = degree_histogram(small_graph.out_degrees)
        assert counts.sum() == small_graph.n_nodes

    def test_log_bins_count_everything(self, small_graph):
        edges, counts = degree_histogram(small_graph.in_degrees(), log_bins=True)
        assert counts.sum() == small_graph.n_nodes

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            degree_histogram(np.array([], dtype=np.int64))


class TestLocality:
    def test_all_intra(self):
        g = PageGraph.from_edges([0, 1], [1, 0], 2)
        assert intra_host_locality(g, np.array([0, 0])) == 1.0

    def test_all_inter(self):
        g = PageGraph.from_edges([0, 1], [1, 0], 2)
        assert intra_host_locality(g, np.array([0, 1])) == 0.0

    def test_mixed(self):
        g = PageGraph.from_edges([0, 0], [1, 2], 3)
        assert intra_host_locality(g, np.array([0, 0, 1])) == pytest.approx(0.5)

    def test_empty_graph(self):
        g = PageGraph.empty(3)
        assert intra_host_locality(g, np.zeros(3, dtype=np.int64)) == 0.0

    def test_shape_mismatch_rejected(self, small_graph):
        with pytest.raises(GraphError):
            intra_host_locality(small_graph, np.zeros(3, dtype=np.int64))

"""Integration tests asserting the paper's directional claims end to end.

Each test here corresponds to a sentence in the paper's analysis or
evaluation sections; EXPERIMENTS.md cross-references them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import closed_form as cf
from repro.analysis.amplification import measure_amplification
from repro.config import ExperimentParams, RankingParams, ThrottleParams
from repro.datasets import load_dataset, sample_seed_set
from repro.ranking import pagerank, sourcerank, spam_resilient_sourcerank
from repro.sources import SourceGraph
from repro.spam import (
    CrossSourceAttack,
    HijackAttack,
    IntraSourceAttack,
    evaluate_attack,
)
from repro.throttle import ThrottleVector, assign_kappa, spam_proximity


@pytest.fixture(scope="module")
def ds():
    return load_dataset("tiny")


@pytest.fixture(scope="module")
def clean_sg(ds):
    return SourceGraph.from_page_graph(ds.graph, ds.assignment)


@pytest.fixture(scope="module")
def params():
    return RankingParams()


class TestSection41SelfManipulation:
    def test_one_time_boost_is_capped(self, ds, params):
        """Intra-source collusion gains are capped at (1-ak)/(1-a) while
        PageRank's grow without bound (Fig. 4a / Fig. 6 claim)."""
        target_page = int(ds.assignment.pages_of(5)[0])
        cap = float(cf.self_tuning_boost(0.0, params.alpha))
        prev = None
        for tau in (10, 100, 400):
            ev = evaluate_attack(
                ds.graph, ds.assignment, IntraSourceAttack(target_page, tau),
                params=params,
            )
            amp = ev.srsr_record.amplification
            assert amp <= cap * 1.05
            if prev is not None:
                assert ev.pagerank_record.amplification > prev
            prev = ev.pagerank_record.amplification

    def test_pagerank_dominates_srsr_under_attack(self, ds, params, clean_sg):
        # Per the Fig. 6 protocol, attack a bottom-half source.
        base = sourcerank(clean_sg, params)
        target_source = int(base.order()[-3])
        target_page = int(ds.assignment.pages_of(target_source)[0])
        ev = evaluate_attack(
            ds.graph, ds.assignment, IntraSourceAttack(target_page, 100),
            params=params,
        )
        assert (
            ev.pagerank_record.amplification > 3 * ev.srsr_record.amplification
        )


class TestSection42CrossSource:
    def test_throttling_colluders_reduces_target_gain(self, ds, params):
        """Raising kappa on the colluding source cuts the target's gain
        (Eq. 5 / Fig. 4b)."""
        target_page = int(ds.assignment.pages_of(3)[0])
        target_source = ds.assignment.source_of(target_page)
        colluder = 10 if target_source != 10 else 11
        attack = CrossSourceAttack(target_page, colluder, 200)
        n = ds.n_sources
        gains = {}
        for kappa_val in (0.0, 0.9):
            kappa = ThrottleVector.zeros(n).updated([colluder], kappa_val)
            ev = evaluate_attack(
                ds.graph, ds.assignment, attack, kappa=kappa, params=params
            )
            gains[kappa_val] = ev.srsr_record.amplification
        assert gains[0.9] < gains[0.0]


class TestSection32Hijacking:
    def test_consensus_resists_single_page_hijack(self, ds, params):
        """Hijacking one page of a legitimate source must barely move the
        spam target's source score under consensus weighting."""
        # Spam target: a page in a bottom-ranked source.
        sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
        base = sourcerank(sg, params)
        target_source = int(base.order()[-1])
        target_page = int(ds.assignment.pages_of(target_source)[0])
        # Victim: one page of the biggest legit source.
        big_source = int(np.argmax(ds.assignment.source_sizes[:-8]))
        victims = ds.assignment.pages_of(big_source)[:1]
        victims = victims[victims != target_page]
        ev = evaluate_attack(
            ds.graph,
            ds.assignment,
            HijackAttack(target_page, victims),
            params=params,
        )
        assert ev.srsr_record.amplification < 1.5

    def test_capturing_more_pages_gains_more(self, ds, params):
        """The burden of Section 3.2: influence requires capturing many
        pages, and grows with the number captured."""
        sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
        base = sourcerank(sg, params)
        target_source = int(base.order()[-1])
        target_page = int(ds.assignment.pages_of(target_source)[0])
        big_source = int(np.argmax(ds.assignment.source_sizes[:-8]))
        pages = ds.assignment.pages_of(big_source)
        pages = pages[pages != target_page]
        few = evaluate_attack(
            ds.graph, ds.assignment, HijackAttack(target_page, pages[:1]),
            params=params,
        )
        many = evaluate_attack(
            ds.graph, ds.assignment, HijackAttack(target_page, pages),
            params=params,
        )
        assert many.srsr_record.amplification > few.srsr_record.amplification


class TestSection62Fig5Protocol:
    def test_throttled_ranking_demotes_spam_vs_baseline(self, ds, clean_sg):
        """Fig. 5's headline: with <10 % of spam seeded, throttled
        SR-SourceRank pushes ground-truth spam into worse buckets."""
        rng = np.random.default_rng(123)
        seeds = sample_seed_set(ds.spam_sources, 0.25, rng)
        proximity = spam_proximity(clean_sg, seeds)
        kappa = assign_kappa(
            proximity.scores,
            ThrottleParams(top_fraction=2 * ds.spam_sources.size / ds.n_sources),
        )
        baseline = sourcerank(clean_sg)
        throttled = spam_resilient_sourcerank(
            clean_sg, kappa, full_throttle="dangling"
        )
        base_pct = baseline.percentiles()[ds.spam_sources].mean()
        thr_pct = throttled.percentiles()[ds.spam_sources].mean()
        assert thr_pct < base_pct - 10  # clear demotion, not noise

    def test_seeded_throttling_catches_unseeded_spam(self, ds, clean_sg):
        """Spam proximity must flag spam sources that were never seeded."""
        rng = np.random.default_rng(7)
        seeds = sample_seed_set(ds.spam_sources, 0.25, rng)
        proximity = spam_proximity(clean_sg, seeds)
        kappa = assign_kappa(
            proximity.scores,
            ThrottleParams(top_fraction=2 * ds.spam_sources.size / ds.n_sources),
        )
        unseeded = np.setdiff1d(ds.spam_sources, seeds)
        caught = kappa.throttled_mask()[unseeded].mean()
        assert caught >= 0.5


class TestWarmStartConsistency:
    def test_incremental_recompute_matches_cold(self, ds, params):
        """The Fig. 6/7 warm-start path must give the same scores as a
        cold computation."""
        attack = IntraSourceAttack(int(ds.assignment.pages_of(2)[0]), 50)
        spammed = attack.apply(ds.graph, ds.assignment)
        cold = pagerank(spammed.graph, params)
        warm_x0 = np.full(spammed.graph.n_nodes, 1.0 / spammed.graph.n_nodes)
        warm_x0[: ds.graph.n_nodes] = pagerank(ds.graph, params).scores
        warm = pagerank(spammed.graph, params, x0=warm_x0)
        np.testing.assert_allclose(cold.scores, warm.scores, atol=1e-7)

"""Public-API surface tests: the README and docstring contracts."""

from __future__ import annotations

import numpy as np
import pytest

import repro


class TestPublicSurface:
    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_every_public_item_documented(self):
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) or isinstance(obj, type):
                assert obj.__doc__, f"{name} lacks a docstring"

    def test_subpackage_alls_resolve(self):
        import importlib
        import pkgutil

        for _, module_name, _ in pkgutil.walk_packages(
            repro.__path__, prefix="repro."
        ):
            module = importlib.import_module(module_name)
            for name in getattr(module, "__all__", []):
                assert hasattr(module, name), f"{module_name}.{name}"


class TestReadmeQuickstart:
    def test_quickstart_snippet_runs(self):
        """The README's quickstart, verbatim in structure."""
        from repro import SpamResilientPipeline, load_dataset, sample_seed_set

        ds = load_dataset("tiny")
        seeds = sample_seed_set(
            ds.spam_sources, 0.10, np.random.default_rng(42)
        )
        result = SpamResilientPipeline().rank(
            ds.graph, ds.assignment, spam_seeds=seeds
        )
        top = result.top_sources(10)
        assert top.size == 10
        assert result.kappa.fully_throttled().size > 0

    def test_crawl_snippet_runs(self, tmp_path):
        """The README's own-crawl snippet."""
        from repro import SourceAssignment, SpamResilientPipeline
        from repro.graph import read_labeled_edges

        crawl = tmp_path / "crawl.tsv"
        crawl.write_text(
            "http://a.com/1\thttp://b.org/1\n"
            "http://b.org/1\thttp://a.com/2\n"
            "http://a.com/2\thttp://c.net/1\n"
        )
        graph, url_ids = read_labeled_edges(crawl)
        urls = sorted(url_ids, key=url_ids.get)
        assignment = SourceAssignment.from_urls(urls, key="host")
        result = SpamResilientPipeline().rank(graph, assignment)
        assert result.scores.n == assignment.n_sources

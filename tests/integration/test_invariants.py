"""Cross-cutting invariants: properties that must hold for *any* input.

These are the deep correctness checks — relabeling equivariance, walk
semantics, and throttle monotonicity — that catch subtle indexing or
normalization bugs no example-based test would.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RankingParams
from repro.graph import PageGraph, relabel_graph, transition_matrix
from repro.ranking import pagerank, sourcerank, spam_resilient_sourcerank
from repro.sources import SourceAssignment, SourceGraph
from repro.throttle import ThrottleVector


def _random_web(seed: int, n_min: int = 10, n_max: int = 60):
    gen = np.random.default_rng(seed)
    n = int(gen.integers(n_min, n_max))
    m = int(gen.integers(n, 5 * n))
    graph = PageGraph.from_edges(gen.integers(0, n, m), gen.integers(0, n, m), n)
    k = int(gen.integers(2, max(3, n // 3)))
    ids = gen.integers(0, k, n)
    ids[:k] = np.arange(k)
    return graph, SourceAssignment(ids.astype(np.int64)), gen


class TestRelabelEquivariance:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=20, deadline=None)
    def test_pagerank_permutes_with_nodes(self, seed):
        """Renaming nodes must permute scores identically — rankings are
        functions of structure, not of ids."""
        graph, _, gen = _random_web(seed)
        perm = gen.permutation(graph.n_nodes)
        relabeled = relabel_graph(graph, perm)
        base = pagerank(graph, RankingParams())
        moved = pagerank(relabeled, RankingParams())
        np.testing.assert_allclose(
            moved.scores[perm], base.scores, atol=1e-9
        )

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_sourcerank_invariant_to_page_relabeling(self, seed):
        """Permuting *pages* (keeping their sources) must not change
        source scores at all."""
        graph, assignment, gen = _random_web(seed)
        perm = gen.permutation(graph.n_nodes)
        relabeled = relabel_graph(graph, perm)
        moved_ids = np.empty(graph.n_nodes, dtype=np.int64)
        moved_ids[perm] = assignment.page_to_source
        moved_assignment = SourceAssignment(moved_ids)
        base = sourcerank(SourceGraph.from_page_graph(graph, assignment))
        moved = sourcerank(SourceGraph.from_page_graph(relabeled, moved_assignment))
        np.testing.assert_allclose(moved.scores, base.scores, atol=1e-9)


class TestWalkSemantics:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_srsr_satisfies_selective_walk_equation(self, seed):
        """Section 3.4's walk: sigma must satisfy
        sigma = alpha * sigma T'' + (1-alpha) c after renormalization."""
        graph, assignment, gen = _random_web(seed)
        sg = SourceGraph.from_page_graph(graph, assignment)
        kappa = ThrottleVector(gen.random(sg.n_sources) * 0.95)
        params = RankingParams()
        result = spam_resilient_sourcerank(sg, kappa, params)
        from repro.throttle import throttle_transform

        t2 = throttle_transform(sg.matrix, kappa)
        x = result.scores
        c = np.full(sg.n_sources, 1.0 / sg.n_sources)
        y = params.alpha * (t2.T @ x) + (1 - params.alpha) * c
        # The walk is stochastic here, so the fixed point needs no
        # renormalization.
        np.testing.assert_allclose(y, x, atol=1e-7)

    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=15, deadline=None)
    def test_total_rank_mass_conserved(self, seed):
        graph, assignment, _ = _random_web(seed)
        sg = SourceGraph.from_page_graph(graph, assignment)
        result = sourcerank(sg)
        assert result.scores.sum() == pytest.approx(1.0)
        assert (result.scores >= 0).all()


class TestThrottleMonotonicity:
    @given(st.integers(min_value=0, max_value=2**31 - 1))
    @settings(max_examples=10, deadline=None)
    def test_raising_kappa_never_helps_beneficiaries(self, seed):
        """Raising one source's throttle must not increase the total
        score share of the sources it points to."""
        graph, assignment, gen = _random_web(seed)
        sg = SourceGraph.from_page_graph(graph, assignment)
        n = sg.n_sources
        m = sg.matrix.copy()
        m.setdiag(0)
        m.eliminate_zeros()
        out_mass = np.asarray(m.sum(axis=1)).ravel()
        if out_mass.max() == 0:
            return  # no inter-source edges in this draw
        s = int(np.argmax(out_mass))
        beneficiaries = m[s].tocoo().col
        lo = spam_resilient_sourcerank(sg, ThrottleVector.zeros(n))
        hi = spam_resilient_sourcerank(
            sg, ThrottleVector.zeros(n).updated([s], 0.95)
        )
        assert (
            hi.scores[beneficiaries].sum()
            <= lo.scores[beneficiaries].sum() + 1e-9
        )

    def test_global_kappa_shrinks_score_spread(self, small_source_graph):
        """Uniform throttling pushes the walk toward teleportation, so the
        score distribution must flatten (smaller max, larger min)."""
        n = small_source_graph.n_sources
        spread = {}
        for kappa_val in (0.0, 0.5, 0.95):
            r = spam_resilient_sourcerank(
                small_source_graph, ThrottleVector.constant(n, kappa_val)
            )
            spread[kappa_val] = r.scores.max() - r.scores.min()
        assert spread[0.95] < spread[0.5] < spread[0.0]

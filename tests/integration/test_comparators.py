"""Integration tests for the comparator rankings on planted-spam data."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams
from repro.ranking import hits, pagerank, select_trust_seeds, trustrank
from repro.sources import SourceGraph
from repro.spam import HoneypotAttack, OutlierSpamDetector
from repro.throttle import ThrottleVector


class TestTrustRankOnPlantedSpam:
    def test_trustrank_starves_unreachable_spam(self, tiny_dataset):
        """Spam pages never linked from the trusted frontier get (almost)
        no trust — TrustRank's strength on isolated farms."""
        ds = tiny_dataset
        params = RankingParams()
        spam_pages = np.concatenate(
            [ds.assignment.pages_of(int(s)) for s in ds.spam_sources]
        )
        seeds = select_trust_seeds(ds.graph, 20, exclude=spam_pages)
        t = trustrank(ds.graph, seeds, params)
        p = pagerank(ds.graph, params)
        # Relative to PageRank, TrustRank gives spam a smaller share: the
        # planted communities rely on their own link mass, which TrustRank
        # only reaches through the few hijacked legit pages.
        spam_share_trust = t.scores[spam_pages].sum()
        spam_share_pr = p.scores[spam_pages].sum()
        assert spam_share_trust < spam_share_pr

    def test_honeypot_beats_trustrank_not_srsr(self, tiny_dataset):
        """The Section 7 story end-to-end on planted data."""
        from repro.ranking import sourcerank, spam_resilient_sourcerank
        from repro.spam import evaluate_attack

        ds = tiny_dataset
        params = RankingParams()
        sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
        sr_before = sourcerank(sg, params)
        target_source = int(sr_before.order()[-1])
        target_page = int(ds.assignment.pages_of(target_source)[0])
        seeds = select_trust_seeds(ds.graph, 12, exclude=[target_page])
        attack = HoneypotAttack(target_page, 3, seeds[:6])
        spammed = attack.apply(ds.graph, ds.assignment)

        trust_before = trustrank(ds.graph, seeds, params)
        trust_after = trustrank(spammed.graph, seeds, params)
        trust_gain = (
            trust_after.percentiles()[target_page]
            - trust_before.percentiles()[target_page]
        )
        ev = evaluate_attack(ds.graph, ds.assignment, attack, params=params)
        assert trust_gain > ev.srsr_record.percentile_gain


class TestHitsOnPlantedSpam:
    def test_authorities_and_hubs_are_distributions(self, tiny_dataset):
        result = hits(tiny_dataset.graph)
        assert result.authorities.scores.sum() == pytest.approx(1.0)
        assert result.hubs.scores.sum() == pytest.approx(1.0)


class TestDetectorEndToEnd:
    def test_detect_then_throttle_demotes_spam(self, tiny_dataset):
        """The detection paradigm wired into the ranking: flagged sources
        get kappa=1 and the planted spam loses rank on average."""
        from repro.ranking import sourcerank, spam_resilient_sourcerank

        ds = tiny_dataset
        sg = SourceGraph.from_page_graph(ds.graph, ds.assignment)
        baseline = sourcerank(sg)
        _, flagged = OutlierSpamDetector().detect(
            ds.graph, ds.assignment, top_fraction=0.15
        )
        kappa = ThrottleVector.zeros(ds.n_sources).updated(flagged, 1.0)
        throttled = spam_resilient_sourcerank(
            sg, kappa, full_throttle="dangling"
        )
        before = baseline.percentiles()[ds.spam_sources].mean()
        after = throttled.percentiles()[ds.spam_sources].mean()
        assert after < before

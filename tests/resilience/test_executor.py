"""Broken-pool recovery tests (spawn real worker processes)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from concurrent.futures import BrokenExecutor

from repro.observability.metrics import get_registry, reset_registry
from repro.parallel import SharedCsrMatvec, WorkerPool
from repro.resilience import break_worker_pool


def square(x: int) -> int:
    return x * x


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_registry()
    yield
    reset_registry()


@pytest.fixture(scope="module")
def matrix():
    return sp.random(200, 200, density=0.05, random_state=5, format="csr")


def fallback_count(kind: str) -> float:
    return (
        get_registry()
        .counter("repro_fallbacks_total", labelnames=("kind",))
        .labels(kind=kind)
        .value
    )


class TestWorkerPoolRecovery:
    def test_killed_worker_triggers_rebuild(self):
        with WorkerPool(2, max_rebuilds=2) as pool:
            assert pool.run(square, range(5)) == [0, 1, 4, 9, 16]
            break_worker_pool(pool)
            assert pool.run(square, range(5)) == [0, 1, 4, 9, 16]
            assert pool.rebuilds == 1
        assert fallback_count("pool_rebuild") == 1

    def test_budget_exhaustion_propagates(self):
        with WorkerPool(2, max_rebuilds=0) as pool:
            break_worker_pool(pool)
            with pytest.raises(BrokenExecutor):
                pool.run(square, range(5))

    def test_rebuild_reruns_initializer(self):
        # SharedCsrMatvec's initializer re-attaches shared memory; a
        # rebuilt pool must produce correct numbers, which only works if
        # the initializer ran again in the fresh workers.
        matrix = sp.random(100, 100, density=0.05, random_state=3, format="csr")
        x = np.linspace(0, 1, 100)
        with SharedCsrMatvec(matrix, n_workers=2) as mv:
            break_worker_pool(mv._pool)
            np.testing.assert_allclose(mv.rmatvec(x), matrix.T @ x, atol=1e-12)
            assert mv._pool.rebuilds == 1
            assert not mv.degraded


class TestSerialDegradation:
    def test_exhausted_budget_degrades_to_serial(self, matrix, rng):
        x = rng.random(matrix.shape[0])
        expected = matrix.T @ x
        with SharedCsrMatvec(matrix, n_workers=2) as mv:
            # Exhaust the budget so the next failure cannot rebuild.
            mv._pool.max_rebuilds = mv._pool.rebuilds
            break_worker_pool(mv._pool)
            np.testing.assert_allclose(mv.rmatvec(x), expected, atol=1e-12)
            assert mv.degraded
            # Further calls stay serial and stay correct.
            np.testing.assert_allclose(mv.rmatvec(x), expected, atol=1e-12)
        assert fallback_count("serial_degrade") == 1

    def test_degraded_close_still_releases(self, matrix):
        mv = SharedCsrMatvec(matrix, n_workers=1)
        mv._pool.max_rebuilds = 0
        break_worker_pool(mv._pool)
        mv.rmatvec(np.zeros(matrix.shape[0]))
        assert mv.degraded
        mv.close()
        mv.close()  # idempotent

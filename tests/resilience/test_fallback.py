"""Unit + property tests for :mod:`repro.resilience.fallback`."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import RankingParams, ResilienceParams
from repro.errors import ConfigError, ConvergenceError, NumericalError
from repro.linalg.operator import CsrOperator
from repro.linalg.registry import solver_registry
from repro.observability.metrics import get_registry, reset_registry
from repro.ranking.power import power_iteration
from repro.resilience import FallbackChain, FaultyOperator


def random_stochastic(n: int, seed: int) -> sp.csr_matrix:
    """A dense-ish random row-stochastic CSR matrix."""
    gen = np.random.default_rng(seed)
    dense = gen.random((n, n)) * (gen.random((n, n)) < 0.5)
    dense[dense.sum(axis=1) == 0, 0] = 1.0  # no all-zero rows
    dense /= dense.sum(axis=1, keepdims=True)
    return sp.csr_matrix(dense)


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_registry()
    yield
    reset_registry()


PARAMS = RankingParams(
    tolerance=1e-12, max_iter=2000, resilience=ResilienceParams()
)


class TestFallbackChain:
    def test_needs_at_least_one_solver(self):
        with pytest.raises(ConfigError):
            FallbackChain(())

    def test_unknown_solver_rejected(self):
        with pytest.raises(ConfigError, match="unknown solver"):
            FallbackChain(("power", "not-a-solver"))

    def test_first_success_records_provenance(self):
        matrix = random_stochastic(20, seed=1)
        result = FallbackChain(("power", "jacobi")).solve(matrix, PARAMS)
        assert len(result.provenance) == 1
        assert result.provenance[0].solver == "power"
        assert result.provenance[0].succeeded
        assert not result.provenance[0].warm_started

    def test_fault_engages_fallback_with_warm_start(self):
        matrix = random_stochastic(30, seed=2)
        reference = power_iteration(matrix, PARAMS)
        faulty = FaultyOperator(CsrOperator(matrix), corrupt_at_call=4)
        result = FallbackChain(("power", "jacobi")).solve(faulty, PARAMS)
        attempts = result.provenance
        assert [a.solver for a in attempts] == ["power", "jacobi"]
        assert attempts[0].error_type == "NumericalError"
        assert attempts[1].warm_started
        assert attempts[1].succeeded
        np.testing.assert_allclose(
            result.scores, reference.scores, atol=1e-9
        )
        fallbacks = (
            get_registry()
            .counter("repro_fallbacks_total", labelnames=("kind",))
            .labels(kind="solver")
            .value
        )
        assert fallbacks == 1

    def test_exhausted_chain_reraises_with_attempts(self):
        matrix = random_stochastic(10, seed=3)
        hopeless = PARAMS.with_(max_iter=2)
        with pytest.raises(ConvergenceError) as exc:
            FallbackChain(("power", "jacobi")).solve(matrix, hopeless)
        assert [a.solver for a in exc.value.attempts] == ["power", "jacobi"]

    def test_non_catch_exceptions_propagate(self):
        matrix = random_stochastic(10, seed=4)
        faulty = FaultyOperator(CsrOperator(matrix), fail_at_call=1)
        # InjectedFaultError is not a ConvergenceError: must not be masked.
        with pytest.raises(Exception) as exc:
            FallbackChain(("power", "jacobi")).solve(faulty, PARAMS)
        assert exc.type.__name__ == "InjectedFaultError"

    def test_register_exposes_chain_as_solver(self):
        name = FallbackChain(("power", "jacobi")).register()
        assert name == "fallback:power>jacobi"
        assert name in solver_registry
        matrix = random_stochastic(15, seed=5)
        result = solver_registry.solve(matrix, PARAMS, solver=name)
        assert result.convergence.converged


class TestChainEqualsDirectSolve:
    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=3, max_value=40),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_chain_matches_power_on_random_stochastic(self, n, seed):
        matrix = random_stochastic(n, seed)
        direct = power_iteration(matrix, PARAMS)
        chained = FallbackChain(("power", "jacobi")).solve(matrix, PARAMS)
        np.testing.assert_allclose(
            chained.scores, direct.scores, atol=1e-9
        )

    @settings(max_examples=10, deadline=None)
    @given(
        n=st.integers(min_value=5, max_value=30),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
        fault_call=st.integers(min_value=1, max_value=8),
    )
    def test_faulted_chain_matches_fault_free_solve(self, n, seed, fault_call):
        """A transient NaN fault mid-solve must not change the final σ."""
        matrix = random_stochastic(n, seed)
        reference = power_iteration(matrix, PARAMS)
        faulty = FaultyOperator(
            CsrOperator(matrix), corrupt_at_call=fault_call, seed=seed
        )
        result = FallbackChain(("power", "power", "jacobi")).solve(
            faulty, PARAMS
        )
        np.testing.assert_allclose(
            result.scores, reference.scores, atol=1e-9
        )

"""Unit tests for :mod:`repro.resilience.guards`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import RankingParams, ResilienceParams
from repro.errors import (
    DivergenceError,
    NumericalError,
    SolveDeadlineError,
    StagnationError,
)
from repro.linalg.iterate import iterate_to_fixpoint
from repro.observability.metrics import get_registry, reset_registry
from repro.resilience import SolveGuard


def trips(kind: str) -> float:
    return (
        get_registry()
        .counter("repro_guard_trips_total", labelnames=("kind",))
        .labels(kind=kind)
        .value
    )


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_registry()
    yield
    reset_registry()


class TestSolveGuard:
    def test_nan_iterate_trips(self):
        guard = SolveGuard(ResilienceParams(), tolerance=1e-9)
        x = np.ones(4)
        guard.check(1, x, 0.5)  # finite: records last_finite
        bad = x.copy()
        bad[2] = np.nan
        with pytest.raises(NumericalError, match="non-finite iterate"):
            guard.check(2, bad, 0.4)
        assert trips("nan") == 1

    def test_nan_residual_trips(self):
        guard = SolveGuard(ResilienceParams(), tolerance=1e-9)
        with pytest.raises(NumericalError, match="non-finite residual"):
            guard.check(1, np.ones(4), np.nan)

    def test_last_finite_attached_to_error(self):
        guard = SolveGuard(ResilienceParams(), tolerance=1e-9)
        good = np.full(4, 0.25)
        guard.check(1, good, 0.5)
        bad = good.copy()
        bad[0] = np.inf
        with pytest.raises(NumericalError) as exc:
            guard.check(2, bad, 0.4)
        np.testing.assert_array_equal(exc.value.last_iterate, good)

    def test_finite_scan_interval_respected(self):
        # Scan every 3 iterations: a NaN on iteration 2 slips past the
        # iterate scan (the residual stays finite), trips on iteration 3.
        guard = SolveGuard(
            ResilienceParams(check_finite_every=3, divergence_window=0),
            tolerance=1e-9,
        )
        bad = np.array([1.0, np.nan])
        guard.check(2, bad, 0.5)
        with pytest.raises(NumericalError):
            guard.check(3, bad, 0.4)

    def test_divergence_trips_after_window(self):
        guard = SolveGuard(
            ResilienceParams(divergence_window=3), tolerance=1e-9
        )
        x = np.ones(2)
        guard.check(1, x, 1.0)
        guard.check(2, x, 2.0)
        guard.check(3, x, 3.0)
        with pytest.raises(DivergenceError) as exc:
            guard.check(4, x, 4.0)
        assert exc.value.window == 3
        assert trips("divergence") == 1

    def test_divergence_run_resets_on_improvement(self):
        guard = SolveGuard(
            ResilienceParams(divergence_window=2), tolerance=1e-9
        )
        x = np.ones(2)
        guard.check(1, x, 1.0)
        guard.check(2, x, 2.0)  # growth run = 1
        guard.check(3, x, 0.5)  # reset
        guard.check(4, x, 0.6)  # growth run = 1 again — no trip
        assert trips("divergence") == 0

    def test_stagnation_trips_on_plateau(self):
        guard = SolveGuard(
            ResilienceParams(
                divergence_window=0, stagnation_window=3, stagnation_rtol=0.01
            ),
            tolerance=1e-9,
        )
        x = np.ones(2)
        for i in range(1, 4):
            guard.check(i, x, 0.5)
        with pytest.raises(StagnationError):
            guard.check(4, x, 0.4999)
        assert trips("stagnation") == 1

    def test_stagnation_silent_below_tolerance(self):
        guard = SolveGuard(
            ResilienceParams(stagnation_window=2, stagnation_rtol=0.5),
            tolerance=1e-3,
        )
        x = np.ones(2)
        for i in range(1, 10):
            guard.check(i, x, 1e-4)  # flat but already under tolerance

    def test_deadline_trips(self):
        fake_now = [0.0]
        guard = SolveGuard(
            ResilienceParams(deadline_seconds=1.0),
            tolerance=1e-9,
            clock=lambda: fake_now[0],
        )
        x = np.ones(2)
        guard.check(1, x, 0.5)
        fake_now[0] = 2.0
        with pytest.raises(SolveDeadlineError) as exc:
            guard.check(2, x, 0.4)
        assert exc.value.deadline_seconds == 1.0
        assert exc.value.elapsed_seconds == pytest.approx(2.0)
        assert trips("deadline") == 1


class TestEngineIntegration:
    def test_diverging_step_raises_typed_error(self):
        params = RankingParams(
            max_iter=100,
            resilience=ResilienceParams(divergence_window=5),
        )
        with pytest.raises(DivergenceError):
            iterate_to_fixpoint(
                lambda x: 2.0 * x, np.ones(4), params, solver="power"
            )

    def test_nan_step_raises_with_last_iterate(self):
        calls = [0]

        def step(x):
            calls[0] += 1
            if calls[0] == 5:
                out = x.copy()
                out[0] = np.nan
                return out
            return 0.9 * x

        params = RankingParams(max_iter=100, resilience=ResilienceParams())
        with pytest.raises(NumericalError) as exc:
            iterate_to_fixpoint(step, np.ones(4), params, solver="power")
        assert exc.value.last_iterate is not None
        assert np.isfinite(exc.value.last_iterate).all()

    def test_guard_free_solve_unchanged(self):
        params = RankingParams(max_iter=100)
        x, info = iterate_to_fixpoint(
            lambda x: 0.5 * x + 0.1, np.ones(4), params, solver="power"
        )
        assert info.converged

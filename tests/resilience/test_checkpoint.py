"""Tests for :mod:`repro.resilience.checkpoint` (solve + stage resume)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.config import RankingParams, ResilienceParams
from repro.core.pipeline import SpamResilientPipeline
from repro.observability.metrics import get_registry, reset_registry
from repro.ranking.power import power_iteration
from repro.resilience import (
    PipelineCheckpointer,
    SimulatedCrash,
    SolveCheckpointer,
    content_key,
    crash_at_iteration,
)


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_registry()
    yield
    reset_registry()


class TestContentKey:
    def test_deterministic(self):
        a = np.arange(5)
        assert content_key(a, "x", 1.5) == content_key(a, "x", 1.5)

    def test_sensitive_to_values_dtype_and_shape(self):
        a = np.arange(6)
        assert content_key(a) != content_key(a + 1)
        assert content_key(a) != content_key(a.astype(np.float64))
        assert content_key(a) != content_key(a.reshape(2, 3))

    def test_csr_hashes_structure(self, small_source_graph):
        m = small_source_graph.matrix
        key = content_key(m)
        tweaked = m.copy()
        tweaked.data = tweaked.data.copy()
        tweaked.data[0] += 1.0
        assert key != content_key(tweaked)


class TestSolveCheckpointer:
    def test_save_load_roundtrip(self, tmp_path):
        ckpt = SolveCheckpointer(tmp_path, every=5, resume=True)
        x = np.linspace(0, 1, 8)
        ckpt.save("solve", x, 10, 1e-3)
        state = ckpt.load("solve")
        np.testing.assert_array_equal(state.x, x)
        assert state.iteration == 10
        assert state.residual == 1e-3

    def test_load_without_resume_returns_none(self, tmp_path):
        ckpt = SolveCheckpointer(tmp_path, every=5, resume=False)
        ckpt.save("solve", np.ones(3), 5, 0.1)
        assert ckpt.load("solve") is None

    def test_tampered_checkpoint_ignored(self, tmp_path):
        ckpt = SolveCheckpointer(tmp_path, every=5, resume=True)
        ckpt.save("solve", np.ones(3), 5, 0.1)
        path = ckpt.path_for("solve")
        path.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        assert ckpt.load("solve") is None

    def test_maybe_save_respects_interval(self, tmp_path):
        ckpt = SolveCheckpointer(tmp_path, every=10, resume=True)
        assert not ckpt.maybe_save("s", np.ones(2), 7, 0.1)
        assert ckpt.maybe_save("s", np.ones(2), 20, 0.1)

    def test_clear_removes_file(self, tmp_path):
        ckpt = SolveCheckpointer(tmp_path, every=1, resume=True)
        ckpt.save("s", np.ones(2), 1, 0.1)
        ckpt.clear("s")
        assert ckpt.load("s") is None
        ckpt.clear("s")  # idempotent

    def test_atomic_write_leaves_no_tmp_files(self, tmp_path):
        ckpt = SolveCheckpointer(tmp_path, every=1, resume=True)
        for i in range(5):
            ckpt.save("s", np.full(4, float(i)), i, 0.1)
        leftovers = [p for p in tmp_path.iterdir() if p.suffix == ".tmp"]
        assert leftovers == []
        assert ckpt.load("s").iteration == 4


class TestCrashResume:
    def test_crash_then_resume_identical_sigma(
        self, small_source_graph, tmp_path
    ):
        matrix = small_source_graph.matrix
        base = RankingParams(
            tolerance=1e-12,
            max_iter=500,
            resilience=ResilienceParams(checkpoint_every=2),
        )
        reference = power_iteration(matrix, base)
        assert reference.convergence.iterations > 6

        ckpt = SolveCheckpointer(tmp_path, resume=False)
        with pytest.raises(SimulatedCrash):
            power_iteration(
                matrix,
                base.with_(checkpoint=ckpt),
                label="crashy",
                callback=crash_at_iteration(6),
            )
        resumed = power_iteration(
            matrix,
            base.with_(
                checkpoint=SolveCheckpointer(tmp_path, resume=True)
            ),
            label="crashy",
        )
        np.testing.assert_allclose(
            resumed.scores, reference.scores, atol=1e-9
        )
        # The resumed solve did not start over from iteration zero.
        assert (
            resumed.convergence.iterations
            <= reference.convergence.iterations
        )
        resumes = (
            get_registry()
            .counter("repro_checkpoint_resumes_total", labelnames=("kind",))
            .labels(kind="solve")
            .value
        )
        assert resumes == 1


class TestPipelineStageCheckpoints:
    def test_stage_resume_identical_scores(
        self, small_graph, small_assignment, tmp_path
    ):
        seeds = np.array([1, 2, 3])
        with SpamResilientPipeline(checkpoint_dir=tmp_path) as pipe:
            first = pipe.rank(small_graph, small_assignment, spam_seeds=seeds)
        with SpamResilientPipeline(
            checkpoint_dir=tmp_path, resume=True
        ) as pipe:
            second = pipe.rank(small_graph, small_assignment, spam_seeds=seeds)
        np.testing.assert_allclose(
            second.scores.scores, first.scores.scores, atol=1e-12
        )
        rank_span = [c for c in second.trace.children if c.name == "rank"][0]
        assert rank_span.meta.get("resumed") is True
        resumes = (
            get_registry()
            .counter("repro_checkpoint_resumes_total", labelnames=("kind",))
            .labels(kind="stage")
            .value
        )
        assert resumes == 2  # proximity + rank

    def test_changed_inputs_change_key(
        self, small_graph, small_assignment, tmp_path
    ):
        with SpamResilientPipeline(
            checkpoint_dir=tmp_path, resume=True
        ) as pipe:
            pipe.rank(small_graph, small_assignment, spam_seeds=[1, 2])
            second = pipe.rank(
                small_graph, small_assignment, spam_seeds=[1, 2, 3]
            )
        # Different seed set ⇒ different content key ⇒ no stage resume.
        rank_span = [c for c in second.trace.children if c.name == "rank"][0]
        assert "resumed" not in rank_span.meta

    def test_load_stage_ignores_missing(self, tmp_path):
        ckpt = PipelineCheckpointer(tmp_path, resume=True)
        assert ckpt.load_stage("deadbeef", "rank", ("scores",)) is None


class TestContentKeyCanonicalization:
    """Satellite regression: mappings/sets must hash order-independently."""

    @given(
        st.dictionaries(
            st.text(max_size=8),
            st.integers(-1000, 1000),
            min_size=2,
            max_size=6,
        )
    )
    def test_dict_insertion_order_irrelevant(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert content_key(mapping) == content_key(reordered)

    @given(st.sets(st.integers(-1000, 1000), min_size=2, max_size=8))
    def test_set_iteration_order_irrelevant(self, items):
        # Build two sets with different insertion histories.
        ordered = sorted(items)
        forward = set()
        backward = set()
        for item in ordered:
            forward.add(item)
        for item in reversed(ordered):
            backward.add(item)
        assert content_key(forward) == content_key(backward)
        assert content_key(frozenset(items)) == content_key(items)

    @given(
        st.dictionaries(
            st.text(max_size=8), st.integers(-100, 100), min_size=2, max_size=5
        )
    )
    def test_nested_mapping_in_sequence_canonical(self, mapping):
        reordered = dict(reversed(list(mapping.items())))
        assert content_key([mapping, "tail"]) == content_key([reordered, "tail"])

    def test_dict_content_still_matters(self):
        assert content_key({"a": 1}) != content_key({"a": 2})
        assert content_key({"a": 1}) != content_key({"b": 1})

    def test_sequence_order_still_matters(self):
        # Lists/tuples are *ordered* containers; canonicalization must
        # not erase their order.
        assert content_key([1, 2]) != content_key([2, 1])

    def test_container_types_do_not_collide(self):
        assert content_key({1: 2}) != content_key([(1, 2)])
        assert content_key({1, 2}) != content_key([1, 2])

    def test_arrays_inside_containers(self):
        a = np.arange(4)
        assert content_key({"x": a}) == content_key({"x": a.copy()})
        assert content_key({"x": a}) != content_key({"x": a + 1})

"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import InjectedFaultError
from repro.linalg.operator import CsrOperator
from repro.resilience import FaultyOperator, SimulatedCrash, crash_at_iteration


@pytest.fixture()
def operator():
    matrix = sp.random(50, 50, density=0.1, random_state=7, format="csr")
    op = CsrOperator(matrix)
    yield op
    op.close()


class TestFaultyOperator:
    def test_delegates_protocol(self, operator):
        faulty = FaultyOperator(operator)
        assert faulty.n == operator.n
        assert faulty.kernel == operator.kernel
        np.testing.assert_array_equal(
            faulty.dangling_mask, operator.dangling_mask
        )
        x = np.ones(operator.n)
        np.testing.assert_array_equal(
            faulty.rmatvec(x), operator.rmatvec(x)
        )

    def test_corruption_is_deterministic(self, operator):
        x = np.ones(operator.n)
        outs = []
        for _ in range(2):
            faulty = FaultyOperator(
                operator, corrupt_at_call=2, n_corrupt=3, seed=11
            )
            faulty.rmatvec(x)
            outs.append(faulty.rmatvec(x))
        np.testing.assert_array_equal(
            np.isnan(outs[0]), np.isnan(outs[1])
        )
        assert int(np.isnan(outs[0]).sum()) == 3

    def test_faults_are_transient(self, operator):
        faulty = FaultyOperator(operator, corrupt_at_call=1)
        x = np.ones(operator.n)
        assert np.isnan(faulty.rmatvec(x)).any()
        assert not np.isnan(faulty.rmatvec(x)).any()
        assert faulty.faults_fired == 1

    def test_fail_at_call_raises(self, operator):
        faulty = FaultyOperator(operator, fail_at_call=2)
        x = np.ones(operator.n)
        faulty.rmatvec(x)
        with pytest.raises(InjectedFaultError, match="call 2"):
            faulty.rmatvec(x)
        faulty.rmatvec(x)  # transient: call 3 works again

    def test_custom_corrupt_value(self, operator):
        faulty = FaultyOperator(
            operator, corrupt_at_call=1, corrupt_value=np.inf
        )
        out = faulty.rmatvec(np.ones(operator.n))
        assert np.isinf(out).any()

    def test_materialize_unfaulted(self, operator):
        faulty = FaultyOperator(operator, corrupt_at_call=1)
        np.testing.assert_array_equal(
            faulty.materialize().toarray(), operator.materialize().toarray()
        )


class TestCrashAtIteration:
    def test_raises_only_at_k(self):
        callback = crash_at_iteration(3)
        callback(1, 0.5)
        callback(2, 0.4)
        with pytest.raises(SimulatedCrash, match="iteration 3"):
            callback(3, 0.3)

    def test_action_runs_before_raise(self):
        ran = []
        callback = crash_at_iteration(1, action=lambda: ran.append(True))
        with pytest.raises(SimulatedCrash):
            callback(1, 0.5)
        assert ran == [True]


class TestFaultRule:
    def test_validation_names_the_bad_field(self):
        from repro.errors import ConfigError
        from repro.resilience.faults import FaultRule

        with pytest.raises(ConfigError, match="kind"):
            FaultRule(kind="meteor-strike")
        with pytest.raises(ConfigError, match="probability"):
            FaultRule(kind="reset", probability=1.5)
        with pytest.raises(ConfigError, match="latency_seconds"):
            FaultRule(kind="latency", latency_seconds=-0.1)
        with pytest.raises(ConfigError, match="cut_fraction"):
            FaultRule(kind="torn", cut_fraction=0.0)

    def test_config_roundtrip_and_unknown_key_rejected(self):
        from repro.errors import ConfigError
        from repro.resilience.faults import FaultRule

        rule = FaultRule(
            kind="stall", probability=0.25, stall_seconds=0.1
        )
        assert FaultRule.from_config(rule.to_config()) == rule
        with pytest.raises(ConfigError, match="blast_radius"):
            FaultRule.from_config({"kind": "stall", "blast_radius": 9})


class TestFaultPlan:
    def test_same_seed_same_call_sequence_fires_identically(self):
        from repro.resilience.faults import FaultPlan, FaultRule

        def run(seed):
            plan = FaultPlan(seed=seed)
            plan.add("flaky", FaultRule(kind="reset", probability=0.4))
            plan.add("lag", FaultRule(kind="latency", probability=0.6,
                                      latency_seconds=0.01,
                                      jitter_seconds=0.02))
            plan.activate("flaky", "lag")
            trace = []
            for _ in range(200):
                rule = plan.draw("reset")
                trace.append(rule is not None)
                rule = plan.draw("latency")
                trace.append(None if rule is None else plan.delay(rule))
            return trace, dict(plan.fired)

        trace_a, fired_a = run(11)
        trace_b, fired_b = run(11)
        trace_c, _ = run(12)
        assert trace_a == trace_b
        assert fired_a == fired_b
        assert trace_a != trace_c
        assert fired_a["flaky"] > 0 and fired_a["lag"] > 0

    def test_inactive_rules_never_fire(self):
        from repro.resilience.faults import FaultPlan, FaultRule

        plan = FaultPlan(seed=0)
        plan.add("always", FaultRule(kind="reset", probability=1.0))
        assert all(plan.draw("reset") is None for _ in range(20))
        plan.activate("always")
        assert plan.draw("reset") is not None
        plan.deactivate("always")
        assert plan.draw("reset") is None

    def test_activate_unknown_rule_is_an_error(self):
        from repro.errors import ConfigError
        from repro.resilience.faults import FaultPlan

        with pytest.raises(ConfigError, match="unknown fault rule"):
            FaultPlan().activate("nope")

    def test_apply_config_wire_roundtrip(self):
        from repro.errors import ConfigError
        from repro.resilience.faults import FaultPlan

        plan = FaultPlan(seed=5)
        described = plan.apply_config(
            {
                "rules": {"lossy": {"kind": "torn", "probability": 0.5}},
                "activate": ["lossy"],
            }
        )
        assert described["active"] == ["lossy"]
        assert described["rules"]["lossy"]["kind"] == "torn"
        described = plan.apply_config({"reset": True})
        assert described["active"] == []
        assert "lossy" in described["rules"]  # reset clears activation only
        with pytest.raises(ConfigError, match="unknown chaos key"):
            plan.apply_config({"frobnicate": 1})


class _FakeWire:
    """Captures writes like a socket makefile('wb') would."""

    def __init__(self):
        self.chunks = []

    def write(self, data):
        self.chunks.append(bytes(data))

    def flush(self):
        pass

    @property
    def data(self):
        return b"".join(self.chunks)


class TestSocketFaultInjector:
    FRAME = b'{"ok": true, "values": [1.0, 2.0, 3.0]}\n'

    def _injector(self, kind, **kwargs):
        from repro.resilience.faults import (
            FaultPlan,
            FaultRule,
            SocketFaultInjector,
        )

        plan = FaultPlan(seed=0)
        plan.add("f", FaultRule(kind=kind, **kwargs))
        plan.activate("f")
        sleeps = []
        injector = SocketFaultInjector(plan, sleep=sleeps.append)
        return injector, sleeps

    def test_clean_path_writes_whole_frame(self):
        from repro.resilience.faults import FaultPlan, SocketFaultInjector

        wire = _FakeWire()
        injector = SocketFaultInjector(FaultPlan(), sleep=lambda s: None)
        assert injector.send(wire, self.FRAME) is True
        assert wire.data == self.FRAME

    def test_latency_sleeps_then_delivers_intact(self):
        injector, sleeps = self._injector(
            "latency", latency_seconds=0.02, jitter_seconds=0.01
        )
        wire = _FakeWire()
        assert injector.send(wire, self.FRAME) is True
        assert wire.data == self.FRAME
        assert len(sleeps) == 1 and 0.02 <= sleeps[0] <= 0.03

    def test_stall_splits_frame_but_delivers_everything(self):
        injector, sleeps = self._injector("stall", stall_seconds=0.25)
        wire = _FakeWire()
        assert injector.send(wire, self.FRAME) is True
        assert wire.data == self.FRAME
        assert len(wire.chunks) == 2, "the frame must go out in two writes"
        assert sleeps == [0.25]

    def test_torn_frame_truncates_and_drops_newline(self):
        injector, _ = self._injector("torn", cut_fraction=0.5)
        wire = _FakeWire()
        assert injector.send(wire, self.FRAME) is False
        assert 0 < len(wire.data) < len(self.FRAME)
        assert not wire.data.endswith(b"\n")
        assert self.FRAME.startswith(wire.data)

    def test_reset_cuts_frame_and_reports_dropped_connection(self):
        injector, _ = self._injector("reset", cut_fraction=0.25)
        wire = _FakeWire()
        assert injector.send(wire, self.FRAME, connection=None) is False
        assert len(wire.data) < len(self.FRAME)

"""Tests for the deterministic fault-injection harness."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.errors import InjectedFaultError
from repro.linalg.operator import CsrOperator
from repro.resilience import FaultyOperator, SimulatedCrash, crash_at_iteration


@pytest.fixture()
def operator():
    matrix = sp.random(50, 50, density=0.1, random_state=7, format="csr")
    op = CsrOperator(matrix)
    yield op
    op.close()


class TestFaultyOperator:
    def test_delegates_protocol(self, operator):
        faulty = FaultyOperator(operator)
        assert faulty.n == operator.n
        assert faulty.kernel == operator.kernel
        np.testing.assert_array_equal(
            faulty.dangling_mask, operator.dangling_mask
        )
        x = np.ones(operator.n)
        np.testing.assert_array_equal(
            faulty.rmatvec(x), operator.rmatvec(x)
        )

    def test_corruption_is_deterministic(self, operator):
        x = np.ones(operator.n)
        outs = []
        for _ in range(2):
            faulty = FaultyOperator(
                operator, corrupt_at_call=2, n_corrupt=3, seed=11
            )
            faulty.rmatvec(x)
            outs.append(faulty.rmatvec(x))
        np.testing.assert_array_equal(
            np.isnan(outs[0]), np.isnan(outs[1])
        )
        assert int(np.isnan(outs[0]).sum()) == 3

    def test_faults_are_transient(self, operator):
        faulty = FaultyOperator(operator, corrupt_at_call=1)
        x = np.ones(operator.n)
        assert np.isnan(faulty.rmatvec(x)).any()
        assert not np.isnan(faulty.rmatvec(x)).any()
        assert faulty.faults_fired == 1

    def test_fail_at_call_raises(self, operator):
        faulty = FaultyOperator(operator, fail_at_call=2)
        x = np.ones(operator.n)
        faulty.rmatvec(x)
        with pytest.raises(InjectedFaultError, match="call 2"):
            faulty.rmatvec(x)
        faulty.rmatvec(x)  # transient: call 3 works again

    def test_custom_corrupt_value(self, operator):
        faulty = FaultyOperator(
            operator, corrupt_at_call=1, corrupt_value=np.inf
        )
        out = faulty.rmatvec(np.ones(operator.n))
        assert np.isinf(out).any()

    def test_materialize_unfaulted(self, operator):
        faulty = FaultyOperator(operator, corrupt_at_call=1)
        np.testing.assert_array_equal(
            faulty.materialize().toarray(), operator.materialize().toarray()
        )


class TestCrashAtIteration:
    def test_raises_only_at_k(self):
        callback = crash_at_iteration(3)
        callback(1, 0.5)
        callback(2, 0.4)
        with pytest.raises(SimulatedCrash, match="iteration 3"):
            callback(3, 0.3)

    def test_action_runs_before_raise(self):
        ran = []
        callback = crash_at_iteration(1, action=lambda: ran.append(True))
        with pytest.raises(SimulatedCrash):
            callback(1, 0.5)
        assert ran == [True]

"""Metamorphic relations: permutation, weight scaling, seed monotonicity."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.audit.metamorphic import (
    _random_weights,
    check_permutation_relation,
    check_seed_monotonicity_relation,
    check_weight_scaling_relation,
    run_metamorphic_suite,
)
from repro.config import SpamProximityParams
from repro.sources.sourcegraph import SourceGraph
from repro.throttle.spam_proximity import spam_proximity


def _weights(seed: int, n: int = 14) -> sp.csr_matrix:
    return _random_weights(np.random.default_rng(seed), n)


def _kappa(seed: int, n: int = 14) -> np.ndarray:
    return np.random.default_rng(seed + 99).uniform(0.0, 0.9, size=n)


class TestPermutation:
    @pytest.mark.parametrize("full_throttle", ["self", "dangling"])
    def test_relabeling_is_equivariant(self, full_throttle):
        rng = np.random.default_rng(0)
        weights = _weights(0)
        violations = check_permutation_relation(
            weights,
            _kappa(0),
            perm=rng.permutation(weights.shape[0]),
            full_throttle=full_throttle,
        )
        assert violations == []

    def test_spam_proximity_is_equivariant(self):
        # The relation holds for the proximity walk too: permute the
        # graph and the seed ids, scores must permute along.
        weights = _weights(1)
        graph = SourceGraph.from_weight_matrix(weights)
        n = graph.n_sources
        rng = np.random.default_rng(1)
        perm = rng.permutation(n)
        seeds = [0, 3, 5]
        params = SpamProximityParams(tolerance=1e-12)
        base = spam_proximity(graph, seeds, params).scores
        inv = np.empty(n, dtype=np.int64)
        inv[perm] = np.arange(n)  # new id of old node i is inv[i]
        permuted_graph = SourceGraph.from_weight_matrix(
            weights[perm][:, perm].tocsr()
        )
        permuted = spam_proximity(
            permuted_graph, [int(inv[s]) for s in seeds], params
        ).scores
        np.testing.assert_allclose(permuted, base[perm], atol=1e-8)


class TestWeightScaling:
    @pytest.mark.parametrize("full_throttle", ["self", "dangling"])
    def test_row_scaling_is_invisible(self, full_throttle):
        weights = _weights(2)
        scale = np.random.default_rng(2).uniform(0.05, 20.0, size=weights.shape[0])
        violations = check_weight_scaling_relation(
            weights, _kappa(2), row_scale=scale, full_throttle=full_throttle
        )
        assert violations == []

    def test_rejects_nonpositive_scale(self):
        weights = _weights(3)
        bad = np.ones(weights.shape[0])
        bad[0] = 0.0
        with pytest.raises(ValueError):
            check_weight_scaling_relation(weights, _kappa(3), row_scale=bad)

    def test_detects_weight_sensitive_ranker(self):
        # Sanity check that the relation has teeth: feed it a "ranker"
        # pipeline whose normalization is broken by pre-normalizing with
        # the wrong matrix — simulated by comparing two genuinely
        # different graphs through the public checker's own math.
        weights = _weights(4)
        tampered = weights.copy().tolil()
        tampered[0, tampered.rows[0][0]] += 50.0  # changes row profile
        from repro.audit.metamorphic import RELATION_ATOL
        from repro.ranking.srsourcerank import spam_resilient_sourcerank
        from repro.config import RankingParams

        params = RankingParams(tolerance=1e-12)
        a = spam_resilient_sourcerank(
            SourceGraph.from_weight_matrix(weights), _kappa(4), params
        ).scores
        b = spam_resilient_sourcerank(
            SourceGraph.from_weight_matrix(tampered.tocsr()), _kappa(4), params
        ).scores
        assert float(np.max(np.abs(a - b))) > RELATION_ATOL


class TestSeedMonotonicity:
    @pytest.mark.parametrize("seed", range(4))
    def test_adding_a_seed_never_demotes_it(self, seed):
        weights = _weights(seed)
        graph = SourceGraph.from_weight_matrix(weights)
        ids = np.random.default_rng(seed).permutation(graph.n_sources)
        violations = check_seed_monotonicity_relation(
            graph, ids[:3].tolist(), int(ids[3])
        )
        assert violations == []

    def test_rejects_duplicate_seed(self):
        graph = SourceGraph.from_weight_matrix(_weights(5))
        with pytest.raises(ValueError):
            check_seed_monotonicity_relation(graph, [1, 2], 2)


class TestSuiteRunner:
    def test_suite_passes_on_the_real_stack(self):
        report = run_metamorphic_suite(seed=0, n=16, n_graphs=2)
        assert report.passed, report.to_dict()
        assert report.n_relations == 6

    def test_report_dict_shape(self):
        report = run_metamorphic_suite(seed=1, n=12, n_graphs=1)
        data = report.to_dict()
        assert data["passed"] is True
        assert data["n_relations"] == 3
        assert data["violations"] == []
        assert "PASS" in report.summary()

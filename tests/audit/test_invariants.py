"""Unit tests for the runtime invariant checks and their reporting."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.audit.invariants import (
    InvariantAuditor,
    IterateMassAuditor,
    check_iterate_mass,
    check_kappa_vector,
    check_row_stochastic,
    check_score_distribution,
    check_throttled_matrix,
    check_throttled_operator,
    record_violations,
)
from repro.config import AuditParams, RankingParams
from repro.errors import AuditError, ConfigError
from repro.linalg.operator import CsrOperator, ThrottledOperator
from repro.observability.metrics import get_registry
from repro.ranking.power import power_iteration
from repro.throttle.transform import throttle_transform


def random_stochastic(seed: int, *, n_dangling: int = 0) -> sp.csr_matrix:
    gen = np.random.default_rng(seed)
    n = int(gen.integers(4, 20))
    dense = (gen.random((n, n)) < 0.4) * gen.random((n, n))
    np.fill_diagonal(dense, gen.random(n) * 0.5)
    dense[dense.sum(axis=1) == 0, 0] = 1.0
    dense /= dense.sum(axis=1, keepdims=True)
    for i in range(min(n_dangling, n - 1)):
        dense[n - 1 - i, :] = 0.0
    return sp.csr_matrix(dense)


def random_kappa(seed: int, matrix: sp.csr_matrix) -> np.ndarray:
    gen = np.random.default_rng(seed + 17)
    n = matrix.shape[0]
    kappa = gen.uniform(0.0, 1.0, size=n)
    off = np.asarray(matrix.sum(axis=1)).ravel() - matrix.diagonal()
    kappa[off <= 0] = 0.0
    return kappa


# ----------------------------------------------------------------------
# row-stochasticity
# ----------------------------------------------------------------------
class TestRowStochastic:
    def test_clean_matrix_passes(self):
        assert check_row_stochastic(random_stochastic(0)) == []

    def test_dangling_rows_allowed_by_default(self):
        matrix = random_stochastic(1, n_dangling=2)
        assert check_row_stochastic(matrix) == []
        violations = check_row_stochastic(matrix, allow_zero_rows=False)
        assert len(violations) == 1
        assert violations[0].invariant == "row_stochastic"

    def test_scaled_row_flagged(self):
        matrix = random_stochastic(2).tolil()
        matrix[0] = matrix[0] * 1.5
        violations = check_row_stochastic(matrix.tocsr())
        assert len(violations) == 1
        assert "row 0" in violations[0].message
        assert violations[0].value == pytest.approx(0.5, rel=1e-6)

    def test_negative_entry_flagged(self):
        matrix = random_stochastic(3).toarray()
        matrix[1, 0] -= 0.2
        matrix[1, 1] += 0.2  # row still sums to 1 — only negativity trips
        violations = check_row_stochastic(sp.csr_matrix(matrix))
        assert [v.invariant for v in violations] == ["row_stochastic"]
        assert "negative" in violations[0].message

    def test_nonfinite_flagged(self):
        matrix = random_stochastic(4).toarray()
        matrix[0, 0] = np.nan
        violations = check_row_stochastic(sp.csr_matrix(matrix))
        assert "non-finite" in violations[0].message


# ----------------------------------------------------------------------
# throttle transform invariants
# ----------------------------------------------------------------------
class TestThrottled:
    @pytest.mark.parametrize("full_throttle", ["self", "dangling"])
    @pytest.mark.parametrize("seed", range(5))
    def test_real_transform_passes(self, seed, full_throttle):
        matrix = random_stochastic(seed)
        kappa = random_kappa(seed, matrix)
        throttled = throttle_transform(matrix, kappa, full_throttle=full_throttle)
        assert (
            check_throttled_matrix(
                matrix, kappa, throttled, full_throttle=full_throttle
            )
            == []
        )

    @pytest.mark.parametrize("full_throttle", ["self", "dangling"])
    def test_lazy_operator_passes(self, full_throttle):
        matrix = random_stochastic(7)
        kappa = random_kappa(7, matrix)
        op = ThrottledOperator(
            CsrOperator(matrix), kappa, full_throttle=full_throttle
        )
        assert check_throttled_operator(op) == []

    def test_tampered_diagonal_flagged(self):
        matrix = random_stochastic(8)
        kappa = np.full(matrix.shape[0], 0.6)
        throttled = throttle_transform(matrix, kappa).tolil()
        throttled[0, 0] = 0.1  # diag must be κ_0 = 0.6 on a boosted row
        violations = check_throttled_matrix(matrix, kappa, throttled.tocsr())
        invariants = {v.invariant for v in violations}
        assert "throttle_diagonal" in invariants
        assert "throttle_row_mass" in invariants

    def test_untouched_row_mutation_flagged(self):
        # Rows with diag >= κ must be byte-identical to the base.
        matrix = random_stochastic(9)
        kappa = np.zeros(matrix.shape[0])
        tampered = matrix.copy().tolil()
        tampered[1] = tampered[1] * 0.9
        violations = check_throttled_matrix(matrix, kappa, tampered.tocsr())
        assert any(v.invariant == "throttle_row_mass" for v in violations)


# ----------------------------------------------------------------------
# score distribution / kappa / iterate mass
# ----------------------------------------------------------------------
class TestScoreAndKappa:
    def test_distribution_passes(self):
        x = np.random.default_rng(0).random(10)
        assert check_score_distribution(x / x.sum()) == []

    def test_negative_and_unnormalized_flagged(self):
        x = np.array([0.5, 0.7, -0.2])
        invariants = {v.invariant for v in check_score_distribution(x)}
        assert invariants == {"score_nonnegative"}
        invariants = {v.invariant for v in check_score_distribution(x * 2)}
        assert "score_mass" in invariants

    def test_nan_short_circuits(self):
        violations = check_score_distribution(np.array([np.nan, 1.0]))
        assert [v.invariant for v in violations] == ["score_finite"]

    def test_kappa_domain_and_size(self):
        assert check_kappa_vector(np.array([0.0, 0.5, 1.0]), n=3) == []
        assert [
            v.invariant for v in check_kappa_vector(np.array([1.2]), n=1)
        ] == ["kappa_domain"]
        assert [
            v.invariant for v in check_kappa_vector(np.array([0.5]), n=2)
        ] == ["kappa_size"]

    def test_iterate_mass_strict_and_leaky(self):
        uniform = np.full(4, 0.25)
        assert check_iterate_mass(uniform, iteration=1) == []
        leaked = uniform * 0.8
        assert check_iterate_mass(leaked, iteration=1, leaky=True) == []
        assert len(check_iterate_mass(leaked, iteration=1)) == 1
        # Mass above 1 is a bug under both readings.
        grown = uniform * 1.5
        assert len(check_iterate_mass(grown, iteration=1, leaky=True)) == 1


# ----------------------------------------------------------------------
# reporting: metric + strict raise
# ----------------------------------------------------------------------
class TestRecordViolations:
    def _violation_count(self, invariant: str) -> float:
        counter = get_registry().counter(
            "repro_audit_violations_total",
            "Correctness-audit invariant violations",
            labelnames=("invariant",),
        )
        return sum(
            c.value
            for c in counter.children()
            if c.label_values == {"invariant": invariant}
        )

    def test_strict_raises_with_violations_attached(self):
        violations = check_score_distribution(np.array([np.inf, 1.0]))
        before = self._violation_count("score_finite")
        with pytest.raises(AuditError) as excinfo:
            record_violations(violations, strict=True)
        assert excinfo.value.violations == tuple(violations)
        assert "score_finite" in str(excinfo.value)
        assert self._violation_count("score_finite") == before + 1

    def test_lenient_counts_without_raising(self):
        violations = check_score_distribution(np.array([-1.0, 2.0]))
        before = self._violation_count("score_nonnegative")
        returned = record_violations(violations, strict=False)
        assert returned == tuple(violations)
        assert self._violation_count("score_nonnegative") == before + 1

    def test_empty_is_noop(self):
        assert record_violations([], strict=True) == ()


# ----------------------------------------------------------------------
# AuditParams + auditor façade
# ----------------------------------------------------------------------
class TestAuditorFacade:
    def test_disabled_auditor_is_noop(self):
        auditor = InvariantAuditor(None)
        assert not auditor.enabled
        bad = sp.csr_matrix(np.array([[2.0, 0.0], [0.0, 2.0]]))
        assert auditor.audit_transition(bad) == ()
        assert auditor.audit_kappa(np.array([5.0])) == ()

    def test_strict_auditor_raises_on_bad_transition(self):
        auditor = InvariantAuditor(AuditParams())
        bad = sp.csr_matrix(np.array([[2.0, 0.0], [0.0, 2.0]]))
        with pytest.raises(AuditError):
            auditor.audit_transition(bad)

    def test_lenient_auditor_returns_violations(self):
        auditor = InvariantAuditor(AuditParams(strict=False))
        bad = sp.csr_matrix(np.array([[2.0, 0.0], [0.0, 2.0]]))
        violations = auditor.audit_transition(bad)
        assert len(violations) == 1

    def test_check_families_gate(self):
        params = AuditParams(check_transition=False)
        auditor = InvariantAuditor(params)
        bad = sp.csr_matrix(np.array([[2.0]]))
        assert auditor.audit_transition(bad) == ()
        scores = AuditParams(check_scores=False)
        # A fake result-like object suffices: the gate fires first.
        assert InvariantAuditor(scores).audit_result(None) == ()

    def test_audit_params_validation(self):
        with pytest.raises(ConfigError):
            AuditParams(atol=0.0)
        with pytest.raises(ConfigError):
            AuditParams(check_every=-1)
        with pytest.raises(ConfigError):
            RankingParams(audit="yes")


# ----------------------------------------------------------------------
# iterate-engine hook (per-iteration mass conservation)
# ----------------------------------------------------------------------
class TestIterateHook:
    def test_power_solve_clean_under_audit(self):
        matrix = random_stochastic(11)
        params = RankingParams(audit=AuditParams())
        result = power_iteration(matrix, params)
        assert result.convergence.converged

    def test_power_solve_dangling_clean_under_audit(self):
        matrix = random_stochastic(12, n_dangling=2)
        params = RankingParams(audit=AuditParams())
        result = power_iteration(matrix, params)
        assert result.convergence.converged

    def test_superstochastic_matrix_trips_mass_audit(self):
        # Rows summing to 1.3 grow the iterate mass past 1 — exactly the
        # class of bug the per-iteration check exists to catch.
        matrix = random_stochastic(13)
        matrix = sp.csr_matrix(matrix * 1.3)
        params = RankingParams(audit=AuditParams(), strict=False, max_iter=50)
        with pytest.raises(AuditError):
            power_iteration(matrix, params)

    def test_check_every_zero_disables_hook(self):
        matrix = sp.csr_matrix(random_stochastic(13) * 1.3)
        params = RankingParams(
            audit=AuditParams(check_every=0), strict=False, max_iter=20
        )
        power_iteration(matrix, params)  # no raise

    def test_linear_solvers_skip_mass_check(self):
        # Jacobi iterates are not distributions; the audit must not
        # misfire on them.
        matrix = random_stochastic(14)
        params = RankingParams(audit=AuditParams(), solver="jacobi")
        from repro.linalg.registry import solver_registry

        result = solver_registry.solve(matrix, params, solver="jacobi")
        assert result.convergence.converged

    def test_mass_auditor_warns_once_in_lenient_mode(self):
        auditor = IterateMassAuditor(
            AuditParams(strict=False), subject="t", leaky=False
        )
        auditor.check(1, np.array([0.5, 0.1]))
        assert auditor._warned
        auditor.check(2, np.array([0.5, 0.1]))  # counted, not re-logged


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000), full=st.sampled_from(["self", "dangling"]))
def test_lazy_and_materialized_throttle_agree_with_audit(seed, full):
    """Property: both throttle paths satisfy the invariants on random input."""
    matrix = random_stochastic(seed)
    kappa = random_kappa(seed, matrix)
    throttled = throttle_transform(matrix, kappa, full_throttle=full)
    assert check_throttled_matrix(matrix, kappa, throttled, full_throttle=full) == []
    op = ThrottledOperator(CsrOperator(matrix), kappa, full_throttle=full)
    assert check_throttled_operator(op) == []

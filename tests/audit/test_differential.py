"""The differential oracle: agreement on the real stack, detection of bugs."""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.audit.differential import (
    AGREEMENT_ATOL,
    DifferentialReport,
    generate_case_suite,
    run_differential_oracle,
)
from repro.errors import AuditError
from repro.linalg.registry import BUILTIN_SOLVERS, solver_registry
from repro.ranking.base import RankingResult


class TestCaseSuite:
    def test_suite_is_deterministic(self):
        a = generate_case_suite(5)
        b = generate_case_suite(5)
        assert [c.name for c in a] == [c.name for c in b]
        for ca, cb in zip(a, b):
            assert (ca.matrix != cb.matrix).nnz == 0
            np.testing.assert_array_equal(ca.kappa, cb.kappa)

    def test_suite_covers_required_structures(self):
        cases = {c.name: c for c in generate_case_suite(0)}
        dangle = cases["dangling-rows"]
        sums = np.asarray(dangle.matrix.sum(axis=1)).ravel()
        assert (sums == 0).any(), "dangling case must contain zero rows"
        assert (dangle.kappa[sums == 0] == 0).all()
        ext = cases["kappa-extremes-self"]
        assert set(np.unique(ext.kappa)) <= {0.0, 1.0}
        assert (ext.kappa == 1.0).any() and (ext.kappa == 0.0).any()
        assert cases["kappa-extremes-dangling"].full_throttle == "dangling"
        assert (cases["no-throttle"].kappa == 0).all()

    def test_rows_are_stochastic(self):
        for case in generate_case_suite(1):
            sums = np.asarray(case.matrix.sum(axis=1)).ravel()
            nonzero = sums != 0
            np.testing.assert_allclose(sums[nonzero], 1.0, atol=1e-12)


class TestOracle:
    def test_all_registered_combinations_agree(self):
        """The ISSUE acceptance bar: every solver x kernel x operand path
        agrees to 1e-9 on the full seeded suite."""
        report = run_differential_oracle(seed=0)
        assert report.passed, report.to_json()
        assert report.disagreements == []
        assert report.invariant_violations == []
        # power runs 3 kernels x {lazy, materialized}, each linear solver
        # 1 x 2, plus one blocked (out-of-core) combo per solver.
        per_case = 3 * 2 + (len(BUILTIN_SOLVERS) - 1) * 2 + len(BUILTIN_SOLVERS)
        assert report.n_combos == per_case * len(report.cases)
        for case in report.cases:
            assert case["max_pairwise_diff"] <= AGREEMENT_ATOL
            assert all(c["converged"] for c in case["combos"])

    def test_report_json_roundtrip(self, tmp_path):
        report = run_differential_oracle(
            seed=1, solvers=("power",), cases=generate_case_suite(1)[:1]
        )
        path = report.write(tmp_path / "sub" / "report.json")
        loaded = json.loads(path.read_text())
        assert loaded["passed"] is True
        assert loaded["seed"] == 1
        # 3 kernels x {lazy, materialized} + 1 blocked combo for power.
        assert loaded["cases"][0]["n_combos"] == 7

    def test_oracle_catches_a_broken_solver(self):
        """A solver with a perturbed score vector must be flagged against
        every other path (and strict mode must raise)."""

        def broken(operand, params, *, label="", **kwargs):
            result = solver_registry.get("power")(
                operand, params, label=label, **kwargs
            )
            scores = result.scores.copy()
            scores[0] += 1e-6  # a bug 1000x over tolerance
            return RankingResult(scores, result.convergence, label=label)

        solver_registry.register("broken-for-test", broken)
        try:
            cases = generate_case_suite(2)[:1]
            report = run_differential_oracle(
                cases=cases, solvers=("power", "broken-for-test")
            )
            assert not report.passed
            assert report.disagreements
            worst = max(d.max_abs_diff for d in report.disagreements)
            assert worst > AGREEMENT_ATOL
            assert any(
                "broken-for-test" in (d.combo_a + d.combo_b)
                for d in report.disagreements
            )
            with pytest.raises(AuditError):
                run_differential_oracle(
                    cases=cases,
                    solvers=("power", "broken-for-test"),
                    strict=True,
                )
        finally:
            del solver_registry._solvers["broken-for-test"]

    def test_summary_mentions_status(self):
        report = DifferentialReport(seed=0, atol=1e-9, tolerance=1e-12)
        assert "PASS" in report.summary()

"""Per-block invariant checks over the sharded store (out-of-core audit)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.audit import (
    check_row_stochastic_blocks,
    check_throttled_operator_blocks,
)
from repro.errors import GraphError
from repro.linalg import BlockedOperator, CsrOperator, ThrottledOperator
from repro.webgraph.store import ShardedGraphStore


def _stochastic(n: int, density: float, seed: int) -> sp.csr_matrix:
    m = sp.random(n, n, density=density, random_state=seed, format="csr")
    sums = np.asarray(m.sum(axis=1)).ravel()
    scale = np.where(sums > 0, 1.0 / np.where(sums > 0, sums, 1.0), 0.0)
    return (sp.diags(scale) @ m).tocsr()


@pytest.fixture(scope="module")
def matrix() -> sp.csr_matrix:
    return _stochastic(90, 0.05, seed=17)


@pytest.fixture()
def store(matrix, tmp_path) -> ShardedGraphStore:
    return ShardedGraphStore.from_matrix(matrix, tmp_path / "store", block_size=25)


class TestRowStochasticBlocks:
    def test_clean_store_passes(self, store):
        assert check_row_stochastic_blocks(store) == []

    def test_blocked_operator_accepted(self, store):
        with BlockedOperator(store) as op:
            assert check_row_stochastic_blocks(op) == []

    def test_scaled_row_flagged_with_block_id(self, matrix, tmp_path):
        sums = np.asarray(matrix.sum(axis=1)).ravel()
        # Pick a non-dangling row inside block 1 (rows 25–49 at block_size=25).
        row = 25 + int(np.flatnonzero(sums[25:50] > 0)[0])
        bad = matrix.copy().tolil()
        bad[row] = (bad[row].toarray() * 3.0).ravel().tolist()
        bad_store = ShardedGraphStore.from_matrix(
            bad.tocsr(), tmp_path / "bad", block_size=25
        )
        violations = check_row_stochastic_blocks(bad_store)
        assert violations
        assert any("[block 1]" in v.subject for v in violations)


class TestThrottledOperatorBlocks:
    def test_clean_operator_passes(self, store):
        n = store.n_sources
        kappa = np.zeros(n)
        kappa[::5] = 0.6
        kappa[1::13] = 1.0
        # Throttling needs off-diagonal mass to rescale: leave dangling
        # rows unthrottled.
        kappa[store.row_sums() <= 1e-12] = 0.0
        for mode in ("self", "dangling"):
            with BlockedOperator(store, cache_blocks=2) as base:
                op = ThrottledOperator(base, kappa, full_throttle=mode)
                try:
                    assert check_throttled_operator_blocks(op) == []
                finally:
                    op.close()

    def test_rejects_in_memory_base(self, matrix):
        base = CsrOperator(matrix)
        op = ThrottledOperator(base, np.zeros(matrix.shape[0]))
        try:
            with pytest.raises(GraphError, match="blocked base"):
                check_throttled_operator_blocks(op)
        finally:
            op.close()
            base.close()

"""SLO machinery at the front door: deadlines, hedged reads, retry
budgets, load shedding, slow-replica quarantine, and reinstatement
backoff — driven against in-process stub replicas so every latency and
failure is scripted, no real fleet processes involved."""

from __future__ import annotations

import json
import socket
import socketserver
import threading
import time

import pytest

from repro.config import FleetParams, SLOParams
from repro.errors import DeadlineExceededError, FleetError
from repro.serving import FleetClient, FrontDoor


class _StubHandler(socketserver.StreamRequestHandler):
    def handle(self):
        stub = self.server.stub
        while True:
            line = self.rfile.readline()
            if not line:
                return
            if stub.refuse:
                return  # close without answering: a transport failure
            message = json.loads(line)
            delay = stub.delay
            if delay:
                time.sleep(delay)
            response = stub.respond(message)
            self.wfile.write(json.dumps(response).encode("utf-8") + b"\n")
            self.wfile.flush()


class _StubServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class StubReplica:
    """A scriptable replica: canned responses, mutable delay/refusal."""

    def __init__(self, replica_id: int = 0) -> None:
        self.replica_id = replica_id
        self.delay = 0.0
        self.refuse = False
        self.override: dict | None = None
        self.requests = 0
        self._server = _StubServer(("127.0.0.1", 0), _StubHandler)
        self._server.stub = self
        self._thread = threading.Thread(
            target=self._server.serve_forever, daemon=True
        )
        self._thread.start()

    @property
    def address(self) -> tuple[str, int]:
        return self._server.server_address[:2]

    def respond(self, message: dict) -> dict:
        self.requests += 1
        if self.override is not None:
            return dict(self.override)
        op = message.get("op")
        meta = {
            "version": 1,
            "kind": "sr",
            "age": 0.0,
            "replica": self.replica_id,
        }
        if op == "health":
            return {
                "ok": True,
                "ready": True,
                "replica": self.replica_id,
                "snapshot_version": 1,
            }
        if op in ("score", "percentile"):
            ids = message.get("ids", [message.get("id")])
            return {"ok": True, "values": [float(i) for i in ids], **meta}
        if op == "top_k":
            k = int(message.get("k", 1))
            return {"ok": True, "ids": list(range(k)), **meta}
        return {"ok": False, "error": "ServingError", "detail": "stub"}

    def stop(self) -> None:
        self._server.shutdown()
        self._server.server_close()


FAST = FleetParams(
    replicas=2,
    connect_timeout_seconds=2.0,
    request_timeout_seconds=2.0,
    probe_interval_seconds=0.02,
    batch_linger_seconds=0.001,
    max_retries=3,
)


@pytest.fixture()
def stubs():
    pair = (StubReplica(0), StubReplica(1))
    yield pair
    for stub in pair:
        stub.stop()


def make_door(stubs, slo: SLOParams, params: FleetParams = FAST) -> FrontDoor:
    return FrontDoor(
        {stub.replica_id: stub.address for stub in stubs},
        params,
        slo=slo,
    ).start()


def wait_until(predicate, timeout=10.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return True
        time.sleep(interval)
    return predicate()


class TestDeadlines:
    def test_deadline_burn_returns_typed_error_without_eviction(self, stubs):
        for stub in stubs:
            stub.delay = 0.5
        slo = SLOParams(
            deadline_seconds=10.0,
            score_deadline_seconds=0.15,
            hedge_threshold_seconds=0.05,
        )
        door = make_door(stubs, slo)
        try:
            with FleetClient(door.address, timeout=10.0) as client:
                started = time.monotonic()
                response = client.score([1, 2, 3])
                elapsed = time.monotonic() - started
            assert response["ok"] is False
            assert response["error"] == "DeadlineExceededError"
            assert response["op"] == "score"
            assert response["deadline_seconds"] == pytest.approx(0.15)
            assert response["retry_after"] > 0
            # The read came back roughly at the budget, nowhere near the
            # 0.5s the replicas would have taken.
            assert elapsed < 0.45
            stats = door.stats()
            assert stats["slo"]["deadline_misses"] == {"score": 1}
            assert stats["reads"]["deadline_missed"] == 3
            # Slow-but-within-transport-timeout legs are cancelled
            # without blame: nobody gets evicted for a tight deadline.
            for entry in stats["replicas"].values():
                assert entry["state"] == "active"
                assert entry["evictions"] == 0
        finally:
            door.stop()

    def test_per_op_override_leaves_other_ops_alone(self, stubs):
        stubs[0].delay = stubs[1].delay = 0.2
        slo = SLOParams(
            deadline_seconds=10.0,
            top_k_deadline_seconds=0.05,
            hedge_threshold_seconds=5.0,
        )
        door = make_door(stubs, slo)
        try:
            with FleetClient(door.address, timeout=10.0) as client:
                assert client.top_k(3)["error"] == "DeadlineExceededError"
                assert client.score([1])["ok"] is True
        finally:
            door.stop()


class TestHedging:
    def test_hedge_fires_on_slow_primary_and_backup_wins(self, stubs):
        stubs[0].delay = 0.4  # primary: slow but alive
        slo = SLOParams(
            deadline_seconds=10.0,
            hedge_threshold_seconds=0.03,
            eject_latency_seconds=10.0,  # keep quarantine out of the way
        )
        door = make_door(stubs, slo)
        try:
            with FleetClient(door.address, timeout=10.0) as client:
                started = time.monotonic()
                response = client.score([4, 5])
                elapsed = time.monotonic() - started
            assert response["ok"] is True
            assert response["replica"] == 1
            assert response["values"] == [4.0, 5.0]
            assert elapsed < 0.35  # won by the hedge, not the 0.4s primary
            stats = door.stats()
            assert stats["slo"]["hedges"]["fired"] == 1
            assert stats["slo"]["hedges"]["wins"] == 1
            # The cancelled primary leg must not desync its connection:
            # the next read routed there still pairs request/response.
            stubs[0].delay = 0.0
            with FleetClient(door.address, timeout=10.0) as client:
                for i in range(4):
                    check = client.score([10 + i])
                    assert check["ok"] and check["values"] == [10.0 + i]
        finally:
            door.stop()

    def test_fast_fleet_never_hedges(self, stubs):
        slo = SLOParams(hedge_threshold_seconds=0.5)
        door = make_door(stubs, slo)
        try:
            with FleetClient(door.address, timeout=10.0) as client:
                for i in range(8):
                    assert client.score([i])["ok"]
            assert door.stats()["slo"]["hedges"]["fired"] == 0
        finally:
            door.stop()


class TestRetryBudget:
    def test_empty_bucket_fails_fast_instead_of_retry_storm(self, stubs):
        # Both replicas report ServingError forever: without a budget the
        # door would ping-pong max_retries times per read.
        for stub in stubs:
            stub.override = {
                "ok": False,
                "error": "ServingError",
                "detail": "no snapshot adopted yet",
            }
        slo = SLOParams(
            deadline_seconds=10.0,
            retry_budget_per_second=0.001,
            retry_budget_burst=1.0,
            hedge_threshold_seconds=5.0,
        )
        door = make_door(stubs, slo)
        try:
            with FleetClient(door.address, timeout=10.0) as client:
                first = client.score([1])
                second = client.score([2])
            assert first["ok"] is False and second["ok"] is False
            # First read: attempt 0 free, attempt 1 takes the only token.
            # Second read: attempt 0 free, attempt 1 refused — budget dry.
            assert "retry budget exhausted" in second["detail"]
            stats = door.stats()
            assert stats["slo"]["retry_budget"]["tokens"] < 1.0
        finally:
            door.stop()


class TestLoadShedding:
    def test_saturated_door_sheds_with_retry_after_then_recovers(self, stubs):
        stubs[0].delay = stubs[1].delay = 0.3
        slo = SLOParams(
            deadline_seconds=10.0,
            max_inflight=1,
            shed_retry_after_seconds=0.05,
            hedge_threshold_seconds=5.0,
        )
        door = make_door(stubs, slo)
        try:
            responses: list[dict] = []
            lock = threading.Lock()

            def read(i: int) -> None:
                with FleetClient(door.address, timeout=10.0) as client:
                    response = client.score([i])
                with lock:
                    responses.append(response)

            threads = [
                threading.Thread(target=read, args=(i,)) for i in range(5)
            ]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=15)
            ok = [r for r in responses if r.get("ok")]
            shed = [r for r in responses if r.get("error") == "AdmissionError"]
            assert ok, "the admitted read must still succeed"
            assert shed, "overload must shed, not queue without bound"
            for response in shed:
                assert response["reason"] == "overload"
                assert response["retry_after"] == pytest.approx(0.05)
            assert door.stats()["reads"]["shed"] == len(shed)
            # Load gone: the door admits again.
            stubs[0].delay = stubs[1].delay = 0.0
            with FleetClient(door.address, timeout=10.0) as client:
                assert client.score([9])["ok"] is True
        finally:
            door.stop()


class TestSlowReplicaQuarantine:
    def test_latency_outlier_ejected_then_reinstated_after_backoff(
        self, stubs
    ):
        slo = SLOParams(
            deadline_seconds=10.0,
            hedge_threshold_seconds=5.0,
            eject_latency_seconds=0.03,
            eject_min_samples=3,
            eject_window=8,
            reinstate_backoff_seconds=0.3,
        )
        door = make_door(stubs, slo)
        try:
            stubs[0].delay = 0.08  # slow, NOT dead: still answers
            with FleetClient(door.address, timeout=10.0) as client:
                for i in range(10):
                    assert client.score([i])["ok"]

                def replica0():
                    return door.stats()["replicas"]["0"]

                assert wait_until(lambda: replica0()["state"] == "slow", 5)
                ejected_at = time.monotonic()
                entry = replica0()
                assert entry["quarantines"] == 1
                assert entry["evictions"] == 0  # slow is not dead
                assert entry["flaps"] == 1
                assert entry["eligible_in_seconds"] > 0.0
                # Reads keep landing on the healthy replica meanwhile.
                assert client.score([3])["ok"]
                # Replica recovers instantly — reinstatement still waits
                # out the backoff floor.
                stubs[0].delay = 0.0
                assert wait_until(lambda: replica0()["state"] == "active", 10)
                waited = time.monotonic() - ejected_at
                assert waited >= 0.2, f"reinstated after only {waited:.3f}s"
                entry = replica0()
                assert entry["reinstatements"] == 1
                assert (
                    entry["evictions"]
                    + entry["quarantines"]
                    - entry["reinstatements"]
                    == 0
                )
                # ...and it serves again.
                for i in range(4):
                    assert client.score([i])["ok"]
        finally:
            door.stop()

    def test_still_slow_probe_is_not_welcomed_back(self, stubs):
        slo = SLOParams(
            deadline_seconds=10.0,
            hedge_threshold_seconds=5.0,
            eject_latency_seconds=0.03,
            eject_min_samples=3,
            eject_window=8,
            reinstate_backoff_seconds=0.05,
        )
        door = make_door(stubs, slo)
        try:
            stubs[0].delay = 0.08
            with FleetClient(door.address, timeout=10.0) as client:
                for i in range(10):
                    assert client.score([i])["ok"]
            assert wait_until(
                lambda: door.stats()["replicas"]["0"]["state"] == "slow", 5
            )
            # Backoff floor long past, probes answering fine — but at
            # 80ms a probe is still over the ejection threshold, so the
            # replica stays quarantined.
            time.sleep(0.5)
            assert door.stats()["replicas"]["0"]["state"] == "slow"
        finally:
            door.stop()


class TestFlapDamping:
    def test_flapping_replica_waits_out_doubling_backoff(self, stubs):
        slo = SLOParams(
            deadline_seconds=10.0,
            hedge_threshold_seconds=5.0,
            reinstate_backoff_seconds=0.25,
            reinstate_backoff_max_seconds=2.0,
        )
        door = make_door(stubs, slo)
        try:
            def replica0():
                return door.stats()["replicas"]["0"]

            def fail_then_recover() -> tuple[float, float]:
                """Break replica 0, read through the door, let it
                recover; returns (eviction backoff hint, reinstate wait)."""
                stubs[0].refuse = True
                with FleetClient(door.address, timeout=10.0) as client:
                    for i in range(4):  # enough reads to hit replica 0
                        assert client.score([i])["ok"]
                assert wait_until(lambda: replica0()["state"] == "evicted", 5)
                broke_at = time.monotonic()
                hint = replica0()["eligible_in_seconds"]
                stubs[0].refuse = False
                assert wait_until(lambda: replica0()["state"] == "active", 15)
                return hint, time.monotonic() - broke_at

            hint1, wait1 = fail_then_recover()
            hint2, wait2 = fail_then_recover()
            entry = replica0()
            assert entry["flaps"] == 2
            assert entry["evictions"] == 2
            assert entry["reinstatements"] == 2
            assert (
                entry["evictions"]
                + entry["quarantines"]
                - entry["reinstatements"]
                == 0
            )
            # First outage sat out ~the floor; the repeat offender is
            # held out roughly twice as long.
            assert wait1 >= 0.15
            assert hint2 > hint1 * 1.5
            assert wait2 >= 0.35
        finally:
            door.stop()


class _SilentServer:
    """Accepts connections and follows a script: hang, dribble, or echo."""

    def __init__(self, mode: str = "hang") -> None:
        self.mode = mode
        self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(4)
        self.address = self._listener.getsockname()[:2]
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self) -> None:
        while not self._stop.is_set():
            try:
                self._listener.settimeout(0.1)
                conn, _ = self._listener.accept()
            except TimeoutError:
                continue
            except OSError:
                return
            threading.Thread(
                target=self._handle, args=(conn,), daemon=True
            ).start()

    def _handle(self, conn: socket.socket) -> None:
        with conn:
            try:
                conn.settimeout(5.0)
                data = conn.recv(65536)
                if not data:
                    return
                if self.mode == "hang":
                    self._stop.wait(5.0)
                elif self.mode == "dribble":
                    # One byte per tick, never a complete frame.
                    for _ in range(100):
                        if self._stop.is_set():
                            return
                        conn.sendall(b"x")
                        time.sleep(0.02)
                else:  # echo: a valid response frame
                    conn.sendall(b'{"ok": true}\n')
                    self._handle(conn)
            except OSError:
                return

    def stop(self) -> None:
        self._stop.set()
        self._listener.close()


class TestFleetClientDeadline:
    def test_hung_server_raises_typed_deadline_error(self):
        server = _SilentServer("hang")
        try:
            with FleetClient(
                server.address, timeout=5.0, deadline_seconds=0.2
            ) as client:
                started = time.monotonic()
                with pytest.raises(DeadlineExceededError) as err:
                    client.request({"op": "score", "ids": [1]})
                elapsed = time.monotonic() - started
            assert elapsed < 1.0, "deadline must bound the wait"
            assert err.value.op == "score"
            assert err.value.deadline_seconds == pytest.approx(0.2)
            assert err.value.elapsed_seconds >= 0.2
        finally:
            server.stop()

    def test_dribbling_server_cannot_extend_the_deadline(self):
        # A server sending one byte per timeout window defeats naive
        # per-recv timeouts; the overall deadline must still hold.
        server = _SilentServer("dribble")
        try:
            with FleetClient(
                server.address, timeout=5.0, deadline_seconds=0.3
            ) as client:
                started = time.monotonic()
                with pytest.raises(DeadlineExceededError):
                    client.request({"op": "health"})
                elapsed = time.monotonic() - started
            assert elapsed < 1.2
        finally:
            server.stop()

    def test_client_reconnects_after_deadline_error(self):
        server = _SilentServer("echo")
        stub = StubReplica(0)
        try:
            client = FleetClient(
                stub.address, timeout=5.0, deadline_seconds=1.0
            )
            stub.delay = 2.0  # slower than the deadline
            with pytest.raises(DeadlineExceededError):
                client.request({"op": "score", "ids": [1]})
            # The poisoned connection was dropped: with the stub healthy
            # again the same client must answer correctly — not read the
            # late response of the timed-out request.
            stub.delay = 0.0
            time.sleep(2.1)  # let the stale response land on the old socket
            response = client.request({"op": "score", "ids": [7]})
            assert response["ok"] and response["values"] == [7.0]
            client.close()
        finally:
            stub.stop()
            server.stop()

    def test_nonpositive_deadline_rejected(self):
        stub = StubReplica(0)
        try:
            with pytest.raises(FleetError, match="deadline_seconds"):
                FleetClient(stub.address, deadline_seconds=0.0)
        finally:
            stub.stop()

    def test_per_request_deadline_override(self):
        stub = StubReplica(0)
        try:
            stub.delay = 0.3
            with FleetClient(
                stub.address, timeout=5.0, deadline_seconds=5.0
            ) as client:
                with pytest.raises(DeadlineExceededError):
                    client.request(
                        {"op": "score", "ids": [1]}, deadline_seconds=0.05
                    )
        finally:
            stub.stop()

"""Shared fixtures for the serving test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset
from repro.graph import add_edges
from repro.observability.metrics import get_registry, reset_registry
from repro.throttle.vector import ThrottleVector


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_registry()
    yield
    reset_registry()


@pytest.fixture(scope="session")
def tiny():
    return load_dataset("tiny")


@pytest.fixture(scope="session")
def tiny_kappa(tiny) -> ThrottleVector:
    kappa = np.zeros(tiny.assignment.n_sources)
    kappa[np.asarray(tiny.spam_sources, dtype=np.int64)] = 1.0
    return ThrottleVector(kappa)


@pytest.fixture()
def evolve():
    """Deterministic graph-evolution step: add 4 random edges per call."""
    gen = np.random.default_rng(0x5EED)

    def _evolve(graph):
        src = gen.integers(0, graph.n_nodes, size=4)
        dst = gen.integers(0, graph.n_nodes, size=4)
        return add_edges(graph, src.tolist(), dst.tolist())

    return _evolve


def counter_value(name: str, **labels: str) -> float:
    """Current value of one counter child (0 when absent)."""
    for family in get_registry().families():
        if family.name == name:
            for child in family.children():
                if child.label_values == labels:
                    return child.value
    return 0.0


def gauge_value(name: str) -> float | None:
    """Current value of an unlabelled gauge (None when absent)."""
    for family in get_registry().families():
        if family.name == name:
            for child in family.children():
                return child.value
    return None

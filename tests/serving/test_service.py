"""Tests for :class:`repro.serving.RankingService`: queries, admission,
recovery, and concurrent reads during updates."""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.config import RankingParams, ResilienceParams, ServingParams
from repro.errors import AdmissionError, ServingError
from repro.ranking.srsourcerank import spam_resilient_sourcerank
from repro.resilience.faults import FaultyOperator
from repro.serving import CircuitBreaker, RankingService
from repro.sources.sourcegraph import SourceGraph

from .conftest import counter_value

SERVING = ServingParams(backoff_base_seconds=0.01, backoff_max_seconds=0.05)


def make_service(tmp_path, **kwargs) -> RankingService:
    kwargs.setdefault("serving", SERVING)
    return RankingService(tmp_path / "snapshots", **kwargs)


class TestQueries:
    def test_bootstrap_then_query(self, tmp_path, tiny, tiny_kappa):
        service = make_service(tmp_path)
        snap = service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        response = service.score(0)
        assert response.state == "healthy"
        assert response.snapshot_kind == "sr"
        assert response.snapshot_version == snap.version
        assert response.staleness == 0
        assert response.snapshot_age >= 0.0
        assert 0.0 <= response.value <= 1.0

    def test_top_k_matches_direct_solve(self, tmp_path, tiny, tiny_kappa):
        service = make_service(tmp_path)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        direct = spam_resilient_sourcerank(
            SourceGraph.from_page_graph(tiny.graph, tiny.assignment),
            tiny_kappa,
            RankingParams(),
        )
        np.testing.assert_array_equal(service.top_k(10).value, direct.top(10))

    def test_percentile(self, tmp_path, tiny, tiny_kappa):
        service = make_service(tmp_path)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        best = int(service.top_k(1).value[0])
        assert service.percentile(best).value == pytest.approx(100.0)

    def test_query_without_snapshot_raises(self, tmp_path):
        service = make_service(tmp_path)
        assert not service.ready()
        with pytest.raises(ServingError, match="no snapshot"):
            service.score(0)
        assert counter_value("repro_serving_reads_total", status="error") == 1

    def test_reads_counted(self, tmp_path, tiny, tiny_kappa):
        service = make_service(tmp_path)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        for _ in range(3):
            service.score(1)
        assert counter_value("repro_serving_reads_total", status="ok") == 3


class TestUpdates:
    def test_update_publishes_and_serves_new_sigma(
        self, tmp_path, tiny, tiny_kappa, evolve
    ):
        service = make_service(tmp_path)
        v0 = service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa).version
        graph = evolve(tiny.graph)
        seq = service.submit_update(graph, tiny.assignment, tiny_kappa)
        assert seq == 1
        assert service.score(0).staleness == 1
        assert service.run_pending() == 1
        response = service.score(0)
        assert response.staleness == 0
        assert response.snapshot_version > v0
        direct = spam_resilient_sourcerank(
            SourceGraph.from_page_graph(graph, tiny.assignment),
            tiny_kappa,
            RankingParams(),
        )
        served = service.top_k(tiny.assignment.n_sources).value
        np.testing.assert_array_equal(served, direct.order())

    def test_queue_full_rejected(self, tmp_path, tiny, tiny_kappa):
        service = make_service(
            tmp_path, serving=SERVING.with_(max_pending=2)
        )
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        service.submit_update(tiny.graph, tiny.assignment, tiny_kappa)
        service.submit_update(tiny.graph, tiny.assignment, tiny_kappa)
        with pytest.raises(AdmissionError) as excinfo:
            service.submit_update(tiny.graph, tiny.assignment, tiny_kappa)
        assert excinfo.value.reason == "queue_full"
        assert counter_value(
            "repro_serving_admission_rejections_total", reason="queue_full"
        ) == 1

    def test_nan_corruption_recovers_inside_update(
        self, tmp_path, tiny, tiny_kappa, evolve
    ):
        # The default fallback chain (power -> jacobi) absorbs a
        # NaN-corrupted matvec: the update still succeeds and the
        # service never leaves healthy.
        service = make_service(tmp_path)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        graph = evolve(tiny.graph)
        service.submit_update(
            graph,
            tiny.assignment,
            tiny_kappa,
            operator_wrap=lambda op: FaultyOperator(op, corrupt_at_call=2, seed=3),
        )
        assert service.run_pending() == 1
        assert service.health()["state"] == "healthy"
        direct = spam_resilient_sourcerank(
            SourceGraph.from_page_graph(graph, tiny.assignment),
            tiny_kappa,
            RankingParams(),
        )
        served_best = int(service.top_k(1).value[0])
        assert served_best == int(direct.top(1)[0])

    def test_publish_failure_runs_the_failure_path(
        self, tmp_path, tiny, tiny_kappa, evolve, monkeypatch
    ):
        # A failed snapshot publish (disk full, torn write) must degrade
        # exactly like a failed solve: counted, breaker-recorded, state
        # machine advanced — never a silently dropped request.
        service = make_service(
            tmp_path, breaker=CircuitBreaker(failure_threshold=10_000)
        )
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)

        def boom(**kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(service.store, "publish", boom)
        graph = evolve(tiny.graph)
        service.submit_update(graph, tiny.assignment, tiny_kappa)
        assert service.run_pending() == 0
        assert counter_value(
            "repro_serving_updates_total", status="failed"
        ) == 1
        assert service.breaker.consecutive_failures == 1
        health = service.health()
        assert health["state"] == "stale"
        assert health["consecutive_failures"] == 1
        # Reads still answered from the pre-failure snapshot.
        assert service.score(0).state == "stale"

    def test_publish_failure_does_not_wedge_half_open_breaker(
        self, tmp_path, tiny, tiny_kappa, evolve, monkeypatch
    ):
        # If the half-open probe's *publish* fails, the breaker must see
        # record_failure (re-open), not stay half-open forever with
        # allow() returning False.
        clock = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=1,
            backoff_base_seconds=1.0,
            backoff_max_seconds=8.0,
            jitter=0.0,
            clock=lambda: clock[0],
        )
        service = make_service(tmp_path, breaker=breaker)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        real_publish = service.store.publish

        def boom(**kwargs):
            raise OSError("disk full")

        monkeypatch.setattr(service.store, "publish", boom)
        graph = evolve(tiny.graph)
        service.submit_update(graph, tiny.assignment, tiny_kappa)
        assert service.run_pending() == 0
        assert breaker.state == "open"

        clock[0] = 10.0  # past the backoff: the next attempt is the probe
        graph = evolve(graph)
        service.submit_update(graph, tiny.assignment, tiny_kappa)
        assert service.run_pending() == 0
        assert breaker.state == "open"  # probe outcome recorded: re-opened

        monkeypatch.setattr(service.store, "publish", real_publish)
        clock[0] = 100.0
        graph = evolve(graph)
        service.submit_update(graph, tiny.assignment, tiny_kappa)
        assert service.run_pending() == 1
        assert breaker.state == "closed"
        assert service.health()["state"] == "healthy"

    def test_breaker_open_pauses_queue(self, tmp_path, tiny, tiny_kappa):
        breaker = CircuitBreaker(
            failure_threshold=1, backoff_base_seconds=1000.0, jitter=0.0
        )
        service = make_service(tmp_path, breaker=breaker)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        breaker.record_failure()  # trip it open
        service.submit_update(tiny.graph, tiny.assignment, tiny_kappa)
        assert service.run_pending() == 0
        assert service.pending() == 1  # not dropped, just deferred


class TestRecovery:
    def test_restart_recovers_latest_sr(self, tmp_path, tiny, tiny_kappa, evolve):
        first = make_service(tmp_path)
        first.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        graph = evolve(tiny.graph)
        first.submit_update(graph, tiny.assignment, tiny_kappa)
        first.run_pending()
        expected = first.score(0).value

        second = make_service(tmp_path)
        assert second.ready()
        response = second.score(0)
        assert response.state == "healthy"
        assert response.value == expected

    def test_restart_warm_start_reaches_same_fixpoint(
        self, tmp_path, tiny, tiny_kappa, evolve
    ):
        # A restarted service seeds its incremental ranker from the
        # recovered snapshot; the next update must land on the same
        # fixed point as a cold solve, to solver tolerance.
        strict = RankingParams(
            tolerance=1e-12,
            max_iter=2000,
            resilience=ResilienceParams(fallback_solvers=("jacobi",)),
        )
        first = make_service(tmp_path, params=strict)
        first.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)

        second = make_service(tmp_path, params=strict)
        graph = evolve(tiny.graph)
        second.submit_update(graph, tiny.assignment, tiny_kappa)
        assert second.run_pending() == 1
        cold = spam_resilient_sourcerank(
            SourceGraph.from_page_graph(graph, tiny.assignment),
            tiny_kappa,
            RankingParams(tolerance=1e-12, max_iter=2000),
        )
        store = second.store
        served = store.latest(kind="sr").sigma
        np.testing.assert_allclose(served, cold.scores, atol=1e-9)

    def test_restart_with_only_baseline(self, tmp_path, tiny, tiny_kappa):
        first = make_service(tmp_path)
        first.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        store = first.store
        # Destroy every SR snapshot; only the baseline survives.
        for version in store.versions():
            if store.load(version) and store.load(version).kind == "sr":
                store.path_for(version).unlink()

        second = make_service(tmp_path)
        assert second.ready()
        response = second.score(0)
        assert response.snapshot_kind == "baseline"
        assert second.health()["state"] == "baseline"

    def test_restart_skips_torn_snapshot(self, tmp_path, tiny, tiny_kappa, evolve):
        first = make_service(tmp_path)
        first.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        graph = evolve(tiny.graph)
        first.submit_update(graph, tiny.assignment, tiny_kappa)
        first.run_pending()
        store = first.store
        healthy_before = store.latest(kind="sr").version
        # Tear the newest file behind the store's back.
        path = store.path_for(healthy_before)
        path.write_bytes(path.read_bytes()[: 64])

        second = make_service(tmp_path)
        response = second.score(0)
        assert response.snapshot_version < healthy_before
        assert response.snapshot_kind == "sr"
        assert counter_value(
            "repro_snapshot_rejects_total", reason="unreadable"
        ) >= 1


class TestConcurrency:
    def test_concurrent_runners_adopt_in_submission_order(
        self, tmp_path, tiny, tiny_kappa, evolve
    ):
        # Two runners racing the queue: the older request's solve is
        # artificially slow, so without serialized execution its result
        # would be published *after* the newer one and adopted as
        # current. The run lock forces submission order.
        service = make_service(tmp_path)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        slow_graph = evolve(tiny.graph)
        fast_graph = evolve(evolve(evolve(slow_graph)))

        def dawdle(iteration: int, residual: float) -> None:
            if iteration < 10:
                time.sleep(0.02)

        service.submit_update(
            slow_graph, tiny.assignment, tiny_kappa, callback=dawdle
        )
        service.submit_update(fast_graph, tiny.assignment, tiny_kappa)
        runners = [
            threading.Thread(target=service.run_pending, args=(1,))
            for _ in range(2)
        ]
        for thread in runners:
            thread.start()
        for thread in runners:
            thread.join(timeout=60)
        response = service.score(0)
        assert response.state == "healthy"
        assert response.staleness == 0
        # The served ranking is the *newest* submitted graph's.
        direct = spam_resilient_sourcerank(
            SourceGraph.from_page_graph(fast_graph, tiny.assignment),
            tiny_kappa,
            RankingParams(),
        )
        served = service.top_k(tiny.assignment.n_sources).value
        np.testing.assert_array_equal(served, direct.order())

    def test_reads_survive_concurrent_updates(
        self, tmp_path, tiny, tiny_kappa, evolve
    ):
        service = make_service(tmp_path)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        n = tiny.assignment.n_sources
        errors: list[Exception] = []
        stop = threading.Event()

        def reader(seed: int) -> None:
            gen = np.random.default_rng(seed)
            while not stop.is_set():
                try:
                    service.score(int(gen.integers(0, n)))
                    service.top_k(5)
                    service.percentile(int(gen.integers(0, n)))
                except Exception as exc:  # noqa: BLE001 - the assertion
                    errors.append(exc)
                    return

        threads = [threading.Thread(target=reader, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        graph = tiny.graph
        try:
            with service:
                for _ in range(5):
                    graph = evolve(graph)
                    service.submit_update(graph, tiny.assignment, tiny_kappa)
                deadline = threading.Event()
                for _ in range(200):
                    if service.health()["staleness_updates"] == 0:
                        break
                    deadline.wait(0.05)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not errors
        assert service.health()["state"] == "healthy"
        assert service.score(0).staleness == 0

"""Unit tests for :mod:`repro.serving.snapshot`."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ServingError
from repro.linalg.iterate import ConvergenceInfo
from repro.observability.metrics import get_registry, reset_registry
from repro.serving import RankingSnapshot, SnapshotStore


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_registry()
    yield
    reset_registry()


def sigma(n: int = 8, seed: int = 0) -> np.ndarray:
    gen = np.random.default_rng(seed)
    x = gen.random(n)
    return x / x.sum()


def publish_one(store: SnapshotStore, *, kind: str = "sr", seed: int = 0):
    return store.publish(
        kind=kind,
        sigma=sigma(seed=seed),
        kappa=np.zeros(8),
        key="k",
        solver="power",
        convergence=ConvergenceInfo(True, 5, 1e-10, 1e-9),
    )


def counter_value(name: str, **labels: str) -> float:
    for family in get_registry().families():
        if family.name == name:
            for child in family.children():
                if child.label_values == labels:
                    return child.value
    return 0.0


class TestPublishLoad:
    def test_roundtrip(self, tmp_path):
        store = SnapshotStore(tmp_path)
        published = publish_one(store)
        loaded = store.load(published.version)
        assert loaded is not None
        np.testing.assert_array_equal(loaded.sigma, published.sigma)
        np.testing.assert_array_equal(loaded.kappa, published.kappa)
        assert loaded.kind == "sr"
        assert loaded.key == "k"
        assert loaded.solver == "power"
        assert loaded.convergence.iterations == 5
        assert loaded.published_at == published.published_at

    def test_converged_flag_round_trips(self, tmp_path):
        # A snapshot published from a non-converged result must reload
        # with converged=False — provenance is never falsified.
        store = SnapshotStore(tmp_path)
        snap = store.publish(
            kind="sr",
            sigma=sigma(),
            kappa=np.zeros(8),
            key="k",
            solver="power",
            convergence=ConvergenceInfo(False, 500, 1e-3, 1e-9),
        )
        loaded = store.load(snap.version)
        assert loaded is not None
        assert loaded.convergence.converged is False
        converged = store.publish(
            kind="sr",
            sigma=sigma(seed=1),
            kappa=np.zeros(8),
            convergence=ConvergenceInfo(True, 7, 1e-10, 1e-9),
        )
        assert store.load(converged.version).convergence.converged is True

    def test_converged_flag_is_digest_protected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        snap = publish_one(store)
        path = store.path_for(snap.version)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["converged"] = np.bool_(False)  # falsify provenance
        np.savez(path, **arrays)
        assert store.load(snap.version) is None

    def test_versions_monotonic(self, tmp_path):
        store = SnapshotStore(tmp_path)
        v = [publish_one(store, seed=i).version for i in range(3)]
        assert v == [1, 2, 3]
        assert store.versions() == (1, 2, 3)

    def test_bad_kind_rejected(self):
        with pytest.raises(ServingError, match="kind"):
            RankingSnapshot(
                version=1,
                kind="nope",
                sigma=sigma(),
                kappa=np.zeros(8),
                key="",
                published_at=0.0,
                solver="",
                convergence=ConvergenceInfo(True, 0, 0.0, 0.0),
            )

    def test_missing_version_is_none(self, tmp_path):
        assert SnapshotStore(tmp_path).load(99) is None

    def test_result_is_cached_and_normalized(self, tmp_path):
        store = SnapshotStore(tmp_path)
        snap = publish_one(store)
        result = snap.result()
        assert result is snap.result()
        assert result.scores.sum() == pytest.approx(1.0)


class TestIntegrity:
    def test_torn_file_skipped_by_latest(self, tmp_path):
        store = SnapshotStore(tmp_path)
        good = publish_one(store, seed=1)
        bad = publish_one(store, seed=2)
        # Truncate the newest file: simulates a torn write by an agent
        # that bypassed the atomic publish (or disk corruption).
        path = store.path_for(bad.version)
        path.write_bytes(path.read_bytes()[:40])
        assert store.load(bad.version) is None
        latest = store.latest()
        assert latest is not None and latest.version == good.version
        assert counter_value(
            "repro_snapshot_rejects_total", reason="unreadable"
        ) >= 1

    def test_garbage_file_skipped(self, tmp_path):
        store = SnapshotStore(tmp_path)
        good = publish_one(store)
        store.path_for(good.version + 1).write_bytes(b"not an npz at all")
        assert store.latest().version == good.version

    def test_tampered_payload_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        snap = publish_one(store)
        path = store.path_for(snap.version)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["sigma"] = np.asarray(arrays["sigma"]) * 2.0  # flip the payload
        np.savez(path, **arrays)
        assert store.load(snap.version) is None
        assert counter_value("repro_snapshot_rejects_total", reason="digest") == 1

    def test_wrong_format_version_rejected(self, tmp_path):
        store = SnapshotStore(tmp_path)
        snap = publish_one(store)
        path = store.path_for(snap.version)
        with np.load(path, allow_pickle=False) as data:
            arrays = {name: data[name] for name in data.files}
        arrays["format_version"] = np.int64(999)
        np.savez(path, **arrays)
        assert store.load(snap.version) is None
        assert counter_value(
            "repro_snapshot_rejects_total", reason="format_version"
        ) == 1

    def test_publish_counts_by_kind(self, tmp_path):
        store = SnapshotStore(tmp_path)
        publish_one(store, kind="baseline")
        publish_one(store, kind="sr")
        publish_one(store, kind="sr", seed=1)
        assert counter_value("repro_snapshot_publishes_total", kind="sr") == 2
        assert counter_value("repro_snapshot_publishes_total", kind="baseline") == 1


class TestRetention:
    def test_prune_keeps_newest_per_kind(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        publish_one(store, kind="baseline")
        for i in range(5):
            publish_one(store, kind="sr", seed=i)
        kinds = {store.load(v).kind for v in store.versions()}
        # The old baseline survives even though 5 SR snapshots followed.
        assert kinds == {"sr", "baseline"}
        sr_versions = [
            v for v in store.versions() if store.load(v).kind == "sr"
        ]
        assert len(sr_versions) == 2
        assert sr_versions == [5, 6]

    def test_prune_clears_stale_garbage(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        publish_one(store)
        store.path_for(0).write_bytes(b"junk")  # older than any healthy file
        store.prune()
        assert not store.path_for(0).exists()

    def test_prune_does_not_reverify_known_snapshots(self, tmp_path, monkeypatch):
        # The prune that runs on every publish must not re-load (and
        # re-sha256) the whole retained set: kinds published through
        # this store instance are cached.
        store = SnapshotStore(tmp_path, keep=4)
        for i in range(6):
            publish_one(store, seed=i)
        loads = []
        original = SnapshotStore.load

        def counting_load(self, version):
            loads.append(version)
            return original(self, version)

        monkeypatch.setattr(SnapshotStore, "load", counting_load)
        store.prune()
        assert loads == []

    def test_version_counter_survives_pruning(self, tmp_path):
        # Versions must stay monotonic even after old files are deleted.
        store = SnapshotStore(tmp_path, keep=1)
        for i in range(4):
            snap = publish_one(store, seed=i)
        assert snap.version == 4
        assert store.versions() == (4,)
        assert publish_one(store, seed=9).version == 5

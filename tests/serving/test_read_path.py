"""Regression tests for the serving read path.

Three bugs are pinned here (each test failed before its fix):

1. ``RankingResult.score_of`` / ``percentile`` accepted negative ids via
   numpy wraparound — ``service.score(-1)`` returned the *last* source's
   score instead of raising.
2. ``RankingService._padded_kappa`` returned an unsliced vector when
   ``kappa.n > n``, publishing a κ longer than σ into the snapshot.
3. Read failures other than "no snapshot" escaped ``score``/``top_k``/
   ``percentile`` without incrementing
   ``repro_serving_reads_total{status="error"}`` or recording latency.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ServingParams
from repro.errors import GraphError, NodeIndexError, ServingError, ThrottleError
from repro.observability.metrics import get_registry
from repro.serving import RankingService
from repro.throttle.vector import ThrottleVector

from .conftest import counter_value

SERVING = ServingParams(backoff_base_seconds=0.01, backoff_max_seconds=0.05)


def read_latency_count(op: str) -> int:
    """Observations recorded for one op's read-latency histogram child."""
    for family in get_registry().families():
        if family.name == "repro_serving_read_seconds":
            for child in family.children():
                if child.label_values == {"op": op}:
                    return child.count
    return 0


@pytest.fixture()
def service(tmp_path, tiny, tiny_kappa) -> RankingService:
    svc = RankingService(tmp_path / "snapshots", serving=SERVING)
    svc.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
    return svc


class TestOutOfRangeIds:
    """Bug 1: negative ids must raise, never wrap around."""

    def test_score_negative_id_raises(self, service):
        with pytest.raises(NodeIndexError, match="out of range"):
            service.score(-1)

    def test_score_negative_id_is_not_last_sources_score(self, service, tiny):
        last = service.score(tiny.assignment.n_sources - 1).value
        with pytest.raises(GraphError):
            service.score(-1)
        # The old wraparound behavior returned exactly `last`; pin that it
        # now raises instead of silently aliasing.
        assert last > 0.0

    def test_score_id_past_end_raises(self, service, tiny):
        with pytest.raises(NodeIndexError):
            service.score(tiny.assignment.n_sources)

    def test_percentile_out_of_range_raises(self, service, tiny):
        with pytest.raises(NodeIndexError):
            service.percentile(-1)
        with pytest.raises(NodeIndexError):
            service.percentile(tiny.assignment.n_sources + 7)

    def test_in_range_ids_still_served(self, service, tiny):
        n = tiny.assignment.n_sources
        assert service.score(0).value > 0.0
        assert service.score(n - 1).value > 0.0
        assert 0.0 <= service.percentile(n - 1).value <= 100.0

    def test_error_is_a_graph_error_and_an_index_error(self, service):
        # NodeIndexError doubles as IndexError so generic callers that
        # guard indexing keep working.
        with pytest.raises(IndexError):
            service.score(-3)


class TestPaddedKappa:
    """Bug 2: an oversized κ must never be published alongside a shorter σ."""

    def test_oversized_kappa_raises_naming_both_sizes(self):
        kappa = ThrottleVector(np.linspace(0.0, 1.0, 12))
        with pytest.raises(ThrottleError, match=r"12 sources.*only 8"):
            RankingService._padded_kappa(kappa, 8)

    def test_exact_size_passes_through(self):
        kappa = ThrottleVector(np.full(8, 0.5))
        np.testing.assert_array_equal(
            RankingService._padded_kappa(kappa, 8), kappa.kappa
        )

    def test_short_kappa_zero_padded(self):
        kappa = ThrottleVector(np.ones(3))
        padded = RankingService._padded_kappa(kappa, 5)
        np.testing.assert_array_equal(padded, [1.0, 1.0, 1.0, 0.0, 0.0])

    def test_bootstrap_rejects_oversized_kappa(self, tmp_path, tiny):
        service = RankingService(tmp_path / "snapshots", serving=SERVING)
        oversized = ThrottleVector(np.zeros(tiny.assignment.n_sources + 4))
        with pytest.raises(ThrottleError):
            service.bootstrap(tiny.graph, tiny.assignment, oversized)


class TestReadErrorAccounting:
    """Bug 3: every read failure lands in the error counter + latency."""

    def test_out_of_range_score_counts_as_error(self, service):
        before = counter_value("repro_serving_reads_total", status="error")
        lat_before = read_latency_count("score")
        with pytest.raises(NodeIndexError):
            service.score(-1)
        assert counter_value("repro_serving_reads_total", status="error") == before + 1
        assert read_latency_count("score") == lat_before + 1

    def test_out_of_range_percentile_counts_as_error(self, service):
        with pytest.raises(NodeIndexError):
            service.percentile(-2)
        assert counter_value("repro_serving_reads_total", status="error") == 1
        assert read_latency_count("percentile") == 1

    def test_bad_top_k_counts_as_error(self, service, tiny):
        with pytest.raises(GraphError):
            service.top_k(tiny.assignment.n_sources + 1)
        assert counter_value("repro_serving_reads_total", status="error") == 1
        assert read_latency_count("top_k") == 1

    def test_no_snapshot_still_counts_as_error(self, tmp_path):
        empty = RankingService(tmp_path / "empty", serving=SERVING)
        with pytest.raises(ServingError, match="no snapshot"):
            empty.score(0)
        assert counter_value("repro_serving_reads_total", status="error") == 1
        assert read_latency_count("score") == 1

    def test_ok_reads_unaffected(self, service):
        service.score(0)
        service.top_k(3)
        service.percentile(1)
        assert counter_value("repro_serving_reads_total", status="ok") == 3
        assert counter_value("repro_serving_reads_total", status="error") == 0

"""Tests for the asyncio front door: balancing, micro-batching,
eviction/reinstatement, retry-on-kill, and the fan-out health view.

The replica processes and the door are module-scoped — spawning an
interpreter per test would dominate the suite's wall clock.
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro.config import FleetParams
from repro.errors import FleetError
from repro.serving import (
    FleetClient,
    FrontDoor,
    ReplicaHandle,
    ReplicaService,
    SnapshotStore,
    replica_request,
)

PARAMS = FleetParams(
    replicas=2,
    replica_poll_seconds=0.02,
    probe_interval_seconds=0.05,
    batch_linger_seconds=0.005,
    request_timeout_seconds=5.0,
    spawn_timeout_seconds=90.0,
)
N = 48


@pytest.fixture(scope="module")
def store_dir(tmp_path_factory):
    directory = tmp_path_factory.mktemp("fleet-store")
    store = SnapshotStore(directory)
    sigma = np.arange(1.0, N + 1.0)
    store.publish(kind="sr", sigma=sigma, kappa=np.zeros(N))
    return directory


@pytest.fixture(scope="module")
def fleet(store_dir):
    handles = {
        rid: ReplicaHandle.spawn(store_dir, rid, PARAMS) for rid in (0, 1)
    }
    door = FrontDoor(
        {rid: h.address for rid, h in handles.items()}, PARAMS
    ).start()
    yield door, handles
    door.stop()
    for handle in handles.values():
        handle.terminate()


@pytest.fixture()
def client(fleet):
    door, _ = fleet
    with FleetClient(door.address) as fc:
        yield fc


def wait_until(predicate, *, timeout: float = 10.0, what: str = "condition"):
    deadline = time.monotonic() + timeout
    while not predicate():
        assert time.monotonic() < deadline, f"timed out waiting for {what}"
        time.sleep(0.02)


class TestReads:
    def test_batched_score_passthrough(self, fleet, client):
        response = client.score(list(range(N)))
        assert response["ok"]
        expected = np.arange(1.0, N + 1.0)
        np.testing.assert_allclose(
            response["values"], expected / expected.sum()
        )

    def test_singleton_reads_are_batched(self, fleet):
        door, _ = fleet
        flushes_before = door.stats()["batching"]["flushes"]
        results: list[dict] = []

        def reader(node: int) -> None:
            with FleetClient(door.address) as fc:
                results.append(fc.score_one(node))

        threads = [
            threading.Thread(target=reader, args=(node,)) for node in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert len(results) == 8 and all(r["ok"] for r in results)
        stats = door.stats()["batching"]
        flushed = stats["flushes"] - flushes_before
        assert flushed >= 1
        # Strictly fewer flushes than reads ⇒ at least one real coalesce
        # (8 concurrent singletons against the linger window).
        assert flushed < 8, stats

    def test_round_robin_spreads_load(self, fleet, client):
        for node in range(20):
            assert client.score([node % N])["ok"]
        per_replica = door_reads(fleet[0])
        assert all(count > 0 for count in per_replica.values()), per_replica

    def test_top_k_and_percentile(self, client):
        top = client.top_k(3)
        assert top["ok"] and top["ids"] == [N - 1, N - 2, N - 3]
        pct = client.percentile([N - 1])
        assert pct["ok"] and pct["values"][0] == pytest.approx(100.0)
        single = client.percentile_one(N - 1)
        assert single["ok"] and single["value"] == pytest.approx(100.0)

    def test_out_of_range_id_is_typed_and_does_not_evict(self, fleet, client):
        response = client.score([N])
        assert not response["ok"]
        assert response["error"] == "NodeIndexError"
        states = {
            rid: entry["state"]
            for rid, entry in fleet[0].stats()["replicas"].items()
        }
        assert set(states.values()) == {"active"}, states

    def test_bad_id_in_micro_batch_only_fails_that_id(self, fleet):
        door, _ = fleet
        results: dict[int, dict] = {}

        def reader(node: int) -> None:
            with FleetClient(door.address) as fc:
                results[node] = fc.score_one(node)

        threads = [
            threading.Thread(target=reader, args=(node,))
            for node in (0, 1, -1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=15)
        assert results[0]["ok"] and results[1]["ok"]
        assert not results[-1]["ok"]
        assert results[-1]["error"] == "NodeIndexError"

    def test_unknown_op_and_malformed_line(self, fleet, client):
        assert client.request({"op": "bogus"})["error"] == "FleetError"
        # A malformed line gets an error response, not a dropped socket.
        client._sock.sendall(b"not json\n")
        line = client._read_line(
            client._sock, time.monotonic() + 5.0, 5.0, None, time.monotonic()
        )
        assert b"malformed" in line

    def test_health_fanout(self, client):
        health = client.health()
        assert health["ok"]
        assert set(health["replicas"]) == {"0", "1"}
        for entry in health["replicas"].values():
            assert entry["state"] == "active"
            assert entry["snapshot_version"] == 1
            assert entry["ready"] is True


def door_reads(door: FrontDoor) -> dict[str, int]:
    return {
        rid: entry["reads"]
        for rid, entry in door.stats()["replicas"].items()
    }


class TestChaos:
    """Kill / evict / probe-reinstate / restart — ordered, stateful."""

    def test_kill_evict_retry_and_reinstate(self, fleet, store_dir):
        door, handles = fleet
        handles[0].kill()
        with FleetClient(door.address) as client:
            # Every read during the outage still succeeds: the door
            # evicts replica 0 on its first transport error and retries
            # the same read on replica 1.
            for node in range(30):
                assert client.score([node % N])["ok"]
            stats = door.stats()
            assert stats["reads"]["failed"] == 0
            assert stats["replicas"]["0"]["state"] == "evicted"
            assert stats["replicas"]["1"]["state"] == "active"
            assert stats["replicas"]["0"]["evictions"] >= 1
            # Restart on a fresh port; the routing table is updated and
            # the replica returns to rotation immediately.
            handles[0] = ReplicaHandle.spawn(store_dir, 0, PARAMS)
            door.update_replica(0, handles[0].address)
            wait_until(
                lambda: door.stats()["replicas"]["0"]["state"] == "active",
                what="replica 0 reinstatement",
            )
            before = door_reads(door)
            for node in range(20):
                assert client.score([node % N])["ok"]
            after = door_reads(door)
            assert after["0"] > before["0"], "restarted replica takes reads"
            # The restarted replica serves the publisher's latest σ.
            sigma = replica_request(handles[0].address, {"op": "sigma"})
            latest = SnapshotStore(store_dir).latest(kind="sr")
            assert (
                np.abs(
                    np.asarray(sigma["sigma"]) - latest.result().scores
                ).max()
                <= 1e-9
            )

    def test_probe_loop_reinstates_same_address(self, fleet, store_dir):
        door, handles = fleet
        # Kill replica 1 and bring a replacement up on the *same*
        # (host, port): the background probe loop alone must reinstate
        # it — no update_replica call.
        host, port = handles[1].address
        handles[1].kill()
        with FleetClient(door.address) as client:
            for node in range(10):
                assert client.score([node % N])["ok"]
        wait_until(
            lambda: door.stats()["replicas"]["1"]["state"] == "evicted",
            what="replica 1 eviction",
        )
        # An in-process replica pinned to the freed port speaks the same
        # protocol — enough for the probe to see a ready backend again.
        replacement = ReplicaService(
            SnapshotStore(store_dir),
            replica_id=1,
            host=host,
            port=port,
            poll_interval=0.02,
        ).bind()
        thread = threading.Thread(
            target=replacement.serve_forever, daemon=True
        )
        thread.start()
        try:
            wait_until(
                lambda: replacement.follower.current is not None,
                what="replacement adoption",
            )
            wait_until(
                lambda: door.stats()["replicas"]["1"]["state"] == "active",
                what="probe reinstatement",
            )
            assert door.stats()["reads"]["failed"] == 0
            assert door.stats()["replicas"]["1"]["reinstatements"] >= 1
            with FleetClient(door.address) as client:
                for node in range(10):
                    assert client.score([node % N])["ok"]
        finally:
            try:
                replica_request((host, port), {"op": "stop"}, timeout=5)
            except Exception:
                pass
            thread.join(timeout=10)
            replacement.close()


class TestValidation:
    def test_door_requires_replicas(self):
        with pytest.raises(FleetError, match="at least one replica"):
            FrontDoor({}, PARAMS)

    def test_request_before_start_raises(self, store_dir):
        door = FrontDoor({0: ("127.0.0.1", 1)}, PARAMS)
        with pytest.raises(FleetError, match="not started"):
            door.request({"op": "stats"})
        with pytest.raises(FleetError, match="not started"):
            door.address

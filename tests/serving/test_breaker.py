"""Unit tests for :mod:`repro.serving.breaker` (fake-clock driven)."""

from __future__ import annotations

import pytest

from repro.observability.metrics import get_registry, reset_registry
from repro.serving import CircuitBreaker


@pytest.fixture(autouse=True)
def fresh_registry():
    reset_registry()
    yield
    reset_registry()


class FakeClock:
    def __init__(self) -> None:
        self.now = 0.0

    def __call__(self) -> float:
        return self.now

    def advance(self, dt: float) -> None:
        self.now += dt


def make(clock: FakeClock, **kwargs) -> CircuitBreaker:
    kwargs.setdefault("failure_threshold", 3)
    kwargs.setdefault("backoff_base_seconds", 1.0)
    kwargs.setdefault("backoff_max_seconds", 8.0)
    kwargs.setdefault("jitter", 0.0)
    return CircuitBreaker(clock=clock, **kwargs)


class TestTripping:
    def test_starts_closed_and_allows(self):
        breaker = make(FakeClock())
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_trips_at_threshold(self):
        breaker = make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_success_resets_failure_streak(self):
        breaker = make(FakeClock())
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"


class TestBackoff:
    def test_half_open_after_deadline_single_probe(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        assert breaker.retry_after() == pytest.approx(1.0)
        clock.advance(0.5)
        assert not breaker.allow()
        clock.advance(0.6)
        assert breaker.allow()  # the one probe
        assert breaker.state == "half_open"
        assert not breaker.allow()  # no second probe

    def test_probe_success_closes(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.consecutive_failures == 0

    def test_probe_failure_doubles_backoff(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()  # trip 1: 1 s
        clock.advance(1.1)
        assert breaker.allow()
        breaker.record_failure()  # trip 2: 2 s
        assert breaker.state == "open"
        assert breaker.retry_after() == pytest.approx(2.0)
        clock.advance(2.1)
        assert breaker.allow()
        breaker.record_failure()  # trip 3: 4 s
        assert breaker.retry_after() == pytest.approx(4.0)

    def test_backoff_capped(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        for _ in range(10):  # keep failing probes well past the cap
            clock.advance(100.0)
            assert breaker.allow()
            breaker.record_failure()
        assert breaker.retry_after() <= 8.0 + 1e-9

    def test_jitter_bounds(self):
        clock = FakeClock()
        breaker = make(clock, jitter=0.5, seed=7)
        for _ in range(3):
            breaker.record_failure()
        # base 1 s, jitter in [0, 0.5): retry_after in [1, 1.5).
        assert 1.0 <= breaker.retry_after() < 1.5

    def test_jitter_deterministic_per_seed(self):
        def schedule(seed: int) -> float:
            clock = FakeClock()
            breaker = make(clock, jitter=0.5, seed=seed)
            for _ in range(3):
                breaker.record_failure()
            return breaker.retry_after()

        assert schedule(3) == schedule(3)


class TestObservability:
    def test_transitions_counted_and_gauge_tracks(self):
        clock = FakeClock()
        breaker = make(clock)
        for _ in range(3):
            breaker.record_failure()
        clock.advance(1.1)
        breaker.allow()
        breaker.record_success()

        counts = {}
        gauge = None
        for family in get_registry().families():
            if family.name == "repro_breaker_transitions_total":
                for child in family.children():
                    counts[child.label_values["state"]] = child.value
            if family.name == "repro_breaker_state":
                for child in family.children():
                    gauge = child.value
        assert counts == {"open": 1.0, "half_open": 1.0, "closed": 1.0}
        assert gauge == 0.0  # closed again

    def test_reset_closes(self):
        breaker = make(FakeClock())
        for _ in range(3):
            breaker.record_failure()
        breaker.reset()
        assert breaker.state == "closed"
        assert breaker.allow()

"""Serving telemetry v2: the live endpoint under chaos, correlated events,
SLO read-latency instrumentation, and trace isolation."""

from __future__ import annotations

import json
import threading
import time
from urllib.request import urlopen

import pytest

from repro.config import ObservabilityParams, RankingParams, ServingParams
from repro.errors import AdmissionError
from repro.resilience.faults import crash_at_iteration
from repro.serving import RankingService
from repro.serving.service import SERVING_STATES

SERVING = ServingParams(
    backoff_base_seconds=0.005,
    backoff_max_seconds=0.02,
    poll_interval_seconds=0.005,
)

OBSERVED = ObservabilityParams(events=True, endpoint=True)


def make_service(tmp_path, observability=OBSERVED) -> RankingService:
    return RankingService(
        tmp_path / "snapshots",
        serving=SERVING,
        observability=observability,
    )


def scrape_json(service, path: str) -> dict | list:
    with urlopen(service.telemetry.url(path), timeout=5.0) as resp:
        assert resp.status == 200
        return json.loads(resp.read())


def pump_one(service) -> None:
    """Run one queued update, waiting out the breaker's backoff."""
    target = service.pending() - 1
    deadline = time.perf_counter() + 30
    while service.pending() > target and time.perf_counter() < deadline:
        service.run_pending(max_updates=1)
        if service.pending() > target:
            time.sleep(0.005)


class TestZeroCostDefault:
    def test_observability_off_means_no_telemetry(self, tmp_path, tiny,
                                                  tiny_kappa):
        service = RankingService(tmp_path / "snapshots", serving=SERVING)
        assert service.telemetry is None
        assert service.events is None
        assert service.run_id is None
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        assert service.score(0).state == "healthy"
        health = service.health()
        assert health["run_id"] is None
        service.stop()


class TestEndpointUnderChaos:
    def test_scrapes_answered_in_every_degradation_state(
        self, tmp_path, tiny, tiny_kappa, evolve
    ):
        service = make_service(tmp_path)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)

        scrape_failures: list[str] = []
        stop = threading.Event()

        def scraper() -> None:
            while not stop.is_set():
                for path in ("/metrics", "/health"):
                    try:
                        with urlopen(
                            service.telemetry.url(path), timeout=5.0
                        ) as resp:
                            if resp.status != 200 or not resp.read():
                                scrape_failures.append(path)
                    except Exception as exc:  # noqa: BLE001
                        scrape_failures.append(f"{path}: {exc}")
                time.sleep(0.001)

        threads = [threading.Thread(target=scraper) for _ in range(2)]
        for t in threads:
            t.start()

        states_scraped = set()
        graph = tiny.graph
        try:
            # Walk the full ladder: stale after 1 failure, baseline
            # after 2, read_only after 4; the clean recovery update is
            # queued with the final crash (read_only refuses new
            # writes but still drains what is already queued).
            expected = ["stale", "baseline", "baseline", "read_only"]
            for i, want in enumerate(expected):
                graph = evolve(graph)
                service.submit_update(
                    graph,
                    tiny.assignment,
                    tiny_kappa,
                    callback=crash_at_iteration(1),
                )
                if i == len(expected) - 1:
                    graph = evolve(graph)
                    service.submit_update(graph, tiny.assignment, tiny_kappa)
                pump_one(service)
                health = scrape_json(service, "/health")
                states_scraped.add(health["state"])
                assert health["state"] == want
                assert service.score(0).value >= 0.0  # reads never fail

            with pytest.raises(AdmissionError, match="read-only"):
                service.submit_update(graph, tiny.assignment, tiny_kappa)

            deadline = time.perf_counter() + 30
            while service.pending() and time.perf_counter() < deadline:
                service.run_pending()
                time.sleep(0.005)
            health = scrape_json(service, "/health")
            states_scraped.add(health["state"])
            assert health["state"] == "healthy"
        finally:
            stop.set()
            for t in threads:
                t.join(timeout=30)
            service.stop()

        assert scrape_failures == []
        states_scraped.add("healthy")
        assert states_scraped == set(SERVING_STATES)

    def test_events_all_carry_one_run_id(self, tmp_path, tiny, tiny_kappa,
                                         evolve):
        service = make_service(tmp_path)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        graph = evolve(tiny.graph)
        service.submit_update(graph, tiny.assignment, tiny_kappa)
        service.run_pending()
        graph = evolve(graph)
        service.submit_update(
            graph, tiny.assignment, tiny_kappa, callback=crash_at_iteration(1)
        )
        service.run_pending()
        service.stop()

        events = service.events.events()
        assert events
        assert {e["run_id"] for e in events} == {service.run_id}
        kinds = [e["kind"] for e in events]
        for expected in (
            "service_start",
            "bootstrap_start",
            "snapshot_published",
            "bootstrap_end",
            "update_submitted",
            "update_start",
            "update_applied",
            "update_failed",
            "state_transition",
            "service_stop",
        ):
            assert expected in kinds, f"missing event kind {expected}"
        down = [e for e in events if e["kind"] == "state_transition"]
        assert {"from_state", "to_state"} <= set(down[0])

    def test_health_reports_read_latency_and_state_seconds(
        self, tmp_path, tiny, tiny_kappa
    ):
        service = make_service(tmp_path)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        for _ in range(20):
            service.score(0)
            service.top_k(3)
            service.percentile(0)
        health = scrape_json(service, "/health")
        service.stop()
        latency = health["read_latency"]
        assert {"score", "top_k", "percentile"} <= set(latency)
        for op_stats in latency.values():
            assert op_stats["count"] >= 20
            assert 0.0 <= op_stats["p50_seconds"] <= op_stats["p99_seconds"]
        assert health["run_id"] == service.run_id
        assert health["state_seconds"] >= 0.0  # time in the current state

    def test_trace_isolates_updater_spans_from_readers(
        self, tmp_path, tiny, tiny_kappa, evolve
    ):
        service = make_service(tmp_path)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        stop = threading.Event()

        def read_hammer() -> None:
            while not stop.is_set():
                service.score(0)

        reader = threading.Thread(target=read_hammer)
        reader.start()
        graph = tiny.graph
        try:
            for _ in range(3):
                graph = evolve(graph)
                service.submit_update(graph, tiny.assignment, tiny_kappa)
                service.run_pending()
        finally:
            stop.set()
            reader.join(timeout=30)

        doc = scrape_json(service, "/trace")
        service.stop()
        update_roots = [r for r in service.tracer.roots if r.name == "update"]
        assert len(update_roots) == 3
        # Every span under an update root was opened by the same thread
        # as the root: reader activity never interleaves into the trace.
        for root in update_roots:
            assert {s.tid for s in root.walk()} == {root.tid}
        names = {e["name"] for e in doc["traceEvents"]}
        assert "update" in names

"""Degraded-mode transition coverage: every state in the serving state
machine, driven by injected faults and visible in both the exported
metrics and the per-response provenance."""

from __future__ import annotations

import pytest

from repro.config import ServingParams
from repro.errors import AdmissionError
from repro.resilience.faults import crash_at_iteration
from repro.serving import CircuitBreaker, RankingService, SERVING_STATES

from .conftest import counter_value, gauge_value

# A breaker that never trips: these tests exercise the *service* state
# machine, not breaker pauses.
def pass_through_breaker() -> CircuitBreaker:
    return CircuitBreaker(failure_threshold=10_000)


SERVING = ServingParams(baseline_after=2, read_only_after=4)


@pytest.fixture()
def service(tmp_path, tiny, tiny_kappa):
    svc = RankingService(
        tmp_path / "snapshots",
        serving=SERVING,
        breaker=pass_through_breaker(),
    )
    svc.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
    return svc


def crash_update(service, graph, tiny, tiny_kappa) -> None:
    """Submit and run one update that dies mid-solve."""
    service.submit_update(
        graph, tiny.assignment, tiny_kappa, callback=crash_at_iteration(1)
    )
    assert service.run_pending() == 0  # the update failed and was dropped


class TestTransitions:
    def test_full_degradation_trajectory(self, service, tiny, tiny_kappa, evolve):
        assert gauge_value("repro_serving_state") == 0.0  # healthy
        graph = tiny.graph
        observed = []
        for _ in range(4):
            graph = evolve(graph)
            crash_update(service, graph, tiny, tiny_kappa)
            health = service.health()
            response = service.score(0)
            observed.append(
                (health["state"], gauge_value("repro_serving_state"),
                 response.state, response.snapshot_kind)
            )
        assert observed == [
            ("stale", 1.0, "stale", "sr"),
            ("baseline", 2.0, "baseline", "baseline"),
            ("baseline", 2.0, "baseline", "baseline"),
            ("read_only", 3.0, "read_only", "baseline"),
        ]
        # Every hop is visible in the transitions counter.
        for frm, to in (
            ("healthy", "stale"),
            ("stale", "baseline"),
            ("baseline", "read_only"),
        ):
            assert counter_value(
                "repro_serving_transitions_total", from_state=frm, to_state=to
            ) == 1
        assert counter_value(
            "repro_serving_updates_total", status="failed"
        ) == 4

    def test_gauge_codes_match_state_order(self):
        assert SERVING_STATES == ("healthy", "stale", "baseline", "read_only")

    def test_read_only_refuses_writes_serves_reads(
        self, service, tiny, tiny_kappa, evolve
    ):
        graph = tiny.graph
        for _ in range(4):
            graph = evolve(graph)
            crash_update(service, graph, tiny, tiny_kappa)
        assert service.health()["state"] == "read_only"
        with pytest.raises(AdmissionError) as excinfo:
            service.submit_update(graph, tiny.assignment, tiny_kappa)
        assert excinfo.value.reason == "read_only"
        assert counter_value(
            "repro_serving_admission_rejections_total", reason="read_only"
        ) == 1
        # Reads keep working, honestly labelled.
        response = service.top_k(3)
        assert response.state == "read_only"
        assert response.snapshot_kind == "baseline"
        assert len(response.value) == 3

    def test_staleness_grows_and_is_stamped(
        self, service, tiny, tiny_kappa, evolve
    ):
        graph = tiny.graph
        graph = evolve(graph)
        crash_update(service, graph, tiny, tiny_kappa)
        graph = evolve(graph)
        crash_update(service, graph, tiny, tiny_kappa)
        response = service.score(0)
        assert response.staleness == 2
        assert gauge_value("repro_serving_staleness_updates") == 2.0

    def test_clean_update_recovers_from_stale(
        self, service, tiny, tiny_kappa, evolve
    ):
        graph = evolve(tiny.graph)
        crash_update(service, graph, tiny, tiny_kappa)
        assert service.health()["state"] == "stale"
        service.submit_update(graph, tiny.assignment, tiny_kappa)
        assert service.run_pending() == 1
        response = service.score(0)
        assert response.state == "healthy"
        assert response.snapshot_kind == "sr"
        assert response.staleness == 0
        assert counter_value(
            "repro_serving_transitions_total",
            from_state="stale",
            to_state="healthy",
        ) == 1

    def test_queued_update_recovers_from_read_only(
        self, service, tiny, tiny_kappa, evolve
    ):
        # read_only refuses NEW submissions, but updates queued before
        # the degradation still run — one clean success snaps back.
        crashing = evolve(tiny.graph)
        for _ in range(4):
            service.submit_update(
                crashing,
                tiny.assignment,
                tiny_kappa,
                callback=crash_at_iteration(1),
            )
        clean = evolve(crashing)
        service.submit_update(clean, tiny.assignment, tiny_kappa)
        # FIFO drain: four crashes push the service all the way to
        # read_only mid-batch, then the already-queued clean update runs
        # anyway and recovers it.
        assert service.run_pending(max_updates=None) == 1
        assert counter_value(
            "repro_serving_transitions_total",
            from_state="read_only",
            to_state="healthy",
        ) == 1
        response = service.score(0)
        assert response.state == "healthy"
        assert response.snapshot_kind == "sr"
        assert response.staleness == 0
        # And new submissions are accepted again.
        service.submit_update(clean, tiny.assignment, tiny_kappa)

    def test_baseline_missing_jumps_to_read_only(
        self, tmp_path, tiny, tiny_kappa, evolve
    ):
        svc = RankingService(
            tmp_path / "snapshots",
            serving=SERVING,
            breaker=pass_through_breaker(),
        )
        svc.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        store = svc.store
        for version in list(store.versions()):
            snapshot = store.load(version)
            if snapshot is not None and snapshot.kind == "baseline":
                store.path_for(version).unlink()
        graph = tiny.graph
        graph = evolve(graph)
        crash_update(svc, graph, tiny, tiny_kappa)
        assert svc.health()["state"] == "stale"
        graph = evolve(graph)
        crash_update(svc, graph, tiny, tiny_kappa)
        # baseline_after reached but no baseline exists -> read_only.
        assert svc.health()["state"] == "read_only"
        # Reads still come from the last SR snapshot.
        assert svc.score(0).snapshot_kind == "sr"

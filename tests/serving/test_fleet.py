"""Tests for the replicated serving fleet: snapshot adoption ordering,
the replica read protocol, process lifecycle, and fleet orchestration."""

from __future__ import annotations

import json
import threading
import time
import urllib.request

import numpy as np
import pytest

from repro.config import FleetParams, ObservabilityParams, ServingParams
from repro.errors import FleetError, ServingError
from repro.serving import (
    RankingService,
    ReplicaHandle,
    ReplicaService,
    ServingFleet,
    SnapshotFollower,
    SnapshotStore,
    replica_request,
)

FAST_FLEET = FleetParams(
    replicas=2,
    replica_poll_seconds=0.02,
    probe_interval_seconds=0.05,
    batch_linger_seconds=0.005,
    spawn_timeout_seconds=90.0,
)
SERVING = ServingParams(backoff_base_seconds=0.01, backoff_max_seconds=0.05)


def publish(store: SnapshotStore, n: int = 32, scale: float = 1.0):
    sigma = (np.arange(n, dtype=np.float64) + 1.0) * scale
    return store.publish(kind="sr", sigma=sigma, kappa=np.zeros(n))


class TestSnapshotFollower:
    def test_adopts_first_then_newer(self, tmp_path):
        store = SnapshotStore(tmp_path)
        follower = SnapshotFollower(store)
        assert follower.current is None
        v1 = publish(store)
        assert follower.poll_once()
        assert follower.current.version == v1.version
        v2 = publish(store, scale=2.0)
        assert follower.poll_once()
        assert follower.current.version == v2.version
        assert follower.adoptions == 2

    def test_same_version_not_readopted(self, tmp_path):
        store = SnapshotStore(tmp_path)
        follower = SnapshotFollower(store)
        publish(store)
        assert follower.poll_once()
        assert not follower.poll_once()
        assert follower.adoptions == 1

    def test_never_adopts_older_after_newer(self, tmp_path):
        store = SnapshotStore(tmp_path)
        follower = SnapshotFollower(store)
        v1 = publish(store)
        v2 = publish(store, scale=2.0)
        assert follower.adopt(v2)
        # Explicit attempt to go back in time is refused and counted.
        assert not follower.adopt(v1)
        assert follower.current.version == v2.version
        assert follower.rejected_stale == 1

    def test_torn_newest_does_not_roll_the_replica_back(self, tmp_path):
        # After the newest file is corrupted, latest() lands on the older
        # healthy snapshot — the follower must keep serving the newer σ
        # it already adopted rather than regress.
        store = SnapshotStore(tmp_path)
        follower = SnapshotFollower(store)
        publish(store)
        v2 = publish(store, scale=2.0)
        assert follower.poll_once()
        assert follower.current.version == v2.version
        store.path_for(v2.version).write_bytes(b"torn")
        assert not follower.poll_once()
        assert follower.current.version == v2.version
        np.testing.assert_allclose(
            follower.current.sigma, v2.sigma
        )

    def test_adoption_is_digest_verified(self, tmp_path):
        store = SnapshotStore(tmp_path)
        follower = SnapshotFollower(store)
        v1 = publish(store)
        store.path_for(v1.version).write_bytes(b"corrupt")
        assert not follower.poll_once()
        assert follower.current is None

    def test_percentiles_cached_and_reset_on_adopt(self, tmp_path):
        store = SnapshotStore(tmp_path)
        follower = SnapshotFollower(store)
        publish(store)
        follower.poll_once()
        first = follower.percentiles()
        assert follower.percentiles() is first
        publish(store, scale=3.0)
        follower.poll_once()
        assert follower.percentiles() is not first

    def test_empty_follower_refuses_reads(self, tmp_path):
        follower = SnapshotFollower(SnapshotStore(tmp_path))
        with pytest.raises(ServingError, match="no snapshot"):
            follower.snapshot_for_read()
        with pytest.raises(ServingError, match="no snapshot"):
            follower.percentiles()


class TestFollowerUnderChaos:
    """SnapshotFollower driven through an injected-fault store: adoption
    must stay atomic (never a partially-adopted snapshot) and every
    rejection kind must land on its own counter label."""

    def test_slow_adoption_never_exposes_partial_state(self, tmp_path):
        from repro.resilience.faults import FaultPlan, FaultRule, FaultyStore

        store = SnapshotStore(tmp_path)
        plan = FaultPlan(seed=7)
        plan.add(
            "nfs", FaultRule(kind="slow_adopt", latency_seconds=0.05)
        )
        follower = SnapshotFollower(FaultyStore(store, plan))
        v1 = publish(store)
        assert follower.poll_once()
        v2 = publish(store, scale=2.0)
        plan.activate("nfs")
        # sigma[1] is 2.0 under v1 and 4.0 under v2: a torn view would
        # pair one version with the other's payload.
        expected = {v1.version: 2.0, v2.version: 4.0}
        observed: list[tuple[int, float]] = []
        stop = threading.Event()

        def watch() -> None:
            while not stop.is_set():
                snap = follower.current
                if snap is not None:
                    observed.append((snap.version, float(snap.sigma[1])))

        watcher = threading.Thread(target=watch)
        watcher.start()
        try:
            assert follower.poll_once()  # sleeps through the injected delay
        finally:
            stop.set()
            watcher.join(timeout=10)
        assert follower.current.version == v2.version
        assert plan.fired["nfs"] > 0
        assert observed, "the watcher must have seen the follower mid-adopt"
        for version, sigma_1 in observed:
            assert expected[version] == sigma_1, (
                f"version {version} served with the wrong payload "
                f"({sigma_1})"
            )

    def test_torn_adoption_and_staleness_reject_on_distinct_labels(
        self, tmp_path
    ):
        from repro.observability import get_registry
        from repro.resilience.faults import FaultPlan, FaultRule, FaultyStore

        registry = get_registry()
        store_rejects = registry.counter(
            "repro_snapshot_rejects_total", labelnames=("reason",)
        )
        adopt_rejects = registry.counter(
            "repro_fleet_adoption_rejects_total", labelnames=("reason",)
        )

        def totals() -> dict[str, float]:
            return {
                "unreadable": store_rejects.labels(reason="unreadable").value,
                "digest": store_rejects.labels(reason="digest").value,
                "stale": adopt_rejects.labels(reason="stale").value,
            }

        store = SnapshotStore(tmp_path)
        plan = FaultPlan(seed=3)
        plan.add("tear", FaultRule(kind="torn_publish"))
        faulty = FaultyStore(store, plan)
        follower = SnapshotFollower(faulty)
        v1 = publish(store)
        assert follower.poll_once()
        before = totals()
        plan.activate("tear")
        v2 = publish(faulty, scale=2.0)  # truncated on disk after write
        plan.deactivate("tear")
        # The torn newest file must be rejected at load time and the
        # follower must keep serving the intact v1 payload.
        assert not follower.poll_once()
        assert follower.current.version == v1.version
        np.testing.assert_allclose(follower.current.sigma, v1.sigma)
        after_torn = totals()
        torn_kinds = (
            after_torn["unreadable"]
            - before["unreadable"]
            + after_torn["digest"]
            - before["digest"]
        )
        assert torn_kinds >= 1, "torn file must land on a storage label"
        assert after_torn["stale"] == before["stale"]
        # A stale adoption attempt lands on its own label, not storage's.
        v3 = publish(store, scale=3.0)
        assert follower.poll_once()
        assert follower.current.version == v3.version
        assert not follower.adopt(store.load(v1.version))
        after_stale = totals()
        assert after_stale["stale"] == after_torn["stale"] + 1
        assert after_stale["unreadable"] == after_torn["unreadable"]
        assert after_stale["digest"] == after_torn["digest"]
        assert follower.rejected_stale == 1
        assert v2.version < v3.version

    def test_disk_full_publish_fails_cleanly_and_store_stays_healthy(
        self, tmp_path
    ):
        import errno

        from repro.resilience.faults import FaultPlan, FaultRule, FaultyStore

        store = SnapshotStore(tmp_path)
        plan = FaultPlan(seed=1)
        plan.add("enospc", FaultRule(kind="disk_full"))
        faulty = FaultyStore(store, plan)
        v1 = publish(faulty)
        plan.activate("enospc")
        with pytest.raises(OSError) as err:
            publish(faulty, scale=2.0)
        assert err.value.errno == errno.ENOSPC
        # Nothing was half-written: the newest healthy snapshot is v1.
        assert store.latest(kind="sr").version == v1.version
        plan.deactivate("enospc")
        v3 = publish(faulty, scale=3.0)
        assert store.latest(kind="sr").version == v3.version


class TestReplicaServiceInProcess:
    """The request→response map, no sockets or processes involved."""

    @pytest.fixture()
    def replica(self, tmp_path):
        store = SnapshotStore(tmp_path)
        publish(store, n=16)
        service = ReplicaService(store, replica_id=7)
        assert service.follower.poll_once()
        return service

    def test_score_batch(self, replica):
        response = replica.handle({"op": "score", "ids": [0, 15]})
        assert response["ok"]
        assert response["replica"] == 7
        assert response["version"] == 1
        assert len(response["values"]) == 2
        assert response["age"] >= 0.0

    def test_score_out_of_range_is_typed_error(self, replica):
        response = replica.handle({"op": "score", "ids": [3, -1]})
        assert not response["ok"]
        assert response["error"] == "NodeIndexError"
        assert "-1" in response["detail"]
        response = replica.handle({"op": "score", "ids": [16]})
        assert response["error"] == "NodeIndexError"

    def test_percentile_matches_result(self, replica):
        response = replica.handle({"op": "percentile", "ids": [15]})
        assert response["ok"]
        expected = replica.follower.current.result().percentile_of(15)
        assert response["values"][0] == pytest.approx(expected)

    def test_top_k(self, replica):
        response = replica.handle({"op": "top_k", "k": 3})
        assert response["ok"]
        assert response["ids"] == [15, 14, 13]

    def test_sigma_round_trips_exactly(self, replica):
        response = replica.handle({"op": "sigma"})
        served = np.asarray(response["sigma"])
        np.testing.assert_array_equal(
            served, replica.follower.current.result().scores
        )

    def test_health_document(self, replica):
        replica.handle({"op": "score", "ids": [0, 1, 2]})
        health = replica.handle({"op": "health"})
        assert health["ok"] and health["ready"]
        assert health["replica"] == 7
        assert health["snapshot_version"] == 1
        assert health["reads_ok"] == 3
        assert health["adoptions"] == 1

    def test_unknown_op_and_empty_replica(self, tmp_path, replica):
        assert replica.handle({"op": "nope"})["error"] == "FleetError"
        empty = ReplicaService(SnapshotStore(tmp_path / "empty"))
        response = empty.handle({"op": "score", "ids": [0]})
        assert response["error"] == "ServingError"
        assert empty.handle({"op": "health"})["ready"] is False

    def test_reads_error_counted(self, replica):
        replica.handle({"op": "score", "ids": [-5]})
        assert replica.handle({"op": "health"})["reads_error"] == 1


class TestReplicaOverTCP:
    """The same service behind its threading TCP server (in-process)."""

    def test_serve_adopt_and_stop(self, tmp_path):
        store = SnapshotStore(tmp_path)
        publish(store, n=16)
        replica = ReplicaService(store, replica_id=0, poll_interval=0.02)
        replica.bind()
        thread = threading.Thread(target=replica.serve_forever, daemon=True)
        thread.start()
        try:
            deadline = time.monotonic() + 5
            while replica.follower.current is None:
                assert time.monotonic() < deadline, "first adoption timed out"
                time.sleep(0.01)
            address = replica.address
            response = replica_request(address, {"op": "score", "ids": [1]})
            assert response["ok"] and response["version"] == 1
            # A new publish is adopted live, without reconnecting.
            publish(store, n=16, scale=2.0)
            deadline = time.monotonic() + 5
            while True:
                health = replica_request(address, {"op": "health"})
                if health["snapshot_version"] == 2:
                    break
                assert time.monotonic() < deadline, "live adoption timed out"
                time.sleep(0.02)
            assert replica_request(address, {"op": "stop"})["stopping"]
            thread.join(timeout=10)
            assert not thread.is_alive()
        finally:
            replica.close()


class TestReplicaProcess:
    def test_spawn_requires_a_snapshot(self, tmp_path):
        params = FAST_FLEET.with_(spawn_timeout_seconds=6.0)
        with pytest.raises(FleetError, match="no healthy snapshot"):
            ReplicaHandle.spawn(tmp_path, 0, params)

    def test_spawn_serve_kill(self, tmp_path):
        store = SnapshotStore(tmp_path)
        publish(store, n=16)
        handle = ReplicaHandle.spawn(tmp_path, 3, FAST_FLEET)
        try:
            assert handle.alive()
            health = replica_request(handle.address, {"op": "health"})
            assert health["ok"] and health["replica"] == 3
            assert health["snapshot_version"] == 1
        finally:
            handle.kill()
        assert not handle.alive()


class TestServingFleet:
    def test_fleet_serves_what_the_publisher_published(
        self, tmp_path, tiny, tiny_kappa
    ):
        service = RankingService(tmp_path / "snapshots", serving=SERVING)
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        with ServingFleet(service, FAST_FLEET) as fleet:
            with fleet.client() as client:
                n = tiny.assignment.n_sources
                response = client.score(list(range(n)))
                assert response["ok"]
                np.testing.assert_allclose(
                    response["values"],
                    service.store.latest(kind="sr").result().scores,
                )
                top = client.top_k(5)
                np.testing.assert_array_equal(
                    top["ids"], service.top_k(5).value
                )
                health = fleet.health()
                assert health["fleet"] is True
                assert health["publisher"]["state"] == "healthy"
                assert set(health["replicas"]) == {"0", "1"}
                assert all(
                    entry["state"] == "active"
                    for entry in health["replicas"].values()
                )
        assert not fleet.replicas  # teardown reaped every process

    def test_kill_and_restart_replica(self, tmp_path, tiny, tiny_kappa):
        service = RankingService(tmp_path / "snapshots", serving=SERVING)
        snap = service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        with ServingFleet(service, FAST_FLEET) as fleet:
            with fleet.client() as client:
                fleet.kill_replica(0)
                # Reads survive the kill — the door evicts and retries.
                for node in range(20):
                    assert client.score([node % snap.n])["ok"]
                handle = fleet.restart_replica(0)
                assert handle.alive()
                deadline = time.monotonic() + 10
                while True:
                    states = {
                        rid: entry["state"]
                        for rid, entry in client.health()["replicas"].items()
                    }
                    if states == {"0": "active", "1": "active"}:
                        break
                    assert time.monotonic() < deadline, states
                    time.sleep(0.05)
                # Post-restart σ identity against the publisher's latest.
                sigma = replica_request(
                    fleet.replicas[0].address, {"op": "sigma"}
                )["sigma"]
                latest = service.store.latest(kind="sr")
                assert (
                    np.abs(np.asarray(sigma) - latest.result().scores).max()
                    <= 1e-9
                )
                stats = client.stats()["stats"]
                assert stats["reads"]["failed"] == 0

    def test_telemetry_health_gains_fleet_fanout(
        self, tmp_path, tiny, tiny_kappa
    ):
        service = RankingService(
            tmp_path / "snapshots",
            serving=SERVING,
            observability=ObservabilityParams(endpoint=True),
        )
        service.bootstrap(tiny.graph, tiny.assignment, tiny_kappa)
        try:
            with ServingFleet(service, FAST_FLEET) as fleet:
                url = service.telemetry.url("/health")
                with urllib.request.urlopen(url, timeout=30) as response:
                    payload = json.loads(response.read())
                assert payload["fleet"] is True
                assert payload["publisher"]["ready"] is True
                assert set(payload["replicas"]) == {"0", "1"}
                for entry in payload["replicas"].values():
                    assert entry["state"] == "active"
                    assert entry["snapshot_version"] is not None
                assert fleet.params.replicas == 2
            # After stop, /health reverts to the plain publisher document
            # (the endpoint itself is down too — read the payload builder).
            payload = service.telemetry.health_payload()
            assert "fleet" not in payload
            assert "state" in payload
        finally:
            service.stop()

"""Run the library's docstring examples as tests.

Every ``>>>`` example in a public docstring must stay executable — the
examples are part of the API contract.
"""

from __future__ import annotations

import doctest
import importlib
import pkgutil

import pytest

import repro

_MODULES = sorted(
    name
    for _, name, _ in pkgutil.walk_packages(repro.__path__, prefix="repro.")
    if not name.endswith("__main__")
)


@pytest.mark.parametrize("module_name", _MODULES)
def test_module_doctests(module_name: str) -> None:
    module = importlib.import_module(module_name)
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{module_name}: {results.failed} doctest failures"

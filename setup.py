"""Legacy setup shim.

The execution environment has setuptools but no ``wheel`` package and no
network access, so PEP 517 editable installs fail; ``pip install -e .
--no-build-isolation`` (or ``python setup.py develop``) uses this shim
instead.  All real metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
